"""B8 — ablations on the derivative engine's design choices.

DESIGN.md calls out three engineering choices the paper's implementation
hints at; this benchmark measures each of them on the B1/B2 workloads:

* the Section 4 **simplification rules** (smart constructors) on/off,
* **memoisation** of per-neighbourhood derivative computations on/off,
* **predicate-ordered** vs. arbitrary triple consumption order.

Regenerate with::

    pytest benchmarks/bench_ablation_simplification.py --benchmark-only
"""

import pytest

from conftest import run_case
from repro.shex import DerivativeEngine
from repro.workloads import (
    balanced_alternation_case,
    mixed_portal_case,
    paper_interleave_case,
)

CONFIGURATIONS = {
    "full": dict(simplify=True, memoize=True, order_by_predicate=True),
    "no-simplification": dict(simplify=False, memoize=True, order_by_predicate=True),
    "no-memoization": dict(simplify=True, memoize=False, order_by_predicate=True),
    "unordered": dict(simplify=True, memoize=True, order_by_predicate=False),
}


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("extra_arcs", [4, 6])
def test_paper_shape(benchmark, configuration, extra_arcs):
    engine = DerivativeEngine(**CONFIGURATIONS[configuration])
    case = paper_interleave_case(extra_arcs)
    result = benchmark(run_case, engine, case)
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size


@pytest.mark.parametrize("configuration", ["full", "no-simplification"])
@pytest.mark.parametrize("pairs", [2, 4])
def test_balanced_alternation(benchmark, configuration, pairs):
    engine = DerivativeEngine(**CONFIGURATIONS[configuration])
    case = balanced_alternation_case(pairs)
    result = benchmark(run_case, engine, case)
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size


# the no-simplification configuration is excluded here: on the portal record
# (8 triples, several + branches) the raw derivative exceeds 10⁷ AST nodes and
# takes minutes — the effect is already demonstrated by the two sweeps above.
@pytest.mark.parametrize("configuration", ["full", "no-memoization", "unordered"])
def test_portal_record(benchmark, configuration):
    engine = DerivativeEngine(**CONFIGURATIONS[configuration])
    case = mixed_portal_case(properties=6)
    result = benchmark(run_case, engine, case)
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size
