"""F1/F2/E3 — the cost anatomy of the backtracking matcher.

Figure 2 of the paper traces the backtracking matcher on the running example
and Example 3 shows the 2ⁿ decomposition it relies on.  This benchmark
isolates the two ingredients:

* enumerating all decompositions of an n-triple neighbourhood (Example 3),
* running the full backtracking matcher on the Figure 2 problem and on its
  rejecting variants, recording the number of decompositions explored.

Regenerate with::

    pytest benchmarks/bench_backtracking_decomposition.py --benchmark-only
"""

import pytest

from conftest import run_case
from repro.rdf import EX, Literal, Triple, decompositions
from repro.workloads import paper_interleave_case

NODE = EX.n


@pytest.mark.parametrize("size", [4, 8, 12, 16])
def test_enumerate_decompositions(benchmark, size):
    triples = frozenset(Triple(NODE, EX.p, Literal(index)) for index in range(size))

    def enumerate_all():
        return sum(1 for _ in decompositions(triples))

    count = benchmark(enumerate_all)
    assert count == 2 ** size
    benchmark.extra_info["pairs"] = count


def test_figure_2_matching_problem(benchmark, backtracking_engine):
    """The exact problem of Example 8 / Figure 2 (3 triples, accepting)."""
    case = paper_interleave_case(extra_b_arcs=2)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["decompositions"] = result.stats.decompositions
    benchmark.extra_info["rule_applications"] = result.stats.rule_applications


@pytest.mark.parametrize("extra_arcs", [2, 4, 6])
def test_rejecting_variant(benchmark, backtracking_engine, extra_arcs):
    case = paper_interleave_case(extra_b_arcs=extra_arcs, matching=False)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["decompositions"] = result.stats.decompositions
