#!/usr/bin/env python3
"""B9 — bulk validation: shared context + global derivative cache vs per-node.

The seed implementation rebuilt a fresh ``ValidationContext`` for every
``(node, label)`` pair, so ``validate_graph`` / ``infer_typing`` re-validated
shared sub-structures from scratch — exactly the redundancy the Section 8
typing context was meant to eliminate.  This benchmark measures the bulk
subsystem introduced on top of it:

* one **shared context** per run (confirmed/failed verdicts propagate),
* **hash-consed expressions** + the **global cross-node derivative cache**
  (``DerivativeEngine(cache=True)``),
* **predicate-indexed cached neighbourhoods** in the graph.

Every configuration is checked against the workload's ground truth and
against the per-node baseline before any number is reported, so the speedup
cannot hide a verdict change.  On small sizes the backtracking engine is run
through the same shared-context bulk path as an engine-agreement check.

Usage::

    PYTHONPATH=src python benchmarks/bench_bulk_validation.py          # full
    PYTHONPATH=src python benchmarks/bench_bulk_validation.py --quick  # CI smoke

Exit status: 0 on success, 1 when any verdict disagrees or the speedup on
the largest size is below the --min-speedup threshold (default 2.0).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.shex import BacktrackingEngine, Validator
from repro.workloads import generate_person_workload

# deep knows-chains recurse one Python call stack per hop (engine + context
# frames); the interpreter default of 1000 is too tight for the large sizes
sys.setrecursionlimit(100_000)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def run_size(num_people: int, seed: int, check_backtracking: bool) -> dict:
    """Validate one workload size with every configuration and time it."""
    workload = generate_person_workload(
        num_people=num_people, invalid_fraction=0.2, seed=seed)
    graph, schema = workload.graph, workload.schema
    expected = {
        (node, "Person"): node in set(workload.valid_nodes)
        for node in workload.all_nodes
    }

    start = time.perf_counter()
    baseline = Validator(graph, schema, shared_context=False)
    baseline_report = baseline.validate_graph()
    baseline_time = time.perf_counter() - start

    start = time.perf_counter()
    bulk = Validator(graph, schema, shared_context=True, cache=True)
    bulk_report = bulk.validate_graph()
    bulk_time = time.perf_counter() - start

    baseline_verdicts = _verdicts(baseline_report)
    bulk_verdicts = _verdicts(bulk_report)
    agree = baseline_verdicts == bulk_verdicts
    # the typings must agree too, not just the per-entry verdicts: this is
    # what pins the HAMT-backed ShapeTyping to the per-node baseline
    typing_agree = (baseline_report.typing.to_dict()
                    == bulk_report.typing.to_dict())
    ground_truth_ok = all(
        bulk_verdicts[key] == value for key, value in expected.items())

    backtracking_ok = True
    if check_backtracking:
        bt = Validator(graph, schema, engine=BacktrackingEngine(budget=5_000_000),
                       shared_context=True)
        backtracking_ok = _verdicts(bt.validate_graph()) == bulk_verdicts

    return {
        "people": num_people,
        "triples": len(graph),
        "baseline_s": baseline_time,
        "bulk_s": bulk_time,
        "speedup": baseline_time / bulk_time if bulk_time else float("inf"),
        "cache": bulk.engine.cache.stats(),
        "agree": agree,
        "typing_agree": typing_agree,
        "ground_truth_ok": ground_truth_ok,
        "backtracking_ok": backtracking_ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes only (CI smoke run)")
    parser.add_argument("--sizes", type=int, nargs="*",
                        help="explicit workload sizes (number of people)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail when the largest size is below this speedup")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result rows as JSON (CI artifact)")
    args = parser.parse_args(argv)

    sizes = args.sizes or ([20, 40] if args.quick else [20, 60, 120, 240])

    print(f"{'people':>7} {'triples':>8} {'per-node':>11} {'bulk':>11} "
          f"{'speedup':>8}  {'cache hit rate':>14}")
    ok = True
    rows = []
    last_speedup = 0.0
    for size in sizes:
        row = run_size(size, args.seed, check_backtracking=size <= 20)
        rows.append(row)
        hit = row["cache"]["hits"] / max(1, row["cache"]["hits"] + row["cache"]["misses"])
        print(f"{row['people']:>7} {row['triples']:>8} "
              f"{row['baseline_s'] * 1000:>9.1f}ms {row['bulk_s'] * 1000:>9.1f}ms "
              f"{row['speedup']:>7.1f}x {hit:>13.1%}")
        if not (row["agree"] and row["typing_agree"] and row["ground_truth_ok"]
                and row["backtracking_ok"]):
            print(f"  !! verdict mismatch at size {size}: agree={row['agree']} "
                  f"typing={row['typing_agree']} "
                  f"ground_truth={row['ground_truth_ok']} "
                  f"backtracking={row['backtracking_ok']}", file=sys.stderr)
            ok = False
        last_speedup = row["speedup"]

    if last_speedup < args.min_speedup:
        print(f"!! speedup {last_speedup:.1f}x below the "
              f"{args.min_speedup:.1f}x threshold", file=sys.stderr)
        ok = False

    if args.json:
        payload = {
            "benchmark": "bulk_validation",
            "quick": args.quick,
            "min_speedup": args.min_speedup,
            "results": rows,
            "ok": ok,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
