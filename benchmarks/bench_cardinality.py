"""B4 — cardinality ranges ``E{m,n}``: expansion cost of the derived operator.

Section 4 defines ``E{m,n}`` by expansion into interleaves of copies and
optionals, so large ranges produce large expressions.  This benchmark sweeps
the range width and the neighbourhood size on both engines and records the
expression sizes the derivative engine has to manipulate.

Regenerate with::

    pytest benchmarks/bench_cardinality.py --benchmark-only
"""

import pytest

from conftest import run_case
from repro.shex import expression_size
from repro.workloads import cardinality_case

#: (minimum, maximum, arcs) triples to sweep; all verdicts are "accept".
ACCEPTING = [
    (1, 2, 2),
    (2, 4, 3),
    (4, 8, 6),
    (5, 10, 7),
]
#: rejecting cases: one arc above the maximum.
REJECTING = [
    (1, 2, 3),
    (2, 4, 5),
    (4, 8, 9),
]


@pytest.mark.parametrize("minimum, maximum, arcs", ACCEPTING)
def test_derivatives_within_range(benchmark, derivative_engine, minimum, maximum, arcs):
    case = cardinality_case(minimum, maximum, arcs)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["expression_size"] = expression_size(case.expression)
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size


@pytest.mark.parametrize("minimum, maximum, arcs", ACCEPTING[:3])
def test_backtracking_within_range(benchmark, backtracking_engine, minimum, maximum, arcs):
    case = cardinality_case(minimum, maximum, arcs)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["expression_size"] = expression_size(case.expression)
    benchmark.extra_info["decompositions"] = result.stats.decompositions


@pytest.mark.parametrize("minimum, maximum, arcs", REJECTING)
def test_derivatives_above_range(benchmark, derivative_engine, minimum, maximum, arcs):
    case = cardinality_case(minimum, maximum, arcs)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["expression_size"] = expression_size(case.expression)
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size


@pytest.mark.parametrize("minimum, maximum, arcs", REJECTING[:2])
def test_backtracking_above_range(benchmark, backtracking_engine, minimum, maximum, arcs):
    case = cardinality_case(minimum, maximum, arcs)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["decompositions"] = result.stats.decompositions
