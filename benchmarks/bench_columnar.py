#!/usr/bin/env python3
"""B14 — columnar term store: memory, scan throughput and verdict identity.

PR 6 adds a dictionary-encoded columnar storage backend: a ``TermDictionary``
interning every term to a dense integer id and a ``ColumnarGraph`` whose
SPO/POS/OSP indexes are sorted ``array('q')`` segments with binary-search
neighbourhood scans and streaming N-Triples ingest.  This benchmark compares
the two backends on identical data:

* **verdict identity** (gates every run): validating the sparse, person and
  community workloads — serially and with ``--jobs 2`` — must produce entry-
  for-entry identical reports and typings on both stores,
* **memory footprint**: tracemalloc-measured resident bytes per triple when
  each store is built from the same serialized N-Triples (full runs gate a
  ≥3× columnar advantage on the community workload, ``--min-memory-ratio``),
* **neighbourhood-scan throughput**: cold ``neighbourhood_any`` scans over
  every node with per-store caches cleared each round (full runs gate a ≥2×
  columnar speedup, ``--min-scan-speedup``),
* **snapshot shipping**: pickled payload bytes and encode/decode time of
  ``Graph.snapshot()`` under the shared compact codec,
* **streaming ingest** (full runs): a synthetic N-Triples stream is fed
  line-by-line into ``ColumnarGraph.ingest_ntriples``; the peak decoded tail
  must stay bounded by one segment.

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar.py            # full run
    PYTHONPATH=src python benchmarks/bench_columnar.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_columnar.py --json out.json

Exit status: 0 on success, 1 on any verdict mismatch or (full runs) a missed
memory / scan threshold.
"""

from __future__ import annotations

import argparse
import gc
import json
import pickle
import sys
import time
import tracemalloc

from repro.rdf import ColumnarGraph, Graph, serialize_ntriples
from repro.shex import Validator
from repro.workloads import generate_community_workload, generate_person_workload

sys.setrecursionlimit(100_000)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def _workload(kind: str, scale: int, seed: int, store: str):
    if kind == "sparse":
        return generate_person_workload(num_people=scale, knows_probability=0.0,
                                        seed=seed, store=store)
    if kind == "person":
        return generate_person_workload(num_people=scale, seed=seed, store=store)
    return generate_community_workload(num_communities=max(scale // 8, 2),
                                       people_per_community=8, seed=seed,
                                       store=store)


def run_verdict_round(kind: str, scale: int, seed: int, jobs: int) -> dict:
    """Validate the same workload on both stores; reports must be identical."""
    rows = {}
    for store in ("dict", "columnar"):
        workload = _workload(kind, scale, seed, store)
        validator = Validator(workload.graph, workload.schema, jobs=jobs)
        gc.collect()
        start = time.perf_counter()
        report = validator.validate_graph()
        elapsed = time.perf_counter() - start
        truth_ok = all(
            _verdicts(report)[(node, "Person")] == (node in set(workload.valid_nodes))
            for node in workload.all_nodes)
        rows[store] = {"verdicts": _verdicts(report), "typing": report.typing,
                       "seconds": elapsed, "truth_ok": truth_ok,
                       "triples": len(workload.graph)}
    agree = (rows["dict"]["verdicts"] == rows["columnar"]["verdicts"]
             and rows["dict"]["typing"] == rows["columnar"]["typing"])
    return {
        "workload": kind,
        "jobs": jobs,
        "triples": rows["dict"]["triples"],
        "pairs": len(rows["dict"]["verdicts"]),
        "dict_s": rows["dict"]["seconds"],
        "columnar_s": rows["columnar"]["seconds"],
        "agree": agree,
        "ground_truth_ok": rows["dict"]["truth_ok"] and rows["columnar"]["truth_ok"],
    }


def run_memory_round(scale: int, seed: int) -> dict:
    """Build both stores from the same N-Triples text inside tracemalloc."""
    source = _workload("community", scale, seed, "dict")
    data = serialize_ntriples(source.graph)
    triples = len(source.graph)
    del source
    usage = {}
    for store in ("dict", "columnar"):
        gc.collect()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        if store == "dict":
            graph = Graph.parse(data, format="ntriples")
        else:
            graph = ColumnarGraph()
            graph.ingest_ntriples(data.splitlines())
        gc.collect()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        usage[store] = max(after - before, 1)
        del graph
    ratio = usage["dict"] / usage["columnar"]
    return {
        "triples": triples,
        "dict_bytes": usage["dict"],
        "columnar_bytes": usage["columnar"],
        "dict_bytes_per_triple": usage["dict"] / triples,
        "columnar_bytes_per_triple": usage["columnar"] / triples,
        "memory_ratio": ratio,
    }


def run_scan_round(scale: int, seed: int, repeats: int) -> dict:
    """Cold neighbourhood scans: materialise ``Σgₙ`` for every node.

    Each round clears the per-store neighbourhood caches, then times
    ``neighbourhood_any`` across all subject nodes — the exact store call
    validation makes when it first touches a node.  Best-of-``repeats``
    throughput is reported for both stores (consuming the result afterwards
    costs the same on either store and is the caller's business).
    """
    graphs = {}
    nodes_scanned = triples_visited = 0
    for store in ("dict", "columnar"):
        graph = _workload("community", scale, seed, store).graph
        nodes = [node for node in graph.nodes() if graph.degree(node)]
        nodes_scanned = len(nodes)
        triples_visited = sum(graph.degree(node) for node in nodes)
        graphs[store] = (graph, nodes)

    def cold_sweep(store: str) -> float:
        graph, nodes = graphs[store]
        graph._neigh_sets.clear()
        graph._neigh_ordered.clear()
        getattr(graph, "_neigh_any", {}).clear()
        scan = graph.neighbourhood_any
        start = time.perf_counter()
        for node in nodes:
            scan(node)
        elapsed = time.perf_counter() - start
        return triples_visited / elapsed if elapsed else float("inf")

    # interleave the rounds so CPU frequency drift hits both stores alike
    rates = {"dict": 0.0, "columnar": 0.0}
    gc.disable()
    try:
        for _ in range(repeats):
            for store in rates:
                rates[store] = max(rates[store], cold_sweep(store))
    finally:
        gc.enable()
    return {
        "nodes_scanned": nodes_scanned,
        "triples_visited": triples_visited,
        "dict_triples_per_s": rates["dict"],
        "columnar_triples_per_s": rates["columnar"],
        "scan_speedup": rates["columnar"] / rates["dict"],
    }


def run_snapshot_round(scale: int, seed: int) -> dict:
    """Pickled snapshot payload size and round-trip time, both stores."""
    row = {}
    for store in ("dict", "columnar"):
        graph = _workload("community", scale, seed, store).graph
        snapshot = graph.snapshot()
        gc.collect()
        start = time.perf_counter()
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        encode_s = time.perf_counter() - start
        start = time.perf_counter()
        pickle.loads(payload)
        decode_s = time.perf_counter() - start
        row[f"{store}_payload_bytes"] = len(payload)
        row[f"{store}_encode_s"] = encode_s
        row[f"{store}_decode_s"] = decode_s
    row["triples"] = len(graph)
    return row


def run_ingest_round(num_triples: int) -> dict:
    """Stream a synthetic N-Triples file; the decoded tail stays one segment."""

    def lines():
        person = 0
        emitted = 0
        while emitted < num_triples:
            subject = f"<http://example.org/person{person}>"
            yield (f"{subject} <http://xmlns.com/foaf/0.1/age> "
                   f'"{20 + person % 70}"'
                   "^^<http://www.w3.org/2001/XMLSchema#integer> .")
            emitted += 1
            if emitted < num_triples:
                yield (f"{subject} <http://xmlns.com/foaf/0.1/name> "
                       f'"Person {person}" .')
                emitted += 1
            person += 1

    graph = ColumnarGraph()
    gc.collect()
    start = time.perf_counter()
    ingested = graph.ingest_ntriples(lines())
    elapsed = time.perf_counter() - start
    stats = graph.store_stats()
    return {
        "triples": ingested,
        "seconds": elapsed,
        "triples_per_s": ingested / elapsed if elapsed else float("inf"),
        "segments": stats["segments"],
        "segment_size": stats["segment_size"],
        "peak_tail_rows": stats["peak_tail_rows"],
        "tail_bounded": stats["peak_tail_rows"] <= stats["segment_size"],
        "index_bytes": stats["index_bytes"],
        "bytes_per_triple": stats["index_bytes"] / max(ingested, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, verdict gates only (CI smoke run)")
    parser.add_argument("--scale", type=int, default=None,
                        help="workload size knob (default: 24 quick, 96 full)")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--repeats", type=int, default=7,
                        help="scan-throughput rounds, best-of (default 7)")
    parser.add_argument("--ingest-triples", type=int, default=1_000_000,
                        help="streaming-ingest size for full runs "
                             "(default 1,000,000)")
    parser.add_argument("--min-memory-ratio", type=float, default=3.0,
                        help="fail a full run when dict resident bytes per "
                             "triple are not at least this multiple of "
                             "columnar's (default 3.0)")
    parser.add_argument("--min-scan-speedup", type=float, default=2.0,
                        help="fail a full run below this columnar-vs-dict "
                             "cold-scan speedup (default 2.0)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result rows as JSON (CI artifact)")
    args = parser.parse_args(argv)

    scale = args.scale or (24 if args.quick else 96)
    ok = True
    payload = {"benchmark": "columnar", "quick": args.quick, "scale": scale,
               "min_memory_ratio": args.min_memory_ratio,
               "min_scan_speedup": args.min_scan_speedup}

    print(f"{'workload':>10} {'jobs':>5} {'triples':>8} {'dict':>9} "
          f"{'columnar':>9} {'agree':>6}")
    verdict_rows = []
    for kind in ("sparse", "person", "community"):
        for jobs in (1, 2):
            row = run_verdict_round(kind, scale, args.seed, jobs)
            verdict_rows.append(row)
            print(f"{row['workload']:>10} {row['jobs']:>5} {row['triples']:>8} "
                  f"{row['dict_s'] * 1000:>7.1f}ms "
                  f"{row['columnar_s'] * 1000:>7.1f}ms "
                  f"{'yes' if row['agree'] else 'NO':>6}")
            if not row["agree"]:
                print(f"  !! {kind} (jobs={jobs}): stores disagree",
                      file=sys.stderr)
                ok = False
            if not row["ground_truth_ok"]:
                print(f"  !! {kind} (jobs={jobs}): verdicts disagree with "
                      "ground truth", file=sys.stderr)
                ok = False
    payload["verdict_rounds"] = verdict_rows

    memory = run_memory_round(scale, args.seed)
    payload["memory"] = memory
    print(f"memory: dict {memory['dict_bytes_per_triple']:.0f} B/triple, "
          f"columnar {memory['columnar_bytes_per_triple']:.0f} B/triple "
          f"({memory['memory_ratio']:.2f}x)")

    scan = run_scan_round(scale, args.seed, args.repeats)
    payload["scan"] = scan
    print(f"scan: dict {scan['dict_triples_per_s']:,.0f} triples/s, "
          f"columnar {scan['columnar_triples_per_s']:,.0f} triples/s "
          f"({scan['scan_speedup']:.2f}x)")

    snapshot = run_snapshot_round(scale, args.seed)
    payload["snapshot"] = snapshot
    print(f"snapshot: dict {snapshot['dict_payload_bytes']:,} B "
          f"({snapshot['dict_encode_s'] * 1000:.1f}ms encode), "
          f"columnar {snapshot['columnar_payload_bytes']:,} B "
          f"({snapshot['columnar_encode_s'] * 1000:.1f}ms encode)")

    gates_checked = not args.quick
    if gates_checked:
        if memory["memory_ratio"] < args.min_memory_ratio:
            print(f"!! memory ratio {memory['memory_ratio']:.2f}x below the "
                  f"{args.min_memory_ratio:.1f}x threshold", file=sys.stderr)
            ok = False
        if scan["scan_speedup"] < args.min_scan_speedup:
            print(f"!! scan speedup {scan['scan_speedup']:.2f}x below the "
                  f"{args.min_scan_speedup:.1f}x threshold", file=sys.stderr)
            ok = False
        ingest = run_ingest_round(args.ingest_triples)
        payload["ingest"] = ingest
        print(f"ingest: {ingest['triples']:,} triples in "
              f"{ingest['seconds']:.1f}s "
              f"({ingest['triples_per_s']:,.0f} triples/s, "
              f"{ingest['segments']} segments, "
              f"peak tail {ingest['peak_tail_rows']} rows)")
        if not ingest["tail_bounded"]:
            print("!! streaming ingest exceeded one segment of decoded tail",
                  file=sys.stderr)
            ok = False
    payload["gates_checked"] = gates_checked
    payload["ok"] = ok

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
