"""B2 — derivative growth (Example 10) and the cost of representing derivatives.

Section 7 notes that "the main complexity of the algorithm comes from the
process of calculating and representing derivatives of shape expressions" and
Example 10 shows an expression whose derivative grows.  This benchmark
measures the derivative engine on the balanced-alternation workload
``(a→V | b→V)*`` and on the owing-interleave workload ``(a→V ‖ b→V)*`` and
records the peak expression size alongside the running time.

Regenerate with::

    pytest benchmarks/bench_derivative_growth.py --benchmark-only
"""

import pytest

from conftest import run_case
from repro.rdf import EX, Literal, Triple
from repro.shex import arc, interleave, star, value_set
from repro.workloads import NeighbourhoodCase, balanced_alternation_case

BALANCED_PAIRS = [2, 4, 8, 16]
#: the owing-interleave derivative grows steeply (Example 10); keep it small.
OWING_PAIRS = [2, 4, 6]


def owing_interleave_case(pairs: int) -> NeighbourhoodCase:
    """``(a→V ‖ b→V)*`` with ``pairs`` a/b pairs — the derivative grows here."""
    values = value_set(*range(1, max(2, pairs) + 1))
    expression = star(interleave(arc(EX.a, values), arc(EX.b, values)))
    node = EX.subject
    triples = set()
    for index in range(pairs):
        triples.add(Triple(node, EX.a, Literal(index + 1)))
        triples.add(Triple(node, EX.b, Literal(index + 1)))
    return NeighbourhoodCase(
        name=f"owing-{pairs}", expression=expression, node=node,
        triples=frozenset(triples), expected=True,
        parameters={"pairs": pairs},
    )


@pytest.mark.parametrize("pairs", BALANCED_PAIRS)
def test_balanced_alternation(benchmark, derivative_engine, pairs):
    case = balanced_alternation_case(pairs)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size


@pytest.mark.parametrize("pairs", OWING_PAIRS)
def test_owing_interleave(benchmark, derivative_engine, pairs):
    case = owing_interleave_case(pairs)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size


@pytest.mark.parametrize("pairs", [2, 4])
def test_owing_interleave_backtracking(benchmark, backtracking_engine, pairs):
    """The same growing workload on the baseline, for the B2 comparison row."""
    case = owing_interleave_case(pairs)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["decompositions"] = result.stats.decompositions
