"""B1 — the headline claim: derivatives vs. backtracking as neighbourhoods grow.

Reproduces the paper's qualitative result (Sections 5–8): the derivative
matcher scales with the number of triples in the neighbourhood, while the
naïve backtracking matcher degrades exponentially because it enumerates graph
decompositions.  Two workload families are measured:

* ``star``: ``(b→{1..k})*`` — the friendly case, both engines are fast;
* ``paper``: ``a→1 ‖ (b→{1..k})*`` on **rejecting** neighbourhoods (an extra
  ``a`` arc, as in Example 12) — the backtracking matcher must exhaust every
  decomposition before giving up, which is where the exponential blow-up
  appears.

Regenerate with::

    pytest benchmarks/bench_engines_scaling.py --benchmark-only
"""

import pytest

from conftest import run_case
from repro.workloads import paper_interleave_case, star_case

#: neighbourhood sizes for the friendly star workload.
STAR_SIZES = [4, 16, 64, 256]
#: extra-arc counts for the adversarial (rejecting) workload; kept small
#: because the backtracking engine is exponential here.
REJECTING_SIZES = [2, 4, 6, 8]


@pytest.mark.parametrize("arcs", STAR_SIZES)
def test_derivatives_star_accepting(benchmark, derivative_engine, arcs):
    case = star_case(arcs)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["derivative_steps"] = result.stats.derivative_steps


@pytest.mark.parametrize("arcs", STAR_SIZES)
def test_backtracking_star_accepting(benchmark, backtracking_engine, arcs):
    case = star_case(arcs)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["decompositions"] = result.stats.decompositions


@pytest.mark.parametrize("extra_arcs", REJECTING_SIZES)
def test_derivatives_paper_shape_rejecting(benchmark, derivative_engine, extra_arcs):
    case = paper_interleave_case(extra_arcs, matching=False)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["derivative_steps"] = result.stats.derivative_steps


@pytest.mark.parametrize("extra_arcs", REJECTING_SIZES)
def test_backtracking_paper_shape_rejecting(benchmark, backtracking_engine, extra_arcs):
    case = paper_interleave_case(extra_arcs, matching=False)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["decompositions"] = result.stats.decompositions


@pytest.mark.parametrize("extra_arcs", REJECTING_SIZES)
def test_derivatives_paper_shape_accepting(benchmark, derivative_engine, extra_arcs):
    case = paper_interleave_case(extra_arcs, matching=True)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["derivative_steps"] = result.stats.derivative_steps


@pytest.mark.parametrize("extra_arcs", REJECTING_SIZES)
def test_backtracking_paper_shape_accepting(benchmark, backtracking_engine, extra_arcs):
    case = paper_interleave_case(extra_arcs, matching=True)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["triples"] = case.size
    benchmark.extra_info["decompositions"] = result.stats.decompositions
