#!/usr/bin/env python3
"""B16 — resident shard fleet: warm delta rounds vs fork-per-run sharding.

PR 8 promotes :class:`~repro.service.sharding.ShardedValidator` from a
fork-a-pool-per-run scheduler into a *resident* fleet: shard worker
processes live for the session, each owning a shard-local graph replica,
change journal and maintained baseline, so a delta round is a pair of queue
round-trips instead of a pool spawn + full state pickle.  This benchmark
drives both modes through the same session API and gates the claims:

* **warm resident rounds vs refork rounds** (full runs gate ≥3×,
  ``--min-speedup``): identical community workloads take the same sequence
  of delta + full-verdict-sweep rounds through a ``shards=2`` resident
  session and a ``shards=2`` ``resident=False`` (PR 7 fork-per-run) session;
  mean round wall time must favour the resident fleet,
* **per-round byte identity** (gates every run): each round's
  :class:`DeltaResponse` and every default (reason-less) verdict response
  must serialise byte-identically across serial, ``--jobs 2``, resident
  ``--shards 2`` and refork ``--shards 2`` sessions,
* **fleet health** (gates every run): the resident fleet must finish with
  zero respawns and the same worker pids it started with — the speedup has
  to come from residency, not from degraded serial fallbacks,
* **kill-one-worker heal round** (gates every run): after SIGKILLing one
  shard worker, degraded reads (``allow_degraded``) must answer from the
  surviving shard and the coordinator baseline *without blocking on the
  dead shard or triggering a respawn*; the next delta round must heal the
  fleet (respawn + warm load) and converge to verdicts byte-identical to
  a never-killed serial session.  Heal latency is reported as the wall
  time of that first post-kill round.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full run
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --json BENCH_fleet.json

Exit status: 0 on success, 1 on any byte mismatch, fleet respawn, or (full
runs) a missed resident-vs-refork speedup threshold.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.service import (
    DeltaRequest,
    FaultPlan,
    FaultSpec,
    ServiceError,
    ValidationSession,
)
from repro.service.fleet import shard_of
from repro.workloads import generate_community_workload, person_schema

sys.setrecursionlimit(100_000)

FOAF_AGE = "<http://xmlns.com/foaf/0.1/age>"
FOAF_NAME = "<http://xmlns.com/foaf/0.1/name>"
XSD_INT = "<http://www.w3.org/2001/XMLSchema#integer>"


def _workload(scale: int, seed: int):
    return generate_community_workload(num_communities=max(scale // 8, 2),
                                       people_per_community=8, seed=seed)


def _round_delta(nodes, round_index):
    """One reversible mutation per round touching two subjects (so the
    restricted re-run is non-trivial and the refork path really forks):
    break a person with a duplicate age on even rounds, repair them on odd
    rounds, and always add a valid-preserving alias to a second person."""
    victim = nodes[round_index % len(nodes)]
    extra = nodes[(round_index + 7) % len(nodes)]
    breaking = f'{victim.n3()} {FOAF_AGE} "9999"^^{XSD_INT} .\n'
    naming = f'{extra.n3()} {FOAF_NAME} "Alias{round_index}" .\n'
    if round_index % 2 == 0:
        return naming + breaking, ""
    return naming, breaking


def _verdict_blob(session, nodes):
    return tuple(json.dumps(session.verdict(node.n3()).to_json(),
                            sort_keys=True) for node in nodes)


def run_fleet_rounds(scale: int, rounds: int, seed: int) -> dict:
    """The headline comparison: identical delta + verdict-sweep rounds
    through four sessions; resident and refork rounds are timed."""
    modes = [
        ("serial", {}),
        ("jobs2", {"jobs": 2}),
        ("resident", {"shards": 2, "resident": True}),
        ("refork", {"shards": 2, "resident": False}),
    ]
    sessions = {}
    for name, kwargs in modes:
        workload = _workload(scale, seed)
        sessions[name] = ValidationSession(workload.graph, person_schema(),
                                           **kwargs)
    nodes = sorted(_workload(scale, seed).all_nodes,
                   key=lambda term: term.value)

    byte_mismatches = 0
    resident_times = []
    refork_times = []
    try:
        for session in sessions.values():
            session.validate()
        fleet_before = sessions["resident"].stats().to_json()["fleet"]

        for round_index in range(rounds):
            add, remove = _round_delta(nodes, round_index)
            request = DeltaRequest(add=add, remove=remove)
            responses = {}
            blobs = {}
            for name, session in sessions.items():
                start = time.perf_counter()
                response = session.apply_delta(request)
                blob = _verdict_blob(session, nodes)
                elapsed = time.perf_counter() - start
                responses[name] = json.dumps(response.to_json(),
                                             sort_keys=True)
                blobs[name] = blob
                if name == "resident":
                    resident_times.append(elapsed)
                elif name == "refork":
                    refork_times.append(elapsed)
            if len(set(responses.values())) != 1 or len(set(blobs.values())) != 1:
                byte_mismatches += 1

        fleet_after = sessions["resident"].stats().to_json()["fleet"]
    finally:
        for session in sessions.values():
            session.close()

    resident_mean = statistics.mean(resident_times)
    refork_mean = statistics.mean(refork_times)
    return {
        "workload": "community",
        "nodes": len(nodes),
        "rounds": rounds,
        "shards": 2,
        "resident_round_ms": round(resident_mean * 1e3, 3),
        "refork_round_ms": round(refork_mean * 1e3, 3),
        "speedup": round(refork_mean / resident_mean, 2)
        if resident_mean else float("inf"),
        "byte_identical": byte_mismatches == 0,
        "byte_mismatch_rounds": byte_mismatches,
        "fleet_pids_stable": fleet_before.get("pids")
        == fleet_after.get("pids"),
        "fleet_respawns": fleet_after.get("respawns", 0),
        "fleet_worker_rounds": [worker.get("rounds", 0) for worker
                                in fleet_after.get("workers", [])],
    }


def run_heal_round(scale: int, seed: int) -> dict:
    """Kill one resident worker mid-round, exercise degraded reads during
    the outage, then measure how long the idempotent retry takes to heal
    the fleet and converge back to serial-identical verdicts.

    The kill is a seeded :class:`FaultSpec` (the shard 0 worker
    ``os._exit``\\ s just before its second revalidation) rather than an
    external SIGKILL, because only a mid-round death leaves the stale
    baseline window where degraded reads matter — a worker killed between
    rounds is healed by the next write before anyone notices."""
    plan = FaultPlan(specs=(
        FaultSpec(point="fleet.crash-before-revalidate", shard=0,
                  hits=(1,)),), seed=seed)
    workload = _workload(scale, seed)
    serial_workload = _workload(scale, seed)
    session = ValidationSession(workload.graph, person_schema(), shards=2,
                                fault_plan=plan,
                                fleet_response_timeout=30.0)
    serial = ValidationSession(serial_workload.graph, person_schema())
    nodes = sorted(workload.all_nodes, key=lambda term: term.value)
    result: dict = {"workload": "community", "nodes": len(nodes),
                    "shards": 2, "fault_plan": plan.to_json()}
    try:
        session.validate()
        serial.validate()

        # one warm round first, so heal latency is measured against a
        # settled fleet and the serial twin stays in lock-step
        add, remove = _round_delta(nodes, 0)
        start = time.perf_counter()
        session.apply_delta(DeltaRequest(add=add, remove=remove))
        result["warm_round_ms"] = round((time.perf_counter() - start) * 1e3,
                                        3)
        serial.apply_delta(DeltaRequest(add=add, remove=remove))

        # round 1: the shard 0 worker dies before revalidating — the
        # delta is applied but the round surfaces a typed 503
        add, remove = _round_delta(nodes, 1)
        request = DeltaRequest(add=add, remove=remove, delta_id="heal-1")
        killed = False
        try:
            session.apply_delta(request)
        except ServiceError as error:
            killed = error.code == "fleet-worker-died"
        result["worker_killed"] = killed

        # degraded reads during the outage: one node owned by the dead
        # shard, one by the survivor.  Neither may block on the corpse
        # (the fleet timeout is 30s; anything near it means we waited on
        # the dead worker) and neither may trigger a heal — degraded
        # reads are read-only by contract.
        respawns_before = session.health()["fleet"]["respawns"]
        dead_node = next(n for n in nodes if shard_of(n, 2) == 0)
        live_node = next(n for n in nodes if shard_of(n, 2) == 1)
        start = time.perf_counter()
        dead_verdict = session.verdict(dead_node.n3(), allow_degraded=True)
        live_verdict = session.verdict(live_node.n3(), allow_degraded=True)
        degraded_ms = (time.perf_counter() - start) * 1e3
        result["degraded_read_ms"] = round(degraded_ms, 3)
        result["degraded_reads_answered"] = (
            dead_verdict.conforms is not None
            and live_verdict.conforms is not None
            and 0 in (dead_verdict.missing_shards or ())
            and 0 in (live_verdict.missing_shards or ()))
        result["degraded_reads_blocked"] = degraded_ms > 2_000.0
        result["degraded_reads_respawned"] = \
            session.health()["fleet"]["respawns"] != respawns_before

        # the idempotent retry heals: respawn + warm load + converge,
        # without re-applying the already-applied delta
        start = time.perf_counter()
        session.apply_delta(request)
        result["heal_round_ms"] = round((time.perf_counter() - start) * 1e3,
                                        3)
        serial.apply_delta(DeltaRequest(add=add, remove=remove))
        health = session.health()["fleet"]
        result["respawns"] = health["respawns"]
        result["workers_alive"] = health["workers_alive"]
        result["byte_identical_after_heal"] = \
            _verdict_blob(session, nodes) == _verdict_blob(serial, nodes)
    finally:
        session.close()
        serial.close()
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale; speedup reported, not gated")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result table to PATH as JSON")
    parser.add_argument("--rounds", type=int, default=None,
                        help="delta + verdict-sweep rounds per mode")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required resident/refork ratio on full runs")
    args = parser.parse_args(argv)

    scale, rounds = (24, 3) if args.quick else (64, 10)
    rounds = args.rounds if args.rounds is not None else rounds

    print(f"== resident fleet vs fork-per-run sharding "
          f"(scale={scale}, rounds={rounds}, shards=2) ==")
    row = run_fleet_rounds(scale, rounds, args.seed)
    print(f"  resident round : {row['resident_round_ms']}ms mean "
          f"(delta + {row['nodes']}-verdict sweep)")
    print(f"  refork round   : {row['refork_round_ms']}ms mean")
    print(f"  speedup        : {row['speedup']}x "
          f"(byte_identical={row['byte_identical']}, "
          f"pids_stable={row['fleet_pids_stable']}, "
          f"respawns={row['fleet_respawns']})")

    print(f"== kill-one-worker heal round (scale={scale}, shards=2) ==")
    heal = run_heal_round(scale, args.seed)
    print(f"  warm round     : {heal['warm_round_ms']}ms")
    print(f"  degraded reads : {heal['degraded_read_ms']}ms during outage "
          f"(answered={heal['degraded_reads_answered']}, "
          f"respawned={heal['degraded_reads_respawned']})")
    print(f"  heal round     : {heal['heal_round_ms']}ms "
          f"(respawns={heal['respawns']}, "
          f"byte_identical={heal['byte_identical_after_heal']})")

    failures = []
    if not row["byte_identical"]:
        failures.append(f"{row['byte_mismatch_rounds']} rounds were not "
                        "byte-identical across serial/jobs/resident/refork")
    if not row["fleet_pids_stable"]:
        failures.append("resident fleet pids changed mid-benchmark")
    if row["fleet_respawns"]:
        failures.append(f"resident fleet respawned {row['fleet_respawns']} "
                        "workers")
    if not args.quick and row["speedup"] < args.min_speedup:
        failures.append(f"resident speedup {row['speedup']}x is below the "
                        f"{args.min_speedup}x threshold")
    if not heal["worker_killed"]:
        failures.append("fault injection did not kill the shard 0 worker")
    if not heal["degraded_reads_answered"]:
        failures.append("degraded reads during the outage did not answer "
                        "with verdicts + missing_shards")
    if heal["degraded_reads_blocked"]:
        failures.append(f"degraded reads took {heal['degraded_read_ms']}ms "
                        "— they blocked on the dead shard")
    if heal["degraded_reads_respawned"]:
        failures.append("degraded reads triggered a fleet respawn; reads "
                        "must never heal")
    if not heal["respawns"]:
        failures.append("the retry round did not respawn the dead worker")
    if not heal["byte_identical_after_heal"]:
        failures.append("post-heal verdicts diverged from the serial twin")

    result = {
        "benchmark": "fleet",
        "quick": args.quick,
        "fleet_rounds": row,
        "heal_round": heal,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
