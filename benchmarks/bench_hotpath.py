#!/usr/bin/env python3
"""B14 — hot path: neighbourhood-signature verdict dedupe end to end.

PR 10 adds a :class:`~repro.shex.cache.SignatureCache` that folds every
signature-closed subject onto its canonical neighbourhood signature and
serves repeat structures from a dictionary instead of the derivative
engine.  This benchmark measures that on the hub-heavy knowledge-base
workload (:func:`repro.workloads.generate_kb_workload`): thousands of
entities stamped from a few dozen structural templates, a handful of
power-law hubs referencing them, and facet-heavy constraints the compiled
value screen refuses, so every entity reaches the engine when the cache
is off.

Three arms run with the cache on and off — serial bulk validation,
``jobs=2`` SCC-parallel bulk validation, and incremental revalidation
after a wide mutation — and two checks gate the timings:

* verdict identity: the cached and uncached reports must agree on every
  ``(node, label)`` pair, in every arm,
* on full runs, a ≥3× single-core end-to-end speedup (``--min-speedup``)
  of the cached serial arm over the uncached one.

A small backtracking-engine round rides along so the per-phase profile in
the JSON artifact exercises every wall counter (``backtrack_time``
included); the artifact fails the run if any per-phase counter is zero.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py             # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick     # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --json out.json

Exit status: 0 on success, 1 on any verdict mismatch, missed speedup
threshold (full runs) or missing profile counter.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

from repro.rdf import EX, Literal, Triple
from repro.service.session import collect_stats
from repro.shex import BacktrackingEngine, Validator
from repro.workloads import generate_kb_workload, generate_person_workload

sys.setrecursionlimit(100_000)

#: the per-phase wall counters the profile must populate.
_PHASE_COUNTERS = ("signature_time", "prefilter_time", "dispatch_time",
                   "backtrack_time", "cache_time")

#: the shapes a KB deployment actually targets: entities against <Entity>,
#: hubs against <Hub>.  The nullable <Note> shape is still exercised — every
#: hub's ``ex:seeAlso`` arcs resolve it through the reference machinery.
_LABELS = ("Entity", "Hub")


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def _make_validator(workload, *, cached: bool, jobs: int = 1) -> Validator:
    return Validator(workload.graph, workload.schema, cache=True, jobs=jobs,
                     signature_cache=None if cached else False)


def _timed_full(workload, *, cached: bool, jobs: int = 1):
    validator = _make_validator(workload, cached=cached, jobs=jobs)
    gc.collect()
    start = time.perf_counter()
    report = validator.validate_graph(labels=_LABELS)
    return validator, report, time.perf_counter() - start


def run_full_arm(mode: str, scale: int, hubs: int, seed: int, jobs: int,
                 reps: int = 1) -> dict:
    """One cached-vs-uncached bulk round; returns timings plus identity.

    The two arms are sampled as back-to-back *pairs*, ``reps`` times, and
    the reported speedup is the median of the per-pair ratios: shared-host
    wall time comes in bursts of slowness, and pairing means a burst hits
    both arms of a sample alike instead of landing on whichever arm a
    best-of-N loop happened to be running.  A fresh validator (and caches)
    is built per sample.
    """
    cached_w = generate_kb_workload(num_entities=scale, num_hubs=hubs, seed=seed)
    uncached_w = generate_kb_workload(num_entities=scale, num_hubs=hubs, seed=seed)
    validator = cached_report = uncached_report = None
    cached_s = uncached_s = float("inf")
    ratios = []
    for _ in range(max(1, reps)):
        rep_validator, rep_cached, rep_cached_s = _timed_full(
            cached_w, cached=True, jobs=jobs)
        _, rep_uncached, rep_uncached_s = _timed_full(
            uncached_w, cached=False, jobs=jobs)
        ratios.append(rep_uncached_s / rep_cached_s if rep_cached_s
                      else float("inf"))
        cached_s = min(cached_s, rep_cached_s)
        uncached_s = min(uncached_s, rep_uncached_s)
        if validator is None:
            validator, cached_report = rep_validator, rep_cached
            uncached_report = rep_uncached
    cached_verdicts = _verdicts(cached_report)
    stats = collect_stats(validator, cached_report.total_stats())
    return {
        "mode": mode,
        "jobs": jobs,
        "entities": scale,
        "hubs": hubs,
        "triples": len(cached_w.graph),
        "pairs": len(cached_verdicts),
        "cached_s": cached_s,
        "uncached_s": uncached_s,
        "speedup": sorted(ratios)[len(ratios) // 2],
        "ratios": ratios,
        "identical": cached_verdicts == _verdicts(uncached_report),
        "signature": stats.signature,
        "profile": stats.profile,
    }


def _mutate(workload) -> None:
    """Widen the graph: every fifth valid entity gains one motto arc.

    The touched entities migrate to the neighbouring structural template
    (one more ``ex:motto``), whose signature the warm cache has usually
    already settled — revalidation with the cache on re-derives almost
    nothing, while the uncached arm re-runs the engine per affected node.
    """
    victims = workload.valid_entities[::5]
    workload.graph.add_all(
        Triple(victim, EX.motto, Literal("Onward together"))
        for victim in victims)


def run_revalidate_arm(scale: int, hubs: int, seed: int) -> dict:
    """Mutate a warm baseline; compare cached vs uncached revalidation."""
    rounds = {}
    reports = {}
    for cached in (True, False):
        workload = generate_kb_workload(num_entities=scale, num_hubs=hubs,
                                        seed=seed)
        validator = _make_validator(workload, cached=cached)
        validator.validate_graph(labels=_LABELS)
        _mutate(workload)
        gc.collect()
        start = time.perf_counter()
        result = validator.revalidate(labels=_LABELS)
        rounds[cached] = time.perf_counter() - start
        reports[cached] = _verdicts(result.report)
        if cached:
            full_rebuild = bool(result.full_rebuild)
    # a fresh uncached full run of the mutated graph is the ground truth
    check = generate_kb_workload(num_entities=scale, num_hubs=hubs, seed=seed)
    _mutate(check)
    _, fresh_report, _ = _timed_full(check, cached=False)
    fresh = _verdicts(fresh_report)
    return {
        "mode": "revalidate",
        "jobs": 1,
        "entities": scale,
        "hubs": hubs,
        "cached_s": rounds[True],
        "uncached_s": rounds[False],
        "speedup": rounds[False] / rounds[True] if rounds[True] else float("inf"),
        "identical": reports[True] == reports[False] == fresh,
        "full_rebuild": full_rebuild,
    }


def run_backtracking_probe(seed: int) -> dict:
    """A small exponential round so ``backtrack_time`` is exercised."""
    workload = generate_person_workload(num_people=12, invalid_fraction=0.25,
                                        knows_probability=0.2, seed=seed)
    validator = Validator(workload.graph, workload.schema,
                          engine=BacktrackingEngine())
    report = validator.validate_graph()
    stats = collect_stats(validator, report.total_stats())
    return dict(stats.profile)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, identity checks only (CI smoke run)")
    parser.add_argument("--scale", type=int, default=None,
                        help="number of entities (default: 120 quick, 4000 full)")
    parser.add_argument("--hubs", type=int, default=None,
                        help="number of hubs (default: 4 quick, 10 full)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail a full run when the cached serial arm is "
                             "not this much faster end to end (default 3.0)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result rows as JSON (CI artifact)")
    args = parser.parse_args(argv)

    scale = args.scale or (120 if args.quick else 4000)
    hubs = args.hubs or (4 if args.quick else 10)
    # the gated serial arm samples five cached/uncached pairs after a
    # discarded warmup round: the very first validation of a process pays
    # import/allocator warmup, and wall time on small shared machines swings
    # enough that a single sample would make the gated ratio a coin toss.
    # The jobs=2 arm is identity-checked, not speed-gated — one pair is
    # plenty (worker pools dominate its wall time anyway).
    reps = 1 if args.quick else 5
    if not args.quick:
        run_full_arm("warmup", 60, 2, args.seed, jobs=1)

    ok = True
    print(f"{'mode':>12} {'jobs':>5} {'pairs':>7} {'uncached':>10} "
          f"{'cached':>10} {'speedup':>8} {'identical':>9}")
    serial = run_full_arm("serial", scale, hubs, args.seed, jobs=1, reps=reps)
    parallel = run_full_arm("jobs2", scale, hubs, args.seed, jobs=2, reps=1)
    revalidate = run_revalidate_arm(scale, hubs, args.seed)
    arms = [serial, parallel, revalidate]
    for arm in arms:
        print(f"{arm['mode']:>12} {arm['jobs']:>5} {arm.get('pairs', '-'):>7} "
              f"{arm['uncached_s'] * 1000:>8.1f}ms "
              f"{arm['cached_s'] * 1000:>8.1f}ms "
              f"{arm['speedup']:>7.2f}x {str(arm['identical']):>9}")
        if not arm["identical"]:
            print(f"  !! {arm['mode']}: cached verdicts diverge from the "
                  "uncached baseline", file=sys.stderr)
            ok = False
    if revalidate.get("full_rebuild"):
        print("  !! revalidate fell back to a full rebuild", file=sys.stderr)
        ok = False

    gates_checked = not args.quick
    if gates_checked and serial["speedup"] < args.min_speedup:
        print(f"!! serial speedup {serial['speedup']:.2f}x below the "
              f"{args.min_speedup:.1f}x threshold", file=sys.stderr)
        ok = False

    backtracking = run_backtracking_probe(args.seed)
    profile = dict(serial["profile"])
    profile["backtrack_time"] = profile.get("backtrack_time", 0.0) \
        + backtracking.get("backtrack_time", 0.0)
    for counter in _PHASE_COUNTERS:
        if not profile.get(counter):
            print(f"!! per-phase counter {counter} is zero — the profiling "
                  "harness lost a phase", file=sys.stderr)
            ok = False
    signature = serial["signature"]
    if not (signature.get("hits") and signature.get("dedupes")):
        print("!! the signature cache served no hits on the dedupe workload",
              file=sys.stderr)
        ok = False

    if args.json:
        payload = {
            "benchmark": "hotpath",
            "quick": args.quick,
            "scale": scale,
            "hubs": hubs,
            "seed": args.seed,
            "min_speedup": args.min_speedup,
            "gates_checked": gates_checked,
            "arms": arms,
            "profile": profile,
            "signature": signature,
            "backtracking_probe": backtracking,
            "ok": ok,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
