#!/usr/bin/env python3
"""B13 — incremental revalidation: journal + retraction vs full re-runs.

PR 5 adds a change journal to the graph, a reverse-reachability closure over
the reference graph and a sound retraction protocol in the shared validation
context, so that after k of N subjects mutate, ``Validator.revalidate``
re-runs only the affected region instead of rebuilding everything.  This
benchmark measures that on the community workload (one reference-graph SCC
per community): mutating a member dirties its community — and, through the
``foaf:knows @<Person>`` cascade, exactly its community — so the affected
closure stays k-proportional while the graph grows.

Two checks gate every timing:

* verdict agreement: the delta-updated report must equal a fresh full
  ``validate_graph`` on the mutated graph, entry for entry, and the ground
  truth of untouched communities must be preserved,
* on full runs, a ≥5× speedup (``--min-speedup``) of ``revalidate`` over a
  fresh full validation at the smallest k (k ≪ N).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py            # full run
    PYTHONPATH=src python benchmarks/bench_incremental.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_incremental.py --json out.json

Exit status: 0 on success, 1 on any verdict mismatch or (full runs) a missed
speedup threshold.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

from repro.rdf import FOAF, Literal, Triple
from repro.shex import Validator
from repro.workloads import generate_community_workload

sys.setrecursionlimit(100_000)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def run_mutation_round(num_communities: int, people: int, k: int,
                       seed: int) -> dict:
    """Mutate ``k`` subjects of an N-subject graph; time incremental vs full.

    The mutation adds a duplicate ``foaf:age`` to one valid member of ``k``
    distinct communities (applied as one batch, so the journal coalesces it
    into a single generation step).  The incremental arm consumes the journal
    through ``revalidate``; the full arm validates the *same mutated graph*
    from scratch with a fresh validator — both see identical warm
    neighbourhood caches, so the comparison isolates the validation work.
    """
    workload = generate_community_workload(
        num_communities=num_communities, people_per_community=people, seed=seed)
    graph, schema = workload.graph, workload.schema
    validator = Validator(graph, schema, cache=True)
    gc.collect()
    start = time.perf_counter()
    validator.validate_graph()
    baseline_s = time.perf_counter() - start
    # untimed warm-up round: one mutate → revalidate → undo → revalidate
    # cycle pays every one-time cost (partition module import, lazy memos)
    # and restores the exact baseline state before the measured round
    probe = Triple(workload.valid_nodes[-1], FOAF.age, Literal(498))
    graph.add(probe)
    warmup = validator.revalidate()
    assert not warmup.full_rebuild
    graph.remove(probe)
    warmup = validator.revalidate()
    assert not warmup.full_rebuild

    # one victim in each of k distinct communities
    victims = []
    seen_communities = set()
    for node in workload.valid_nodes:
        community = str(node.value).rsplit("_", 1)[0]
        if community not in seen_communities:
            seen_communities.add(community)
            victims.append(node)
        if len(victims) == k:
            break
    assert len(victims) == k, "not enough communities for the requested k"
    graph.add_all(Triple(victim, FOAF.age, Literal(499)) for victim in victims)

    gc.collect()
    start = time.perf_counter()
    result = validator.revalidate()
    incremental_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    fresh = Validator(graph, schema, cache=True).validate_graph()
    full_s = time.perf_counter() - start

    incremental = _verdicts(result.report)
    agree = incremental == _verdicts(fresh) \
        and result.report.typing == fresh.typing
    # untouched communities keep their ground truth; mutated communities
    # cascade to invalid through the knows reference ring
    mutated = {str(v.value).rsplit("_", 1)[0] for v in victims}
    ground_truth_ok = all(
        incremental[(node, "Person")] == (node in set(workload.valid_nodes))
        for node in workload.all_nodes
        if str(node.value).rsplit("_", 1)[0] not in mutated
    ) and all(not incremental[(victim, "Person")] for victim in victims)

    stats = result.stats()
    return {
        "communities": num_communities,
        "people_per_community": people,
        "subjects": len(workload.all_nodes),
        "triples": len(graph),
        "k": k,
        "dirty_subjects": stats["dirty_subjects"],
        "affected_nodes": stats["affected_nodes"],
        "revalidated_pairs": stats["revalidated_pairs"],
        "reused_pairs": stats["reused_pairs"],
        "full_rebuild": bool(result.full_rebuild),
        "baseline_s": baseline_s,
        "incremental_s": incremental_s,
        "full_s": full_s,
        "speedup": full_s / incremental_s if incremental_s else float("inf"),
        "agree": agree,
        "ground_truth_ok": ground_truth_ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, agreement checks only (CI smoke run)")
    parser.add_argument("--communities", type=int, default=None,
                        help="number of communities (default: 8 quick, 48 full)")
    parser.add_argument("--people", type=int, default=None,
                        help="people per community (default: 8 quick, 12 full)")
    parser.add_argument("--edits", type=int, nargs="*",
                        help="explicit k values (mutated subjects per round)")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail a full run below this incremental-vs-full "
                             "speedup at the smallest k (default 5.0)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result rows as JSON (CI artifact)")
    args = parser.parse_args(argv)

    communities = args.communities or (8 if args.quick else 48)
    people = args.people or (8 if args.quick else 12)
    edits = args.edits or ([1, 2] if args.quick else [1, 4, 16])

    print(f"{'subjects':>9} {'k':>4} {'affected':>9} {'full':>9} "
          f"{'incremental':>12} {'speedup':>8}")
    ok = True
    rows = []
    for k in edits:
        row = run_mutation_round(communities, people, k, args.seed)
        rows.append(row)
        print(f"{row['subjects']:>9} {row['k']:>4} {row['affected_nodes']:>9} "
              f"{row['full_s'] * 1000:>7.1f}ms "
              f"{row['incremental_s'] * 1000:>10.1f}ms "
              f"{row['speedup']:>7.2f}x")
        if row["full_rebuild"]:
            print(f"  !! k={k}: revalidate fell back to a full rebuild",
                  file=sys.stderr)
            ok = False
        if not row["agree"]:
            print(f"  !! k={k}: incremental verdicts disagree with a fresh "
                  "full run", file=sys.stderr)
            ok = False
        if not row["ground_truth_ok"]:
            print(f"  !! k={k}: verdicts disagree with ground truth",
                  file=sys.stderr)
            ok = False

    speedup_checked = False
    if rows and not args.quick:
        speedup_checked = True
        smallest = min(rows, key=lambda row: row["k"])
        if smallest["speedup"] < args.min_speedup:
            print(f"!! speedup {smallest['speedup']:.2f}x at k={smallest['k']} "
                  f"below the {args.min_speedup:.1f}x threshold",
                  file=sys.stderr)
            ok = False

    if args.json:
        payload = {
            "benchmark": "incremental",
            "quick": args.quick,
            "min_speedup": args.min_speedup,
            "speedup_checked": speedup_checked,
            "rounds": rows,
            "ok": ok,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
