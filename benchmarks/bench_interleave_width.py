"""B3 — interleave width sweep: every ``‖`` multiplies the backtracking search.

The expression ``p1→v ‖ p2→v ‖ … ‖ pk→v`` forces the backtracking matcher to
split the neighbourhood at every operator, while the derivative matcher keeps
consuming one triple at a time.  The rejecting variant (an extra undeclared
arc) is the worst case because the search cannot stop early.

Regenerate with::

    pytest benchmarks/bench_interleave_width.py --benchmark-only
"""

import pytest

from conftest import run_case
from repro.workloads import interleave_width_case

WIDTHS = [2, 4, 6, 8]
#: the rejecting backtracking sweep is capped: it is the exponential case.
REJECTING_WIDTHS = [2, 4, 6]


@pytest.mark.parametrize("width", WIDTHS)
def test_derivatives_accepting(benchmark, derivative_engine, width):
    case = interleave_width_case(width)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["derivative_steps"] = result.stats.derivative_steps


@pytest.mark.parametrize("width", WIDTHS)
def test_backtracking_accepting(benchmark, backtracking_engine, width):
    case = interleave_width_case(width)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["decompositions"] = result.stats.decompositions


@pytest.mark.parametrize("width", WIDTHS)
def test_derivatives_rejecting(benchmark, derivative_engine, width):
    case = interleave_width_case(width, matching=False)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["derivative_steps"] = result.stats.derivative_steps


@pytest.mark.parametrize("width", REJECTING_WIDTHS)
def test_backtracking_rejecting(benchmark, backtracking_engine, width):
    case = interleave_width_case(width, matching=False)
    result = benchmark(run_case, backtracking_engine, case)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["decompositions"] = result.stats.decompositions


@pytest.mark.parametrize("width", [2, 3, 4])
def test_derivatives_two_arcs_per_branch(benchmark, derivative_engine, width):
    case = interleave_width_case(width, arcs_per_branch=2)
    result = benchmark(run_case, derivative_engine, case)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["max_expression_size"] = result.stats.max_expression_size
