#!/usr/bin/env python3
"""B10 — parallel bulk validation: SCC-partitioned scheduling vs the serial bulk path.

PR 1 made whole-graph validation fast inside one process (shared context +
global derivative cache); this benchmark measures the next multiplier:
partitioning the node reference graph by strongly-connected component
(``repro.shex.partition``) and validating independent components across a
process pool (``Validator(jobs=N)``).

The workload is ``generate_community_workload``: many mutually-independent
communities, each one SCC of the reference graph, so the condensation's
first level carries one unit of real work per community.  Every parallel
configuration is verdict-checked against the serial bulk path and the
workload's ground truth before any number is reported; on the smallest size
the backtracking engine is run through the same parallel scheduler as an
engine-agreement check.  A verdict mismatch fails the run regardless of any
timing.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_validation.py              # full
    PYTHONPATH=src python benchmarks/bench_parallel_validation.py --quick --jobs 2
    PYTHONPATH=src python benchmarks/bench_parallel_validation.py --json out.json

Exit status: 0 on success, 1 when any verdict disagrees, or when a full run
on a machine with enough cores misses the --min-speedup threshold (default
1.5x) at the highest job count on the largest size.  The speedup check is
skipped (with a warning) when fewer CPUs than jobs are available — a
single-core runner cannot exhibit parallel speedup — and on --quick CI
smoke runs, where verdict agreement is the point.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.shex import Validator
from repro.shex.partition import partition_reference_graph
from repro.workloads import generate_community_workload

# deep reference chains recurse one Python call stack per hop (engine +
# context frames); the interpreter default of 1000 is too tight at scale
sys.setrecursionlimit(100_000)


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def run_size(num_communities: int, people_per_community: int, seed: int,
             jobs_list, check_backtracking: bool) -> dict:
    """Benchmark one workload size at every requested job count."""
    workload = generate_community_workload(
        num_communities=num_communities,
        people_per_community=people_per_community,
        seed=seed,
    )
    graph, schema = workload.graph, workload.schema
    expected = {
        (node, "Person"): node in set(workload.valid_nodes)
        for node in workload.all_nodes
    }
    partition = partition_reference_graph(graph, schema)

    start = time.perf_counter()
    serial = Validator(graph, schema, shared_context=True, cache=True)
    serial_report = serial.validate_graph()
    serial_time = time.perf_counter() - start
    serial_verdicts = _verdicts(serial_report)
    ground_truth_ok = all(
        serial_verdicts[key] == value for key, value in expected.items())

    runs = []
    for jobs in jobs_list:
        start = time.perf_counter()
        parallel = Validator(graph, schema, shared_context=True, cache=True,
                             jobs=jobs)
        parallel_report = parallel.validate_graph()
        elapsed = time.perf_counter() - start
        runs.append({
            "jobs": jobs,
            "seconds": elapsed,
            "speedup": serial_time / elapsed if elapsed else float("inf"),
            "agree": _verdicts(parallel_report) == serial_verdicts,
        })

    backtracking_ok = True
    if check_backtracking:
        bt = Validator(graph, schema, engine="backtracking", budget=5_000_000,
                       shared_context=True, jobs=max(jobs_list))
        backtracking_ok = _verdicts(bt.validate_graph()) == serial_verdicts

    return {
        "communities": num_communities,
        "people": num_communities * people_per_community,
        "triples": len(graph),
        "partition": partition.stats(),
        "serial_s": serial_time,
        "runs": runs,
        "ground_truth_ok": ground_truth_ok,
        "backtracking_ok": backtracking_ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, verdict checks only (CI smoke run)")
    parser.add_argument("--jobs", type=int, nargs="*", metavar="N",
                        help="worker counts to benchmark (default: 2 4)")
    parser.add_argument("--communities", type=int, nargs="*",
                        help="explicit workload sizes (number of communities)")
    parser.add_argument("--people", type=int, default=12,
                        help="people per community (default 12)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail a full run below this speedup at the highest "
                             "job count on the largest size (default 1.5)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result rows as JSON (CI artifact)")
    args = parser.parse_args(argv)

    jobs_list = args.jobs or [2, 4]
    sizes = args.communities or ([6] if args.quick else [16, 48])
    cpus = os.cpu_count() or 1

    header = f"{'comms':>6} {'people':>7} {'triples':>8} {'comps':>6} {'serial':>9}"
    for jobs in jobs_list:
        header += f" {f'jobs={jobs}':>10} {'speedup':>8}"
    print(header)

    ok = True
    rows = []
    for index, size in enumerate(sizes):
        row = run_size(size, args.people, args.seed, jobs_list,
                       check_backtracking=index == 0)
        rows.append(row)
        line = (f"{row['communities']:>6} {row['people']:>7} {row['triples']:>8} "
                f"{row['partition']['components']:>6} "
                f"{row['serial_s'] * 1000:>7.1f}ms")
        for run in row["runs"]:
            line += f" {run['seconds'] * 1000:>8.1f}ms {run['speedup']:>7.2f}x"
        print(line)
        for run in row["runs"]:
            if not run["agree"]:
                print(f"  !! verdict mismatch vs serial bulk at jobs={run['jobs']}",
                      file=sys.stderr)
                ok = False
        if not row["ground_truth_ok"]:
            print(f"  !! serial verdicts disagree with ground truth at size {size}",
                  file=sys.stderr)
            ok = False
        if not row["backtracking_ok"]:
            print("  !! backtracking engine disagrees with the derivative engine",
                  file=sys.stderr)
            ok = False

    speedup_checked = False
    if rows and not args.quick:
        top_jobs = max(jobs_list)
        final = next(run for run in rows[-1]["runs"] if run["jobs"] == top_jobs)
        if cpus < top_jobs:
            print(f"note: only {cpus} CPU(s) available; skipping the "
                  f"{args.min_speedup:.1f}x speedup check at jobs={top_jobs}")
        else:
            speedup_checked = True
            if final["speedup"] < args.min_speedup:
                print(f"!! speedup {final['speedup']:.2f}x at jobs={top_jobs} "
                      f"below the {args.min_speedup:.1f}x threshold",
                      file=sys.stderr)
                ok = False

    if args.json:
        payload = {
            "benchmark": "parallel_validation",
            "quick": args.quick,
            "cpu_count": cpus,
            "jobs": jobs_list,
            "min_speedup": args.min_speedup,
            "speedup_checked": speedup_checked,
            "results": rows,
            "ok": ok,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
