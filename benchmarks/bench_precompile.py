#!/usr/bin/env python3
"""B12 — compiled-schema fast paths: prefilter + atom tables vs the plain bulk path.

PR 4 adds a :class:`~repro.shex.compiled.CompiledSchema` precomputation
layer: per-label nullability, first/required-predicate sets, sound
cardinality bounds, value screens and predicate-indexed atom tables, all
computed once per schema.  This benchmark measures the end-to-end effect on
the workload the layer is designed for — **sparse mismatch**: a
knowledge-base-style graph where most ``(node, label)`` pairs are statically
undecidable-to-match (wrong predicates, violated cardinalities, screened
value types), so the prefilter settles them without ever touching the
derivative engine.

Three checks gate every timing:

* verdict agreement between the compiled and the uncompiled validator on the
  sparse-mismatch workload itself (plus its ground truth),
* verdict agreement on the person and community workloads, serially **and**
  through the parallel scheduler (``jobs=2``),
* on full runs, a ≥2× end-to-end speedup (``--min-speedup``) of the compiled
  bulk path over ``precompile=False`` on the largest sparse-mismatch size.

Usage::

    PYTHONPATH=src python benchmarks/bench_precompile.py            # full run
    PYTHONPATH=src python benchmarks/bench_precompile.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_precompile.py --json out.json

Exit status: 0 on success, 1 on any verdict mismatch or (full runs) a missed
speedup threshold.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time

from repro.rdf import EX, XSD, Graph, Literal, Triple
from repro.shex import Schema, Validator
from repro.workloads import generate_community_workload, generate_person_workload

sys.setrecursionlimit(100_000)

#: a small catalogue schema: five shapes over mostly-disjoint predicates,
#: one of them recursive through ``ex:vendor @<Vendor>``.
CATALOGUE_SHEXC = """\
PREFIX ex:  <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

<Product> {
  ex:sku    xsd:string ,
  ex:price  xsd:integer ,
  ex:vendor @<Vendor> *
}
<Vendor> {
  ex:vname  xsd:string + ,
  ex:partner @<Vendor> *
}
<Reading> {
  ex:value  xsd:integer ,
  ex:unit   xsd:string
}
<Event> {
  ex:start  xsd:string ,
  ex:venue  xsd:string ,
  ex:grade  xsd:integer ?
}
<Review> {
  ex:stars  xsd:integer ,
  ex:text   xsd:string +
}
"""


def generate_sparse_mismatch(num_nodes: int, seed: int):
    """A graph where most nodes statically cannot match any catalogue shape.

    Node kinds (cycled deterministically):

    * ``alien``      — predicates no shape mentions (closed-world reject),
    * ``overfull``   — two ``ex:price`` arcs (cardinality reject),
    * ``missing``    — ``ex:sku`` only (required-predicate reject),
    * ``mistyped``   — ``ex:price`` carrying a string (value-screen reject),
    * ``product``    — a valid Product referencing a valid Vendor (the only
      nodes the engine genuinely has to run on).

    Returns ``(graph, schema, expected)`` where ``expected`` maps
    ``(node, label-string)`` to the ground-truth verdict.
    """
    rng = random.Random(seed)
    graph = Graph()
    schema = Schema.from_shexc(CATALOGUE_SHEXC)
    labels = ["Event", "Product", "Reading", "Review", "Vendor"]
    expected = {}

    vendor = EX["vendor0"]
    graph.add(Triple(vendor, EX.vname, Literal("ACME")))
    for label in labels:
        expected[(vendor, label)] = label == "Vendor"

    kinds = ["alien", "overfull", "missing", "mistyped", "product"]
    for index in range(num_nodes):
        node = EX[f"item{index}"]
        kind = kinds[index % len(kinds)]
        conforms = {label: False for label in labels}
        if kind == "alien":
            for arc_index in range(rng.randint(3, 6)):
                graph.add(Triple(node, EX[f"meta{arc_index}"],
                                 Literal(rng.randint(0, 9))))
        elif kind == "overfull":
            graph.add(Triple(node, EX.sku, Literal(f"sku-{index}")))
            price = rng.randint(1, 99)
            graph.add(Triple(node, EX.price, Literal(price)))
            graph.add(Triple(node, EX.price, Literal(price + 1)))
        elif kind == "missing":
            graph.add(Triple(node, EX.sku, Literal(f"sku-{index}")))
        elif kind == "mistyped":
            graph.add(Triple(node, EX.sku, Literal(f"sku-{index}")))
            graph.add(Triple(node, EX.price,
                             Literal(str(rng.randint(1, 99)), datatype=XSD.string)))
        else:  # a genuinely valid product
            graph.add(Triple(node, EX.sku, Literal(f"sku-{index}")))
            graph.add(Triple(node, EX.price, Literal(rng.randint(1, 99))))
            graph.add(Triple(node, EX.vendor, vendor))
            conforms["Product"] = True
        for label in labels:
            expected[(node, label)] = conforms[label]
    return graph, schema, expected


def _verdicts(report):
    return {(entry.node, str(entry.label)): entry.conforms for entry in report}


def run_sparse_size(num_nodes: int, seed: int) -> dict:
    """Time the compiled vs uncompiled bulk path on one sparse-mismatch size.

    Each arm validates its own structurally identical graph (same generator,
    same seed) so neither inherits the other's neighbourhood caches: the
    timings are true end-to-end costs including schema compilation.
    """
    graph, schema, expected = generate_sparse_mismatch(num_nodes, seed)
    plain_graph, plain_schema, _ = generate_sparse_mismatch(num_nodes, seed)

    gc.collect()
    start = time.perf_counter()
    compiled_report = Validator(graph, schema, cache=True).validate_graph()
    compiled_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    plain_report = Validator(plain_graph, plain_schema, cache=True,
                             precompile=False).validate_graph()
    plain_s = time.perf_counter() - start

    compiled_verdicts = _verdicts(compiled_report)
    stats = compiled_report.total_stats()
    return {
        "nodes": num_nodes,
        "triples": len(graph),
        "pairs": len(compiled_report),
        "compiled_s": compiled_s,
        "plain_s": plain_s,
        "speedup": plain_s / compiled_s if compiled_s else float("inf"),
        "prefilter_accepts": stats.prefilter_accepts,
        "prefilter_rejects": stats.prefilter_rejects,
        "agree": compiled_verdicts == _verdicts(plain_report),
        "ground_truth_ok": all(
            compiled_verdicts[key] == value for key, value in expected.items()
        ),
    }


def run_agreement(quick: bool) -> list:
    """Verdict-check compiled vs uncompiled on the standard workloads."""
    person = generate_person_workload(num_people=30 if quick else 120, seed=7)
    community = generate_community_workload(
        num_communities=4 if quick else 12, seed=7)
    rows = []
    for name, workload in (("person", person), ("community", community)):
        for jobs in (1, 2):
            compiled = Validator(workload.graph, workload.schema,
                                 cache=True, jobs=jobs).validate_graph()
            plain = Validator(workload.graph, workload.schema, cache=True,
                              jobs=jobs, precompile=False).validate_graph()
            verdicts = _verdicts(compiled)
            rows.append({
                "workload": name,
                "jobs": jobs,
                "pairs": len(compiled),
                "agree": verdicts == _verdicts(plain),
                "ground_truth_ok": all(
                    verdicts[(node, "Person")] == (node in set(workload.valid_nodes))
                    for node in workload.all_nodes
                ),
            })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, agreement checks only (CI smoke run)")
    parser.add_argument("--nodes", type=int, nargs="*",
                        help="explicit sparse-mismatch sizes (node counts)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail a full run below this compiled-vs-plain "
                             "speedup on the largest size (default 2.0)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result rows as JSON (CI artifact)")
    args = parser.parse_args(argv)

    sizes = args.nodes or ([400] if args.quick else [1000, 4000])

    print(f"{'nodes':>7} {'triples':>8} {'pairs':>7} {'plain':>9} "
          f"{'compiled':>9} {'speedup':>8} {'rejected':>9}")
    ok = True
    sparse_rows = []
    for size in sizes:
        row = run_sparse_size(size, args.seed)
        sparse_rows.append(row)
        print(f"{row['nodes']:>7} {row['triples']:>8} {row['pairs']:>7} "
              f"{row['plain_s'] * 1000:>7.1f}ms {row['compiled_s'] * 1000:>7.1f}ms "
              f"{row['speedup']:>7.2f}x {row['prefilter_rejects']:>9}")
        if not row["agree"]:
            print(f"  !! compiled verdicts disagree with --no-precompile "
                  f"at {size} nodes", file=sys.stderr)
            ok = False
        if not row["ground_truth_ok"]:
            print(f"  !! verdicts disagree with ground truth at {size} nodes",
                  file=sys.stderr)
            ok = False

    agreement_rows = run_agreement(args.quick)
    for row in agreement_rows:
        status = "ok" if row["agree"] and row["ground_truth_ok"] else "MISMATCH"
        print(f"agreement {row['workload']:>10} jobs={row['jobs']} "
              f"({row['pairs']} pairs): {status}")
        if status != "ok":
            print(f"  !! {row['workload']} jobs={row['jobs']}: compiled and "
                  "uncompiled verdicts (or ground truth) disagree", file=sys.stderr)
            ok = False

    speedup_checked = False
    if sparse_rows and not args.quick:
        speedup_checked = True
        final = sparse_rows[-1]
        if final["speedup"] < args.min_speedup:
            print(f"!! speedup {final['speedup']:.2f}x on the sparse-mismatch "
                  f"workload below the {args.min_speedup:.1f}x threshold",
                  file=sys.stderr)
            ok = False

    if args.json:
        payload = {
            "benchmark": "precompile",
            "quick": args.quick,
            "min_speedup": args.min_speedup,
            "speedup_checked": speedup_checked,
            "sparse_mismatch": sparse_rows,
            "agreement": agreement_rows,
            "ok": ok,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
