"""B5 — recursive schemas: validating chains, cycles and trees of references.

Section 8 extends the derivative algorithm with the typing context ``Γ``;
this benchmark measures whole-graph validation with the Person schema of
Example 14 over growing ``foaf:knows`` topologies, for both engines, plus
type inference over a mixed person workload.

Regenerate with::

    pytest benchmarks/bench_recursive_schema.py --benchmark-only
"""

import pytest

from repro.shex import Validator
from repro.workloads import (
    generate_person_workload,
    knows_chain_graph,
    knows_cycle_graph,
    knows_tree_graph,
    person_schema,
)

CHAIN_DEPTHS = [8, 32, 128]
CYCLE_LENGTHS = [8, 32, 128]
TREE_DEPTHS = [2, 4, 6]


def validate_head(graph, node, engine):
    validator = Validator(graph, person_schema(), engine=engine)
    entry = validator.validate_node(node, "Person")
    assert entry.conforms
    return entry


@pytest.mark.parametrize("depth", CHAIN_DEPTHS)
@pytest.mark.parametrize("engine", ["derivatives", "backtracking"])
def test_knows_chain(benchmark, engine, depth):
    graph, head = knows_chain_graph(depth)
    entry = benchmark(validate_head, graph, head, engine)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["reference_checks"] = entry.stats.reference_checks


@pytest.mark.parametrize("length", CYCLE_LENGTHS)
def test_knows_cycle(benchmark, length):
    graph, start = knows_cycle_graph(length)
    benchmark(validate_head, graph, start, "derivatives")
    benchmark.extra_info["length"] = length


@pytest.mark.parametrize("depth", TREE_DEPTHS)
def test_knows_tree(benchmark, depth):
    graph, root = knows_tree_graph(depth, fanout=2)
    benchmark(validate_head, graph, root, "derivatives")
    benchmark.extra_info["nodes"] = 2 ** (depth + 1) - 1


@pytest.mark.parametrize("people", [20, 80])
def test_infer_typing_person_workload(benchmark, people):
    workload = generate_person_workload(num_people=people, invalid_fraction=0.25, seed=1)

    def infer():
        validator = Validator(workload.graph, workload.schema)
        typing = validator.infer_typing()
        assert set(typing.nodes()) >= set(workload.valid_nodes)
        return typing

    typing = benchmark(infer)
    benchmark.extra_info["people"] = people
    benchmark.extra_info["typed_nodes"] = len(typing)
