#!/usr/bin/env python3
"""B15 — validation-as-a-service: mixed traffic, warm-path speedup, identity.

PR 7 adds ``repro serve``: a stdlib HTTP server holding warm
:class:`~repro.service.session.ValidationSession`\\ s whose verdict queries
are answered from the maintained incremental baseline — never a fresh run.
This benchmark drives the service the way a client fleet would and gates the
claims:

* **mixed read/write traffic** (the headline numbers): a warm server holding
  the community workload takes sustained rounds of verdict GETs interleaved
  with delta POSTs; per-request wall latencies aggregate into p50/p99 and
  QPS for both operation classes,
* **verdict identity after every delta round** (gates every run): after each
  delta the full verdict set fetched over HTTP must match a fresh direct
  :class:`Validator` run on a replica graph mutated the same way, plus the
  workload's ground truth,
* **warm vs cold** (full runs gate ≥10×, ``--min-warm-speedup``): the mean
  warm verdict query — a baseline lookup through the session — against cold
  per-request validation (a fresh ``Validator`` + ``validate_node`` per
  query, what a stateless service would do),
* **byte identity across server modes** (gates every run): serial,
  ``--jobs 2`` and ``--shards 2`` sessions must serialise every default
  (reason-less) verdict response byte-identically on the sparse, person and
  community workloads, before and after a delta.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full run
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_service.py --json BENCH_service.json

Exit status: 0 on success, 1 on any verdict/byte mismatch or (full runs) a
missed warm-path speedup threshold.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time

from repro.rdf.ntriples import iter_ntriples
from repro.service import (
    DeltaRequest,
    ServiceClient,
    ValidationRequest,
    ValidationSession,
    serve,
)
from repro.shex import Validator
from repro.workloads import (
    generate_community_workload,
    generate_person_workload,
    person_schema,
)

sys.setrecursionlimit(100_000)

FOAF_AGE = "<http://xmlns.com/foaf/0.1/age>"
FOAF_NAME = "<http://xmlns.com/foaf/0.1/name>"
XSD_INT = "<http://www.w3.org/2001/XMLSchema#integer>"


def _workload(kind: str, scale: int, seed: int):
    if kind == "sparse":
        return generate_person_workload(num_people=scale, knows_probability=0.0,
                                        seed=seed)
    if kind == "person":
        return generate_person_workload(num_people=scale, seed=seed)
    return generate_community_workload(num_communities=max(scale // 8, 2),
                                       people_per_community=8, seed=seed)


def _percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _latency_row(samples):
    return {
        "requests": len(samples),
        "mean_ms": round(statistics.mean(samples) * 1e3, 4) if samples else 0.0,
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 4),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 4),
    }


def _round_delta(nodes, round_index):
    """One reversible mutation per round: break a person with a duplicate
    age on even rounds, repair them on odd rounds, and always add one
    valid-preserving extra name to a second person."""
    victim = nodes[round_index % len(nodes)]
    extra = nodes[(round_index + 7) % len(nodes)]
    breaking = (f'{victim.n3()} {FOAF_AGE} "9999"^^{XSD_INT} .\n')
    naming = (f'{extra.n3()} {FOAF_NAME} "Alias{round_index}" .\n')
    if round_index % 2 == 0:
        return naming + breaking, ""
    return naming, breaking


def run_mixed_traffic(scale: int, rounds: int, queries_per_round: int,
                      seed: int) -> dict:
    """Sustained read/write traffic against a warm server over real HTTP.

    Identity gate: after every delta round the complete verdict set fetched
    over the wire must equal a fresh direct run on an identically-mutated
    replica graph.
    """
    workload = _workload("community", scale, seed)
    replica = _workload("community", scale, seed)
    nodes = workload.all_nodes
    rng = random.Random(seed)

    verdict_latencies = []
    delta_latencies = []
    mismatches = 0
    wall_start = time.perf_counter()
    with serve(person_schema()) as server:
        server.start_background()
        setup = ServiceClient(server.host, server.port)
        graph_id = setup.load_graph(ValidationRequest(
            data=workload.graph.serialize("ntriples"),
            data_format="ntriples"))["graph_id"]

        for round_index in range(rounds):
            # a fresh client per round: every verdict GET is a cache miss,
            # so the latencies below are true server round-trips
            client = ServiceClient(server.host, server.port)
            for node in rng.sample(nodes, min(queries_per_round, len(nodes))):
                start = time.perf_counter()
                client.verdict(graph_id, node.n3())
                verdict_latencies.append(time.perf_counter() - start)

            add, remove = _round_delta(nodes, round_index)
            start = time.perf_counter()
            client.apply_delta(graph_id, DeltaRequest(add=add, remove=remove))
            delta_latencies.append(time.perf_counter() - start)

            replica.graph.add_all(iter_ntriples(add))
            if remove:
                replica.graph.remove_all(iter_ntriples(remove))
            direct = Validator(replica.graph, person_schema()).validate_graph()
            for entry in direct.entries:
                served = client.verdict(graph_id, entry.node.n3(),
                                        entry.label.name)
                if served.conforms != entry.conforms:
                    mismatches += 1
    wall = time.perf_counter() - wall_start

    total_requests = len(verdict_latencies) + len(delta_latencies)
    return {
        "workload": "community",
        "nodes": len(nodes),
        "triples": len(workload.graph),
        "rounds": rounds,
        "verdicts": _latency_row(verdict_latencies),
        "deltas": _latency_row(delta_latencies),
        "qps": round(total_requests / wall, 2) if wall else 0.0,
        "wall_s": round(wall, 3),
        "identity_ok": mismatches == 0,
        "mismatches": mismatches,
    }


def run_warm_vs_cold(scale: int, queries: int, seed: int) -> dict:
    """Warm baseline lookups vs cold per-request validation, same graph."""
    workload = _workload("community", scale, seed)
    nodes = workload.all_nodes
    rng = random.Random(seed)
    sample = [rng.choice(nodes) for _ in range(queries)]

    session = ValidationSession(workload.graph, workload.schema)
    session.validate()
    start = time.perf_counter()
    warm_verdicts = [session.verdict(node).conforms for node in sample]
    warm = time.perf_counter() - start

    cold_source = _workload("community", scale, seed)
    start = time.perf_counter()
    cold_verdicts = []
    for node in sample:
        validator = Validator(cold_source.graph, person_schema())
        cold_verdicts.append(validator.validate_node(node).conforms)
    cold = time.perf_counter() - start

    return {
        "queries": queries,
        "warm_mean_us": round(warm / queries * 1e6, 2),
        "cold_mean_us": round(cold / queries * 1e6, 2),
        "speedup": round(cold / warm, 1) if warm else float("inf"),
        "identity_ok": warm_verdicts == cold_verdicts,
    }


def run_byte_identity(kind: str, scale: int, seed: int) -> dict:
    """Serial / jobs=2 / shards=2 sessions must serialise identically."""
    modes = [("serial", {}), ("jobs2", {"jobs": 2}), ("shards2", {"shards": 2})]
    sessions = []
    for _, kwargs in modes:
        workload = _workload(kind, scale, seed)
        session = ValidationSession(workload.graph, workload.schema, **kwargs)
        session.validate()
        sessions.append(session)
    nodes = _workload(kind, scale, seed).all_nodes
    delta, _ = _round_delta(nodes, 0)

    def payloads():
        return [
            tuple(json.dumps(session.verdict(node.n3()).to_json(),
                             sort_keys=True) for node in nodes)
            for session in sessions
        ]

    before = payloads()
    for session in sessions:
        session.apply_delta(DeltaRequest(add=delta))
    after = payloads()
    identical = (before[0] == before[1] == before[2]
                 and after[0] == after[1] == after[2])
    return {"workload": kind, "nodes": len(nodes), "byte_identical": identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale; thresholds reported, not gated")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result table to PATH as JSON")
    parser.add_argument("--rounds", type=int, default=None,
                        help="delta rounds of mixed traffic")
    parser.add_argument("--queries", type=int, default=None,
                        help="verdict queries per round")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-warm-speedup", type=float, default=10.0,
                        help="required warm/cold ratio on full runs")
    args = parser.parse_args(argv)

    if args.quick:
        scale, rounds, queries = 24, 3, 30
    else:
        scale, rounds, queries = 64, 8, 150
    rounds = args.rounds if args.rounds is not None else rounds
    queries = args.queries if args.queries is not None else queries

    print(f"== mixed read/write traffic (scale={scale}, rounds={rounds}, "
          f"queries/round={queries}) ==")
    traffic = run_mixed_traffic(scale, rounds, queries, args.seed)
    print(f"  verdict GET : p50={traffic['verdicts']['p50_ms']}ms "
          f"p99={traffic['verdicts']['p99_ms']}ms "
          f"({traffic['verdicts']['requests']} requests)")
    print(f"  delta POST  : p50={traffic['deltas']['p50_ms']}ms "
          f"p99={traffic['deltas']['p99_ms']}ms "
          f"({traffic['deltas']['requests']} requests)")
    print(f"  overall     : {traffic['qps']} req/s over {traffic['wall_s']}s; "
          f"identity_ok={traffic['identity_ok']}")

    print("== warm baseline lookup vs cold per-request validation ==")
    warm_cold = run_warm_vs_cold(scale, queries, args.seed)
    print(f"  warm={warm_cold['warm_mean_us']}us "
          f"cold={warm_cold['cold_mean_us']}us "
          f"speedup={warm_cold['speedup']}x "
          f"identity_ok={warm_cold['identity_ok']}")

    byte_rows = []
    print("== byte identity across serial / --jobs 2 / --shards 2 ==")
    for kind in ("sparse", "person", "community"):
        row = run_byte_identity(kind, scale, args.seed)
        byte_rows.append(row)
        print(f"  {kind:<10} nodes={row['nodes']:<4} "
              f"byte_identical={row['byte_identical']}")

    failures = []
    if not traffic["identity_ok"]:
        failures.append(f"{traffic['mismatches']} verdict mismatches against "
                        "the fresh direct run")
    if not warm_cold["identity_ok"]:
        failures.append("warm and cold verdicts disagree")
    for row in byte_rows:
        if not row["byte_identical"]:
            failures.append(f"{row['workload']}: server modes are not "
                            "byte-identical")
    if not args.quick and warm_cold["speedup"] < args.min_warm_speedup:
        failures.append(f"warm-path speedup {warm_cold['speedup']}x is below "
                        f"the {args.min_warm_speedup}x threshold")

    result = {
        "benchmark": "service",
        "quick": args.quick,
        "mixed_traffic": traffic,
        "warm_vs_cold": warm_cold,
        "byte_identity": byte_rows,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
