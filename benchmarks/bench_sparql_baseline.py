"""B6 — the SPARQL baseline of Section 3 vs. the derivative engine.

The paper argues that compiling shapes to SPARQL is possible for the
non-recursive fragment but impractical; this benchmark quantifies the
comparison on graphs of growing size using a non-recursive Person shape
(the ``foaf:knows`` reference replaced by the node-kind approximation, so
that all three engines decide exactly the same property):

* per-node validation through the derivative engine,
* per-node validation through generated ASK queries,
* whole-graph validation through one generated SELECT query.

Regenerate with::

    pytest benchmarks/bench_sparql_baseline.py --benchmark-only
"""

import pytest

from repro.rdf import FOAF, XSD
from repro.shex import (
    NodeKind,
    NodeKindConstraint,
    Schema,
    Validator,
    arc,
    datatype,
    interleave_all,
    plus,
    star,
)
from repro.shex.sparql_gen import SparqlEngine
from repro.workloads import generate_person_workload

GRAPH_SIZES = [20, 60, 180]


def non_recursive_person_schema() -> Schema:
    """The Person shape with ``@<Person>`` approximated by NONLITERAL."""
    return Schema.single("Person", interleave_all(
        arc(FOAF.age, datatype(XSD.integer)),
        plus(arc(FOAF.name, datatype(XSD.string))),
        star(arc(FOAF.knows, NodeKindConstraint(NodeKind.NONLITERAL))),
    ))


def conforming_via_validator(workload, schema, engine) -> list:
    validator = Validator(workload.graph, schema, engine=engine)
    nodes = validator.conforming_nodes("Person")
    assert set(nodes) == set(workload.valid_nodes)
    return nodes


def conforming_via_select(workload, schema) -> list:
    engine = SparqlEngine()
    nodes = engine.conforming_nodes(workload.graph, schema.expression("Person"))
    assert set(nodes) == set(workload.valid_nodes)
    return nodes


@pytest.mark.parametrize("people", GRAPH_SIZES)
def test_derivative_engine(benchmark, people):
    workload = generate_person_workload(num_people=people, invalid_fraction=0.3,
                                        knows_probability=0.1, seed=2)
    schema = non_recursive_person_schema()
    benchmark(conforming_via_validator, workload, schema, "derivatives")
    benchmark.extra_info["people"] = people
    benchmark.extra_info["triples"] = len(workload.graph)


@pytest.mark.parametrize("people", GRAPH_SIZES)
def test_sparql_ask_per_node(benchmark, people):
    workload = generate_person_workload(num_people=people, invalid_fraction=0.3,
                                        knows_probability=0.1, seed=2)
    schema = non_recursive_person_schema()
    benchmark(conforming_via_validator, workload, schema, SparqlEngine())
    benchmark.extra_info["people"] = people


@pytest.mark.parametrize("people", GRAPH_SIZES[:2])
def test_sparql_select_whole_graph(benchmark, people):
    workload = generate_person_workload(num_people=people, invalid_fraction=0.3,
                                        knows_probability=0.1, seed=2)
    schema = non_recursive_person_schema()
    benchmark(conforming_via_select, workload, schema)
    benchmark.extra_info["people"] = people


@pytest.mark.parametrize("people", GRAPH_SIZES[:2])
def test_backtracking_engine(benchmark, people):
    workload = generate_person_workload(num_people=people, invalid_fraction=0.3,
                                        knows_probability=0.1, seed=2)
    schema = non_recursive_person_schema()
    benchmark(conforming_via_validator, workload, schema, "backtracking")
    benchmark.extra_info["people"] = people
