"""B7 — substrate costs: parsing, indexing, neighbourhood extraction, SPARQL.

The matching engines sit on top of the RDF substrate; this benchmark keeps an
eye on the substrate so that engine comparisons are not confounded by parser
or index regressions.  It measures Turtle and N-Triples parsing and
serialisation, graph indexing, neighbourhood extraction and a representative
SPARQL aggregation query on generated portal data.

Regenerate with::

    pytest benchmarks/bench_substrate.py --benchmark-only
"""

import pytest

from repro.rdf import Graph
from repro.sparql import select
from repro.workloads import generate_person_workload, generate_portal_workload

DATASET_SIZES = [50, 200]


@pytest.fixture(scope="module")
def portal_turtle() -> dict:
    """Pre-serialised portal graphs keyed by dataset count."""
    rendered = {}
    for size in DATASET_SIZES:
        workload = generate_portal_workload(num_datasets=size, seed=13)
        rendered[size] = (workload.graph.serialize("turtle"), workload.graph)
    return rendered


@pytest.mark.parametrize("size", DATASET_SIZES)
def test_turtle_parse(benchmark, portal_turtle, size):
    text, graph = portal_turtle[size]
    parsed = benchmark(Graph.parse, text, "turtle")
    assert parsed == graph
    benchmark.extra_info["triples"] = len(graph)


@pytest.mark.parametrize("size", DATASET_SIZES)
def test_turtle_serialize(benchmark, portal_turtle, size):
    _, graph = portal_turtle[size]
    text = benchmark(graph.serialize, "turtle")
    assert text
    benchmark.extra_info["triples"] = len(graph)


@pytest.mark.parametrize("size", DATASET_SIZES)
def test_ntriples_round_trip(benchmark, portal_turtle, size):
    _, graph = portal_turtle[size]

    def round_trip():
        return Graph.parse(graph.serialize("ntriples"), format="ntriples")

    parsed = benchmark(round_trip)
    assert parsed == graph


@pytest.mark.parametrize("size", DATASET_SIZES)
def test_graph_indexing(benchmark, portal_turtle, size):
    _, graph = portal_turtle[size]
    triples = list(graph)

    def rebuild():
        return Graph(triples)

    rebuilt = benchmark(rebuild)
    assert len(rebuilt) == len(graph)


@pytest.mark.parametrize("people", [100, 400])
def test_neighbourhood_extraction(benchmark, people):
    workload = generate_person_workload(num_people=people, invalid_fraction=0.2,
                                        knows_probability=0.05, seed=3)
    graph = workload.graph
    nodes = list(graph.nodes())

    def extract_all():
        return sum(len(graph.neighbourhood(node)) for node in nodes)

    total = benchmark(extract_all)
    assert total == len(graph)
    benchmark.extra_info["nodes"] = len(nodes)


@pytest.mark.parametrize("size", DATASET_SIZES)
def test_sparql_aggregation_query(benchmark, portal_turtle, size):
    _, graph = portal_turtle[size]
    query = """
        PREFIX dcat: <http://www.w3.org/ns/dcat#>
        SELECT ?dataset (COUNT(*) AS ?distributions)
        { ?dataset dcat:distribution ?d }
        GROUP BY ?dataset HAVING (COUNT(*) >= 1)
    """
    solutions = benchmark(select, graph, query)
    assert solutions
    benchmark.extra_info["datasets_with_distributions"] = len(solutions)
