#!/usr/bin/env python3
"""B10 — typing accretion: persistent HAMT vs the copy-on-write dict baseline.

The Section 8 typing operations (``n → s : τ``, ``τ1 ⊎ τ2``) were originally
backed by a dict that was fully copied and re-frozen on every ``add``, so
confirming the ``k`` members of one recursive component cost O(k²) — the
dominant serial cost of bulk validation at scale.  :class:`ShapeTyping` is
now backed by a persistent HAMT (``repro/shex/hamt.py``): O(log n) ``add``
with full structural sharing, and a ``combine`` that skips shared subtries.

This benchmark measures both representations on the same traces:

* **confirmation** — ``k`` sequential ``add`` calls, the access pattern of
  ``ValidationContext.confirm`` when one recursive component settles,
* **workload replay** — the conforming ``(node, label)`` trace produced by
  actually validating the single-community recursive workload (the same
  generators ``bench_bulk_validation.py`` / ``bench_parallel_validation.py``
  run), replayed against both representations,
* **combine** — folding per-node singleton typings together, the
  ``τ1 ⊎ τ2`` side of the algebra.

The dict baseline is a faithful replica of the pre-HAMT implementation.
Every row is correctness-checked: both representations must produce the
same final ``node → labels`` contents before any number is reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_typing.py          # full
    PYTHONPATH=src python benchmarks/bench_typing.py --quick  # CI smoke

Exit status: 0 on success, 1 when contents disagree or the confirmation
speedup on the largest size is below --min-speedup (default 10.0).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.rdf.terms import IRI, ObjectTerm
from repro.shex import ShapeLabel, ShapeTyping, Validator
from repro.workloads import generate_community_workload

# deep knows-rings recurse one Python call stack per hop during the
# workload-replay validation run
sys.setrecursionlimit(100_000)


class DictTyping:
    """The pre-HAMT ``ShapeTyping``: a dict copied and re-frozen per ``add``.

    Kept verbatim (minus the query surface the benchmark doesn't touch) so
    the baseline measures exactly what the library used to do.
    """

    __slots__ = ("_assignments",)

    def __init__(self, assignments=None):
        frozen: Dict[ObjectTerm, FrozenSet[ShapeLabel]] = {}
        if assignments:
            for node, labels in assignments.items():
                label_set = frozenset(labels)
                if label_set:
                    frozen[node] = label_set
        self._assignments = frozen

    def add(self, node: ObjectTerm, label: ShapeLabel) -> "DictTyping":
        updated = dict(self._assignments)
        updated[node] = updated.get(node, frozenset()) | {label}
        return DictTyping(updated)

    def combine(self, other: "DictTyping") -> "DictTyping":
        if not other._assignments:
            return self
        if not self._assignments:
            return other
        merged = dict(self._assignments)
        for node, labels in other._assignments.items():
            merged[node] = merged.get(node, frozenset()) | labels
        return DictTyping(merged)

    def to_contents(self) -> Dict[ObjectTerm, FrozenSet[ShapeLabel]]:
        return dict(self._assignments)


def _replay_adds_dict(trace: List[Tuple[ObjectTerm, ShapeLabel]]) -> tuple:
    start = time.perf_counter()
    typing = DictTyping()
    for node, label in trace:
        typing = typing.add(node, label)
    return time.perf_counter() - start, typing.to_contents()


def _replay_adds_hamt(trace: List[Tuple[ObjectTerm, ShapeLabel]]) -> tuple:
    start = time.perf_counter()
    typing = ShapeTyping.empty()
    for node, label in trace:
        typing = typing.add(node, label)
    return time.perf_counter() - start, dict(typing.items())


def _fold_combine_dict(singletons: Iterable[DictTyping]) -> tuple:
    start = time.perf_counter()
    typing = DictTyping()
    for singleton in singletons:
        typing = typing.combine(singleton)
    return time.perf_counter() - start, typing.to_contents()


def _fold_combine_hamt(singletons: Iterable[ShapeTyping]) -> tuple:
    start = time.perf_counter()
    typing = ShapeTyping.empty()
    for singleton in singletons:
        typing = typing.combine(singleton)
    return time.perf_counter() - start, dict(typing.items())


def run_confirmation(k: int) -> dict:
    """``k`` members of one component confirmed one ``add`` at a time."""
    label = ShapeLabel("Person")
    trace = [(IRI(f"http://example.org/member{i}"), label) for i in range(k)]
    dict_s, dict_contents = _replay_adds_dict(trace)
    hamt_s, hamt_contents = _replay_adds_hamt(trace)
    return {
        "scenario": "confirmation",
        "k": k,
        "dict_s": dict_s,
        "hamt_s": hamt_s,
        "speedup": dict_s / hamt_s if hamt_s else float("inf"),
        "contents_agree": dict_contents == hamt_contents,
    }


def run_combine(k: int) -> dict:
    """Fold ``k`` singleton typings with ``⊎`` (the report-assembly shape)."""
    label = ShapeLabel("Person")
    nodes = [IRI(f"http://example.org/member{i}") for i in range(k)]
    dict_s, dict_contents = _fold_combine_dict(
        DictTyping({node: [label]}) for node in nodes)
    hamt_s, hamt_contents = _fold_combine_hamt(
        ShapeTyping.single(node, label) for node in nodes)
    return {
        "scenario": "combine",
        "k": k,
        "dict_s": dict_s,
        "hamt_s": hamt_s,
        "speedup": dict_s / hamt_s if hamt_s else float("inf"),
        "contents_agree": dict_contents == hamt_contents,
    }


def run_workload_replay(people: int, seed: int) -> dict:
    """Replay the conforming trace of the single-community recursive workload.

    One community means the valid members form a single strongly-connected
    ``foaf:knows`` component — exactly the k-member recursive-component
    confirmation the HAMT targets — and the trace comes from a real
    validation run of the same workload family the bulk and parallel
    benchmarks use.
    """
    workload = generate_community_workload(
        num_communities=1, people_per_community=people,
        invalid_fraction=0.2, seed=seed)
    validator = Validator(workload.graph, workload.schema, cache=True)
    report = validator.validate_graph()
    trace = [(entry.node, entry.label) for entry in report if entry.conforms]
    expected_valid = set(workload.valid_nodes)
    trace_ok = {node for node, _ in trace} == expected_valid
    dict_s, dict_contents = _replay_adds_dict(trace)
    hamt_s, hamt_contents = _replay_adds_hamt(trace)
    return {
        "scenario": "workload_replay",
        "k": len(trace),
        "people": people,
        "triples": len(workload.graph),
        "dict_s": dict_s,
        "hamt_s": hamt_s,
        "speedup": dict_s / hamt_s if hamt_s else float("inf"),
        "contents_agree": dict_contents == hamt_contents and trace_ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes only (CI smoke run)")
    parser.add_argument("--sizes", type=int, nargs="*",
                        help="explicit confirmation sizes (number of members)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail when the largest confirmation size is "
                             "below this add-loop speedup")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result rows as JSON (CI artifact)")
    args = parser.parse_args(argv)

    # quick mode still ends at k=2000: the speedup gate is calibrated for
    # that size (the O(k²) vs O(k log k) gap narrows at smaller k), and the
    # dict baseline only costs ~0.4s there
    sizes = args.sizes or ([500, 2000] if args.quick else [250, 500, 1000, 2000])
    replay_people = 120 if args.quick else 400

    rows = []
    print(f"{'scenario':>16} {'k':>6} {'dict':>11} {'hamt':>11} {'speedup':>8}")
    ok = True
    confirmation_speedup = 0.0
    for k in sizes:
        row = run_confirmation(k)
        rows.append(row)
        confirmation_speedup = row["speedup"]
    for k in sizes[-1:]:
        rows.append(run_combine(k))
    rows.append(run_workload_replay(replay_people, args.seed))

    for row in rows:
        print(f"{row['scenario']:>16} {row['k']:>6} "
              f"{row['dict_s'] * 1000:>9.1f}ms {row['hamt_s'] * 1000:>9.1f}ms "
              f"{row['speedup']:>7.1f}x")
        if not row["contents_agree"]:
            print(f"  !! contents mismatch in {row['scenario']} at k={row['k']}",
                  file=sys.stderr)
            ok = False

    if confirmation_speedup < args.min_speedup:
        print(f"!! confirmation speedup {confirmation_speedup:.1f}x below the "
              f"{args.min_speedup:.1f}x threshold", file=sys.stderr)
        ok = False

    if args.json:
        payload = {
            "benchmark": "typing",
            "quick": args.quick,
            "min_speedup": args.min_speedup,
            "results": rows,
            "ok": ok,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
