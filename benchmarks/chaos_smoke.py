#!/usr/bin/env python3
"""Chaos smoke: one seeded fault schedule driven through the whole wire
stack, asserting the resilience contract end to end.

The schedule (a :class:`~repro.service.faults.FaultPlan`) is derived from
``--seed`` and written to ``--json`` **before** the scenario runs, so a CI
failure always leaves the exact schedule behind as an artifact — replaying
it locally with the same seed reproduces the run bit for bit.

Scenario (mirrors the resilience test suite, but over real HTTP):

1. serve a 2-shard resident session and load the paper example graph,
2. a *non-retrying* client applies a delta whose revalidation is killed
   mid-round by the schedule → typed ``fleet-worker-died`` 503,
3. ``/healthz`` reports ``degraded``; a normal read refuses with
   ``stale-baseline``,
4. degraded reads answer from the surviving shard + coordinator baseline
   with ``missing_shards`` instead of blocking or 503ing,
5. the same ``delta_id`` is retried through a *retrying* client: the
   ledger resumes the round (no double apply), the fleet respawns the
   dead worker, ``/healthz`` recovers,
6. final verdicts must be byte-identical to a fault-free run of the same
   deltas, and the generation must show every delta applied exactly once.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py --seed 1337 \\
        --json chaos-schedule.json

Exit status: 0 when every assertion holds, 1 otherwise (failures are
appended to the JSON artifact next to the schedule).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service import (
    DeltaRequest,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ValidationRequest,
    serve,
)
from repro.workloads import PAPER_EXAMPLE_TURTLE, person_schema

MARY = "<http://example.org/mary>"
JOHN = "<http://example.org/john>"
MARY_FIX_ADD = ('<http://example.org/mary> '
                '<http://xmlns.com/foaf/0.1/name> "Mary" .\n')
MARY_FIX_REMOVE = ('<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> '
                   '"65"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
JOHN_BREAK_ADD = ('<http://example.org/john> <http://xmlns.com/foaf/0.1/age> '
                  '"9999"^^<http://www.w3.org/2001/XMLSchema#integer> .\n')
NODES = (JOHN, MARY, "<http://example.org/bob>")


def schedule_for(seed: int) -> FaultPlan:
    """The smoke schedule: kill the shard 0 worker just before its second
    revalidation — the one fault that opens every window the contract
    covers (typed 503, stale baseline, degraded reads, ledger resume)."""
    return FaultPlan(specs=(
        FaultSpec(point="fleet.crash-before-revalidate", shard=0,
                  hits=(1,)),), seed=seed)


def verdict_blob(client: ServiceClient, graph_id: str) -> tuple:
    return tuple(json.dumps(client.verdict(graph_id, node).to_json(),
                            sort_keys=True) for node in NODES)


def fault_free_blob() -> tuple:
    """The same deltas through an unfaulted server: the convergence target."""
    with serve(person_schema(), shards=2) as srv:
        srv.start_background()
        with ServiceClient(srv.host, srv.port) as client:
            graph_id = client.load_graph(ValidationRequest(
                data=PAPER_EXAMPLE_TURTLE))["graph_id"]
            client.apply_delta(graph_id, DeltaRequest(
                add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE, delta_id="edit-0"))
            response = client.apply_delta(graph_id, DeltaRequest(
                add=JOHN_BREAK_ADD, delta_id="edit-1"))
            return verdict_blob(client, graph_id), response.generation


def run_scenario(seed: int, failures: list) -> dict:
    def check(ok: bool, what: str) -> None:
        if not ok:
            failures.append(what)

    expected_blob, expected_generation = fault_free_blob()
    plan = schedule_for(seed)
    observed: dict = {}
    with serve(person_schema(), shards=2, fleet_response_timeout=10.0,
               faults=FaultInjector(plan)) as srv:
        srv.start_background()
        bare = ServiceClient(srv.host, srv.port, retry=None)
        graph_id = bare.load_graph(ValidationRequest(
            data=PAPER_EXAMPLE_TURTLE))["graph_id"]
        bare.apply_delta(graph_id, DeltaRequest(
            add=MARY_FIX_ADD, remove=MARY_FIX_REMOVE, delta_id="edit-0"))

        break_john = DeltaRequest(add=JOHN_BREAK_ADD, delta_id="edit-1")
        try:
            bare.apply_delta(graph_id, break_john)
            check(False, "the scheduled crash never surfaced as a 503")
        except ServiceError as error:
            observed["outage_error"] = error.code
            check(error.code == "fleet-worker-died" and
                  error.http_status == 503,
                  f"expected fleet-worker-died 503, got {error.code} "
                  f"{error.http_status}")

        health = bare.healthz()
        observed["healthz_during_outage"] = health["status"]
        check(health["status"] == "degraded",
              f"healthz said {health['status']!r} during the outage")
        try:
            bare.verdict(graph_id, MARY)
            check(False, "a normal read served a stale baseline")
        except ServiceError as error:
            check(error.code == "stale-baseline",
                  f"normal read failed with {error.code}, "
                  "not stale-baseline")

        john = bare.verdict(graph_id, JOHN, allow_degraded=True)
        mary = bare.verdict(graph_id, MARY, allow_degraded=True)
        observed["degraded_reads"] = {
            "john": john.to_json(), "mary": mary.to_json()}
        check(john.degraded and john.missing_shards == (0,)
              and not john.conforms,
              "live-shard degraded read did not show the applied delta")
        check(mary.degraded and mary.missing_shards == (0,) and mary.conforms,
              "dead-shard degraded read did not fall back to the "
              "coordinator baseline")

        retrying = ServiceClient(srv.host, srv.port, retry=RetryPolicy(
            base_delay=0.05, jitter=0.0, seed=seed))
        retried = retrying.apply_delta(graph_id, break_john)
        observed["retried_generation"] = retried.generation
        check(retried.added == 1 and retried.generation == expected_generation,
              "the retried delta did not converge to the fault-free "
              "generation")
        check(bare.healthz()["status"] == "ok",
              "healthz did not recover after the heal")

        blob = verdict_blob(retrying, graph_id)
        check(blob == expected_blob,
              "post-heal verdicts are not byte-identical to the "
              "fault-free run")
        stats = retrying.graph_stats(graph_id)
        observed["replayed_deltas"] = stats.session["replayed_deltas"]
        observed["respawns"] = stats.fleet["respawns"]
        check(stats.session["replayed_deltas"] == 1,
              "the ledger did not replay exactly one delta")
        check(stats.session["delta_rounds"] == 2,
              "a delta was double-applied")
        check(stats.fleet["respawns"] >= 1,
              "the fleet never respawned the killed worker")
        bare.close()
        retrying.close()
    return observed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--json", metavar="PATH",
                        help="write the schedule (immediately) and the "
                             "outcome (on exit) to PATH")
    args = parser.parse_args(argv)

    plan = schedule_for(args.seed)
    artifact = {"benchmark": "chaos_smoke", "seed": args.seed,
                "schedule": plan.to_json(), "status": "running"}
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)

    print(f"== chaos smoke (seed={args.seed}) ==")
    print(f"  schedule: {json.dumps(plan.to_json())}")
    failures: list = []
    try:
        artifact["observed"] = run_scenario(args.seed, failures)
    except Exception as error:  # noqa: BLE001 — the artifact must record it
        failures.append(f"scenario crashed: {type(error).__name__}: {error}")

    artifact["status"] = "failed" if failures else "ok"
    artifact["failures"] = failures
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"wrote {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("  outage surfaced, degraded reads answered, retry converged "
          "byte-identically")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
