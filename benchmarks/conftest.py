"""Shared helpers for the benchmark suite.

Every benchmark asserts the expected verdict before timing anything, so a
regression in correctness cannot hide behind a performance number.  The
``--benchmark-only`` flag (see EXPERIMENTS.md) skips the assertion-only runs
pytest would otherwise perform.
"""

from __future__ import annotations

import pytest

from repro.shex import BacktrackingEngine, DerivativeEngine


def run_case(engine, case):
    """Run one workload case on one engine and check the verdict."""
    result = engine.match_neighbourhood(case.expression, case.triples)
    assert result.matched == case.expected, (
        f"{getattr(engine, 'name', engine)} disagreed with the ground truth on {case.name}"
    )
    return result


@pytest.fixture
def derivative_engine() -> DerivativeEngine:
    return DerivativeEngine()


@pytest.fixture
def backtracking_engine() -> BacktrackingEngine:
    # generous budget: big enough for every configured case, small enough to
    # stop a runaway case from freezing the whole suite.
    return BacktrackingEngine(budget=5_000_000)
