#!/usr/bin/env python3
"""Summarise a pytest-benchmark JSON file into the EXPERIMENTS.md tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench_results.json
    python benchmarks/report.py bench_results.json

The script groups benchmark entries by module (one module per experiment id
in DESIGN.md) and prints, for every entry, the median time and the work
counters recorded in ``extra_info`` (derivative steps, decompositions
explored, peak expression size, …).
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def format_time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds:8.2f} s "


def main(argv: list[str]) -> int:
    path = argv[1] if len(argv) > 1 else "bench_results.json"
    if not Path(path).exists():
        print(f"error: {path} not found — run the benchmark suite first", file=sys.stderr)
        return 2
    data = load(path)
    by_module = defaultdict(list)
    for entry in data.get("benchmarks", []):
        module = entry["fullname"].split("::")[0].split("/")[-1]
        by_module[module].append(entry)

    for module in sorted(by_module):
        print(f"\n== {module}")
        entries = sorted(by_module[module], key=lambda item: item["name"])
        for entry in entries:
            median = entry["stats"]["median"]
            extra = entry.get("extra_info", {})
            extra_text = ", ".join(f"{key}={value}" for key, value in sorted(extra.items()))
            print(f"  {entry['name']:<60} {format_time(median)}   {extra_text}")
    machine = data.get("machine_info", {})
    print(f"\n(python {machine.get('python_version', '?')} on "
          f"{machine.get('system', '?')} {machine.get('machine', '?')}; "
          f"{len(data.get('benchmarks', []))} benchmark entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
