#!/usr/bin/env python3
"""Aggregate the committed ``BENCH_*.json`` artifacts into one markdown table.

Every performance PR commits the JSON its gate benchmark produced
(``BENCH_columnar.json``, ``BENCH_hotpath.json``, …).  This script renders
those heterogeneous artifacts into a single perf-trajectory table so the
repository's headline numbers — and whether each gate passed — live in one
place::

    python benchmarks/report.py                  # repo root, markdown to stdout
    python benchmarks/report.py --dir . --out PERF.md

Unknown artifact schemas degrade gracefully: any numeric leaf whose name
ends in a recognised unit (``*_s``, ``*_ms``, ``*_us``, ``speedup``,
``ratio``, ``qps``) is promoted into the headline column, so the table
never goes stale just because a new benchmark invented a new shape.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

#: numeric leaf suffixes worth surfacing when no extractor knows the file.
_UNIT_SUFFIXES = ("_s", "_ms", "_us", "speedup", "ratio", "qps", "hit_rate")


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def _numeric_leaves(data: Any, prefix: str = "") -> Iterator[Tuple[str, Any]]:
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _numeric_leaves(value, path)
    elif isinstance(data, list):
        for index, value in enumerate(data[:4]):
            yield from _numeric_leaves(value, f"{prefix}[{index}]")
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        yield prefix, data


def _headline_generic(data: Dict[str, Any], limit: int = 5) -> List[str]:
    picked = []
    for path, value in _numeric_leaves(data):
        leaf = path.rsplit(".", 1)[-1]
        if leaf.endswith(_UNIT_SUFFIXES):
            picked.append(f"{path}={_fmt(value)}")
        if len(picked) >= limit:
            break
    return picked


def _headline_columnar(data: Dict[str, Any]) -> List[str]:
    memory = data.get("memory", {})
    scan = data.get("scan", {})
    rounds = data.get("verdict_rounds", [])
    return [
        f"memory ratio {_fmt(memory.get('memory_ratio', 0.0))}x "
        f"(gate ≥{_fmt(data.get('min_memory_ratio', 0.0))}x)",
        f"scan speedup {_fmt(scan.get('scan_speedup', 0.0))}x "
        f"(gate ≥{_fmt(data.get('min_scan_speedup', 0.0))}x)",
        f"{len(rounds)} verdict rounds, agree="
        + _fmt(all(round.get('agree') for round in rounds)),
    ]


def _headline_service(data: Dict[str, Any]) -> List[str]:
    mixed = data.get("mixed_traffic", {})
    warm = data.get("warm_vs_cold", {})
    return [
        f"verdict p50 {_fmt(mixed.get('verdicts', {}).get('p50_ms', 0.0))}ms "
        f"p99 {_fmt(mixed.get('verdicts', {}).get('p99_ms', 0.0))}ms "
        f"at {_fmt(mixed.get('qps', 0.0))} qps",
        f"warm/cold verdict speedup {_fmt(warm.get('speedup', 0.0))}x",
    ]


def _headline_fleet(data: Dict[str, Any]) -> List[str]:
    rounds = data.get("fleet_rounds", {})
    heal = data.get("heal_round", {})
    return [
        f"resident round {_fmt(rounds.get('resident_round_ms', 0.0))}ms vs "
        f"refork {_fmt(rounds.get('refork_round_ms', 0.0))}ms "
        f"({_fmt(rounds.get('speedup', 0.0))}x)",
        f"heal round {_fmt(heal.get('heal_round_ms', 0.0))}ms, "
        f"respawns={_fmt(heal.get('respawns', 0))}",
    ]


def _headline_hotpath(data: Dict[str, Any]) -> List[str]:
    lines = []
    for arm in data.get("arms", []):
        lines.append(f"{arm.get('mode')} speedup {_fmt(arm.get('speedup', 0.0))}x "
                     f"(identical={_fmt(arm.get('identical'))})")
    signature = data.get("signature", {})
    if signature:
        lines.append(f"signature hit rate {_fmt(signature.get('hit_rate', 0.0))} "
                     f"over {_fmt(signature.get('signatures', 0))} signatures")
    return lines


_EXTRACTORS = {
    "columnar": _headline_columnar,
    "service": _headline_service,
    "fleet": _headline_fleet,
    "hotpath": _headline_hotpath,
}


def _gate(data: Dict[str, Any]) -> str:
    ok = data.get("ok")
    checked = data.get("gates_checked")
    if ok is None:
        failures = data.get("failures")
        ok = not failures if failures is not None else None
    if ok is None:
        return "—"
    status = "pass" if ok else "**FAIL**"
    if checked is False or data.get("quick"):
        status += " (quick)"
    return status


def render(paths: List[Path]) -> str:
    lines = [
        "# Performance trajectory",
        "",
        "One row per committed benchmark artifact (`BENCH_*.json`); regenerate "
        "with `python benchmarks/report.py`.",
        "",
        "| benchmark | gate | headline |",
        "|---|---|---|",
    ]
    for path in paths:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            lines.append(f"| {path.name} | **unreadable** | {error} |")
            continue
        name = data.get("benchmark", path.stem.replace("BENCH_", ""))
        extractor = _EXTRACTORS.get(name)
        headline = extractor(data) if extractor else _headline_generic(data)
        lines.append(f"| {name} | {_gate(data)} | {'; '.join(headline) or '—'} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json (default: cwd)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the markdown to this file")
    args = parser.parse_args(argv)

    paths = sorted(Path(args.dir).glob("BENCH_*.json"))
    if not paths:
        print(f"error: no BENCH_*.json under {args.dir!r} — run a gate "
              "benchmark with --json first", file=sys.stderr)
        return 2
    text = render(paths)
    print(text)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
