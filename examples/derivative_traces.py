#!/usr/bin/env python3
"""Reproduce the derivative calculations of Examples 9–12 of the paper.

The script builds the running expression ``a→1 ‖ (b→{1,2})*``, computes the
derivative with respect to ``⟨n, a, 1⟩`` (Example 9), shows the derivative
growth of ``(a→{1,2} | b→{1,2})*`` (Example 10), and prints the step-by-step
matching traces of Example 11 (accepting) and Example 12 (rejecting),
together with the work counters that explain why the derivative algorithm
needs no graph decomposition.

Run with::

    python examples/derivative_traces.py
"""

from repro.rdf import EX, Literal, Triple
from repro.shex import (
    BacktrackingEngine,
    DerivativeEngine,
    arc,
    derivative,
    derivative_trace,
    expression_size,
    interleave,
    nullable,
    star,
    value_set,
)

NODE = EX.n


def example_9() -> None:
    """Derivative of ``a→1 ‖ (b→{1,2})*`` with respect to ``⟨n, a, 1⟩``."""
    expression = interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))
    triple = Triple(NODE, EX.a, Literal(1))
    result = derivative(expression, triple)
    print("Example 9")
    print(f"  e               = {expression.to_str()}")
    print(f"  ∂⟨n,a,1⟩(e)     = {result.to_str()}")
    print()


def example_10() -> None:
    """Derivative growth of ``(a→{1,2} | b→{1,2})*``."""
    expression = star(arc(EX.a, value_set(1, 2)) | arc(EX.b, value_set(1, 2)))
    triple = Triple(NODE, EX.a, Literal(1))
    result = derivative(expression, triple)
    print("Example 10")
    print(f"  e               = {expression.to_str()}  (size {expression_size(expression)})")
    print(f"  ∂⟨n,a,1⟩(e)     = {result.to_str()}  (size {expression_size(result)})")
    print("  the derivative grows: after an 'a' arc the expression must remember")
    print("  that one more 'b' arc is owed before returning to the star.")
    print()


def matching_trace(title: str, triples) -> None:
    expression = interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))
    print(title)
    print(f"  e = {expression.to_str()}")
    steps = derivative_trace(expression, triples)
    current = expression
    for triple, after in steps:
        print(f"  consume {triple.n3():<60} ⇒ {after.to_str()}")
        current = after
    verdict = nullable(current)
    print(f"  ν({current.to_str()}) = {verdict}")
    print(f"  ⇒ the neighbourhood {'matches' if verdict else 'does not match'}")
    print()


def engine_statistics() -> None:
    """Compare the work counters of the two engines on Example 11's input."""
    expression = interleave(arc(EX.a, value_set(1)), star(arc(EX.b, value_set(1, 2))))
    triples = frozenset({
        Triple(NODE, EX.a, Literal(1)),
        Triple(NODE, EX.b, Literal(1)),
        Triple(NODE, EX.b, Literal(2)),
    })
    derivative_result = DerivativeEngine().match_neighbourhood(expression, triples)
    backtracking_result = BacktrackingEngine().match_neighbourhood(expression, triples)
    print("Work performed on Example 11's neighbourhood (3 triples):")
    print(f"  derivative engine   : {derivative_result.stats.as_dict()}")
    print(f"  backtracking engine : {backtracking_result.stats.as_dict()}")
    print("  (the backtracking engine enumerates graph decompositions — Example 3 —")
    print("   while the derivative engine performs one step per triple)")


def main() -> None:
    example_9()
    example_10()
    matching_trace(
        "Example 11 (accepting trace)",
        [
            Triple(NODE, EX.a, Literal(1)),
            Triple(NODE, EX.b, Literal(1)),
            Triple(NODE, EX.b, Literal(2)),
        ],
    )
    matching_trace(
        "Example 12 (rejecting trace)",
        [
            Triple(NODE, EX.a, Literal(1)),
            Triple(NODE, EX.a, Literal(2)),
            Triple(NODE, EX.b, Literal(1)),
        ],
    )
    engine_statistics()


if __name__ == "__main__":
    main()
