#!/usr/bin/env python3
"""Head-to-head comparison of the derivative and backtracking matchers.

Runs both engines on growing neighbourhoods and prints a small table of wall
clock time and work counters, illustrating the paper's headline claim: the
derivative matcher scales with the number of triples, while the backtracking
matcher — which must enumerate graph decompositions (2ⁿ pairs for n triples,
Example 3) — blows up long before the neighbourhood reaches a realistic size.

This is a lightweight preview of the full benchmark suite in ``benchmarks/``.

Run with::

    python examples/engine_comparison.py
"""

import time

from repro.shex import BacktrackingBudgetExceeded, BacktrackingEngine, DerivativeEngine
from repro.workloads import paper_interleave_case

#: stop exploring a backtracking run after this many rule applications.
BACKTRACKING_BUDGET = 2_000_000


def run_once(engine, case):
    start = time.perf_counter()
    try:
        result = engine.match_neighbourhood(case.expression, case.triples)
    except BacktrackingBudgetExceeded:
        return None, time.perf_counter() - start, None
    elapsed = time.perf_counter() - start
    return result.matched, elapsed, result.stats


def run_table(title: str, matching: bool) -> None:
    print(title)
    print(f"{'triples':>8} | {'derivative time':>16} {'deriv steps':>12} | "
          f"{'backtracking time':>18} {'decompositions':>15}")
    print("-" * 80)
    for extra_arcs in range(0, 13, 2):
        case = paper_interleave_case(extra_b_arcs=extra_arcs, matching=matching)
        derivative_engine = DerivativeEngine()
        backtracking_engine = BacktrackingEngine(budget=BACKTRACKING_BUDGET)

        matched_d, time_d, stats_d = run_once(derivative_engine, case)
        matched_b, time_b, stats_b = run_once(backtracking_engine, case)

        assert matched_d == case.expected
        backtracking_text = (
            f"{time_b * 1000:15.2f} ms {stats_b.decompositions:>15,}"
            if stats_b is not None else f"{'> budget':>18} {'—':>15}"
        )
        if matched_b is not None:
            assert matched_b == case.expected
        print(f"{case.size:>8} | {time_d * 1000:13.2f} ms {stats_d.derivative_steps:>12,} | "
              f"{backtracking_text}")
    print()


def main() -> None:
    run_table("Accepting neighbourhoods (a→1 plus n matching b arcs):", matching=True)
    run_table("Rejecting neighbourhoods (extra a arc — Example 12): the backtracking\n"
              "matcher must exhaust every decomposition before giving up:", matching=False)
    print("The derivative engine consumes one triple per step; the backtracking")
    print("engine enumerates 2^n decompositions per interleave/star split.")


if __name__ == "__main__":
    main()
