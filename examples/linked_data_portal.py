#!/usr/bin/env python3
"""Validating a linked-data portal (the paper's motivating use case).

Generates a DCAT-like catalogue of datasets, distributions and publishers
with a controlled share of broken records, validates every dataset against a
three-shape schema with cross-references, and prints a quality summary of the
kind a portal operator would want: how many records conform, which ones fail
and why.

Run with::

    python examples/linked_data_portal.py
"""

from collections import Counter

from repro import Validator
from repro.workloads import generate_portal_workload


def main() -> None:
    workload = generate_portal_workload(
        num_datasets=40, num_publishers=6, invalid_fraction=0.3, seed=7,
    )
    graph, schema = workload.graph, workload.schema
    print(f"Portal graph: {len(graph)} triples, "
          f"{len(workload.datasets)} datasets, "
          f"{len(workload.distributions)} distributions, "
          f"{len(workload.publishers)} publishers")
    print()
    print("Schema:")
    print(schema.to_shexc())

    validator = Validator(graph, schema, engine="derivatives")

    conforming = []
    failing = []
    for dataset in workload.datasets:
        entry = validator.validate_node(dataset, "Dataset")
        (conforming if entry.conforms else failing).append((dataset, entry))

    print(f"Conforming datasets: {len(conforming)} / {len(workload.datasets)}")
    print()
    print("Failing datasets:")
    for dataset, entry in failing:
        injected = workload.invalid_datasets.get(dataset, "unknown")
        print(f"  {dataset.n3()}")
        print(f"    injected problem : {injected}")
        print(f"    engine reason    : {entry.reason[:110]}")

    # sanity check: the validator's verdicts match the generator's ground truth
    assert {d for d, _ in conforming} == set(workload.valid_datasets)
    assert {d for d, _ in failing} == set(workload.invalid_datasets)

    print()
    breakdown = Counter(workload.invalid_datasets.values())
    print("Violation breakdown (as injected by the generator):")
    for violation, count in sorted(breakdown.items()):
        print(f"  {violation:<22} {count}")

    # validate the other shapes too and show the full typing
    typing = validator.infer_typing(labels=["Publisher"])
    print()
    print(f"Publishers conforming to <Publisher>: {len(typing)} / {len(workload.publishers)}")


if __name__ == "__main__":
    main()
