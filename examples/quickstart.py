#!/usr/bin/env python3
"""Quickstart: validate the paper's running example (Examples 1 and 2).

The script parses the Person schema written in ShEx compact syntax, parses
the Turtle data of Example 2 and reports which nodes conform — reproducing
the paper's statement that ``:john`` and ``:bob`` have shape Person while
``:mary`` does not (she has two ``foaf:age`` arcs).

Run with::

    python examples/quickstart.py
"""

from repro import Graph, Schema, Validator

SCHEMA = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>

<Person> {
  foaf:age   xsd:integer ,
  foaf:name  xsd:string + ,
  foaf:knows @<Person> *
}
"""

DATA = """
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix :     <http://example.org/> .

:john foaf:age 23 ;
      foaf:name "John" ;
      foaf:knows :bob .
:bob  foaf:age 34 ;
      foaf:name "Bob", "Robert" .
:mary foaf:age 50, 65 .
"""


def main() -> None:
    schema = Schema.from_shexc(SCHEMA)
    graph = Graph.parse(DATA, format="turtle")

    print("Schema (round-tripped through the ShExC serialiser):")
    print(schema.to_shexc())

    validator = Validator(graph, schema, engine="derivatives")
    report = validator.validate_graph(labels=["Person"])

    print("Validation report (derivative engine):")
    for entry in report:
        print(f"  {entry}")

    conforming = validator.conforming_nodes("Person")
    print()
    print("Nodes with shape Person:", ", ".join(node.n3() for node in conforming))

    # the same validation with the backtracking engine gives the same verdicts
    backtracking = Validator(graph, schema, engine="backtracking")
    assert [n.n3() for n in backtracking.conforming_nodes("Person")] == \
           [n.n3() for n in conforming]
    print("Backtracking engine agrees with the derivative engine.")

    # inspect why :mary fails
    mary = next(node for node in graph.nodes() if node.value.endswith("mary"))
    entry = validator.validate_node(mary, "Person")
    print()
    print(f"Why {mary.n3()} fails: {entry.reason}")


if __name__ == "__main__":
    main()
