#!/usr/bin/env python3
"""Recursive schemas: Examples 13 and 14 of the paper.

Shape Expression Schemas may reference themselves (``foaf:knows @<Person>*``),
so validation needs the typing context ``Γ`` of Section 8.  This script
validates chains, cycles and trees of people, shows the inferred shape typing
and demonstrates that cyclic data terminates thanks to the coinductive
hypothesis handling.

Run with::

    python examples/recursive_shapes.py
"""

from repro import Graph, Schema, Validator
from repro.rdf import EX, FOAF, Literal, Triple
from repro.workloads import (
    knows_chain_graph,
    knows_cycle_graph,
    knows_tree_graph,
    person_schema,
)

EXAMPLE_13_SCHEMA = """
PREFIX ex: <http://example.org/>

<p> {
  ex:a [ 1 ] ,
  ex:b [ 1 2 ] + ,
  ex:c @<p> *
}
"""


def example_13() -> None:
    """The schema ``p ↦ a→1 ‖ (b→{1,2})+ ‖ (c→p)*`` on a small graph."""
    schema = Schema.from_shexc(EXAMPLE_13_SCHEMA)
    graph = Graph()
    n1, n2 = EX.n1, EX.n2
    # n1 conforms and references n2, which also conforms
    graph.add(Triple(n1, EX.a, Literal(1)))
    graph.add(Triple(n1, EX.b, Literal(1)))
    graph.add(Triple(n1, EX.b, Literal(2)))
    graph.add(Triple(n1, EX.c, n2))
    graph.add(Triple(n2, EX.a, Literal(1)))
    graph.add(Triple(n2, EX.b, Literal(2)))
    # n3 is broken: value 3 is outside the declared value set
    n3 = EX.n3
    graph.add(Triple(n3, EX.a, Literal(1)))
    graph.add(Triple(n3, EX.b, Literal(3)))

    validator = Validator(graph, schema)
    print("Example 13 — schema with a recursive reference c→p*")
    for node in (n1, n2, n3):
        entry = validator.validate_node(node, "p")
        print(f"  {entry}")
    typing = validator.infer_typing()
    print(f"  inferred typing: {typing.to_dict()}")
    print()


def example_14_chain() -> None:
    """A chain of people, each knowing the next (Example 14's Person schema)."""
    graph, head = knows_chain_graph(depth=6)
    validator = Validator(graph, person_schema())
    entry = validator.validate_node(head, "Person")
    print("Example 14 — chain of foaf:knows references")
    print(f"  head of the chain: {entry}")
    print(f"  shape-reference checks performed: {entry.stats.reference_checks}")
    print()


def example_14_cycle() -> None:
    """A cycle of people: recursion must terminate and every node conforms."""
    graph, start = knows_cycle_graph(length=4)
    validator = Validator(graph, person_schema())
    typing = validator.infer_typing()
    print("Cyclic foaf:knows data (4-node cycle)")
    print(f"  every node conforms: {len(typing) == 4}")
    print(f"  typing: {typing.to_dict()}")
    print()


def example_14_tree_with_failure() -> None:
    """A tree of people where one leaf is broken: the whole path fails."""
    graph, root = knows_tree_graph(depth=3, fanout=2)
    validator = Validator(graph, person_schema())
    assert validator.validate_node(root, "Person").conforms

    # break one leaf: give it a second age
    leaves = [node for node in graph.nodes() if not list(graph.objects(node, FOAF.knows))]
    broken_leaf = sorted(leaves, key=lambda term: term.value)[0]
    graph.add(Triple(broken_leaf, FOAF.age, Literal(999)))

    fresh = Validator(graph, person_schema())
    entry = fresh.validate_node(root, "Person")
    print("Tree of people with one broken leaf")
    print(f"  broken leaf : {broken_leaf.n3()}")
    print(f"  root verdict: {'conforms' if entry.conforms else 'does not conform'}")
    print("  (the root fails because foaf:knows requires the referenced node to")
    print("   have shape Person, recursively)")


def main() -> None:
    example_13()
    example_14_chain()
    example_14_cycle()
    example_14_tree_with_failure()


if __name__ == "__main__":
    main()
