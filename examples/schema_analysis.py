#!/usr/bin/env python3
"""Static schema analysis: staying inside the tractable fragment.

The paper's conclusion points at the Single Occurrence Regular Bag
Expressions (SORBE) fragment as the likely sweet spot between expressiveness
and validation cost.  This example analyses three schemas — the paper's
Person schema, the portal schema and a deliberately problematic one — and
reports, without touching any data:

* whether each shape is single-occurrence (SORBE) and deterministic,
* the per-predicate cardinality bounds the shape implies,
* which shapes are recursive and in which order a validator should process
  them (stratification),
* shapes that can never be satisfied or that only accept empty nodes.

Run with::

    python examples/schema_analysis.py
"""

from repro.shex import Schema
from repro.shex.analysis import analyze_schema, cardinality_bounds, is_deterministic
from repro.workloads import person_schema, portal_schema

PROBLEMATIC_SCHEMA = """
PREFIX ex:  <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

# the same predicate is constrained twice with different value expressions,
# which leaves the SORBE fragment and makes matching non-deterministic
<Measurement> {
  ex:value xsd:integer ,
  ex:value xsd:decimal ? ,
  ex:unit  [ "kg" "m" "s" ]
}

# a shape whose {0,0} cardinality collapses it to ε: it only accepts nodes
# with no outgoing arcs at all, which is usually an authoring mistake
<Closed> {
  ( ex:a [ 1 ] | ex:a [ 2 ] ) {0,0}
}
"""


def describe(name: str, schema: Schema) -> None:
    report = analyze_schema(schema)
    print(f"=== {name}")
    print(report.summary())
    print(f"  recursive shapes      : "
          f"{', '.join(str(label) for label in sorted(report.recursive)) or 'none'}")
    print(f"  SORBE (tractable)     : {report.is_sorbe}")
    for label, deterministic in sorted(report.deterministic.items()):
        if not deterministic:
            print(f"  non-deterministic     : <{label}> (two constraints can match the same arc)")
    if report.empty_shapes:
        print(f"  unsatisfiable shapes  : "
              f"{', '.join(str(label) for label in report.empty_shapes)}")
    order = " → ".join("{" + ", ".join(str(l) for l in stratum) + "}"
                       for stratum in report.strata)
    print(f"  validation order      : {order}")
    print()


def main() -> None:
    describe("Person schema (Example 1/14 of the paper)", person_schema())
    describe("Linked-data portal schema", portal_schema())
    describe("Problematic schema", Schema.from_shexc(PROBLEMATIC_SCHEMA))

    # a closer look at what the cardinality bounds say about the Person shape
    bounds = cardinality_bounds(person_schema().expression("Person"))
    print("Person shape, per-predicate cardinality bounds:")
    for predicate, bound in sorted(bounds.items(), key=lambda item: item[0].value):
        print(f"  {predicate.n3():<45} {bound.render()}")
    print()
    print("Determinism of the Person shape:",
          is_deterministic(person_schema().expression("Person")))


if __name__ == "__main__":
    main()
