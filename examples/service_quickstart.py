#!/usr/bin/env python3
"""Quickstart for validation-as-a-service: `repro serve` + the Python client.

The script starts an in-process server holding the paper's Person schema,
loads Example 2's graph over HTTP, reads verdicts from the warm baseline,
posts a delta that repairs ``:mary`` (drops her duplicate ``foaf:age``, adds
the missing ``foaf:name``) and shows the client-side verdict cache being
invalidated by the generation bump — the full service lifecycle without
leaving one Python process.

The same server runs standalone as::

    repro serve --schema person.shex --port 8080

after which this script's client section works against it unchanged.

Run with::

    PYTHONPATH=src python examples/service_quickstart.py
"""

from repro.service import DeltaRequest, ServiceClient, ValidationRequest, serve
from repro.workloads import PAPER_EXAMPLE_TURTLE, person_schema

MARY = "<http://example.org/mary>"
FIX_MARY = DeltaRequest(
    add='<http://example.org/mary> '
        '<http://xmlns.com/foaf/0.1/name> "Mary" .\n',
    remove='<http://example.org/mary> <http://xmlns.com/foaf/0.1/age> '
           '"65"^^<http://www.w3.org/2001/XMLSchema#integer> .\n',
)


def main() -> None:
    # `serve()` binds an ephemeral port; `repro serve` wraps exactly this.
    with serve(person_schema()) as server:
        server.start_background()
        client = ServiceClient(server.host, server.port)

        # POST /graphs: load + initial full validation, once.
        loaded = client.load_graph(ValidationRequest(data=PAPER_EXAMPLE_TURTLE))
        graph_id = loaded["graph_id"]
        print(f"loaded {loaded['triples']} triples as {graph_id} "
              f"(generation {loaded['generation']}, "
              f"conforms={loaded['conforms']})")

        # GET /graphs/{id}/verdicts: answered from the maintained baseline.
        for node in ("john", "bob", "mary"):
            verdict = client.verdict(graph_id, f"<http://example.org/{node}>")
            print(f"  :{node:<4} conforms={verdict.conforms}")

        # A repeated query is a client-cache hit: no HTTP round-trip at all.
        client.verdict(graph_id, MARY)
        print(f"client cache: {client.cache.stats()}")

        # POST /graphs/{id}/delta: one journal batch, incremental re-run.
        delta = client.apply_delta(graph_id, FIX_MARY)
        print(f"delta: generation {delta.generation}, "
              f"revalidated {delta.revalidated_pairs} pair(s), "
              f"reused {delta.reused_pairs}, conforms={delta.conforms}")

        # The generation bump invalidated the cached :mary verdict ...
        print(f"client cache: {client.cache.stats()}")
        # ... so this refetches, and the repaired :mary now conforms.
        print(f"  :mary conforms={client.verdict(graph_id, MARY).conforms}")

        # GET /graphs/{id}/stats: the unified counters, `--cache-stats` style.
        print(client.graph_stats(graph_id).format_text())


if __name__ == "__main__":
    main()
