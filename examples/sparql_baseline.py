#!/usr/bin/env python3
"""Why not SPARQL? — reproducing Section 3 of the paper.

The script compiles the Person shape into the counting SPARQL ASK query the
paper shows in Example 4, runs it with the bundled SPARQL engine, compares
the verdicts with the derivative engine, and demonstrates the limitation the
paper points out: the recursive part of the shape (``foaf:knows @<Person>*``)
can only be approximated in SPARQL.

Run with::

    python examples/sparql_baseline.py
"""

from repro import Graph, Schema, Validator
from repro.rdf import EX, FOAF, Literal, Triple
from repro.shex.sparql_gen import (
    SparqlCompilationError,
    SparqlEngine,
    shape_to_sparql_ask,
    shape_to_sparql_select,
)
from repro.sparql import ask, select
from repro.workloads import paper_example_graph, person_schema


def show_generated_query(schema: Schema, graph: Graph) -> None:
    expr = schema.expression("Person")
    john = EX.john
    query = shape_to_sparql_ask(expr, john, approximate_references=True)
    print("Generated ASK query for :john (compare with Example 4 of the paper):")
    print(query)
    print(f"ASK result for :john : {ask(graph, query)}")
    mary_query = shape_to_sparql_ask(expr, EX.mary, approximate_references=True)
    print(f"ASK result for :mary : {ask(graph, mary_query)}")
    print()


def show_select_form(schema: Schema, graph: Graph) -> None:
    expr = schema.expression("Person")
    query = shape_to_sparql_select(expr, approximate_references=True)
    solutions = select(graph, query)
    nodes = sorted(solution["node"].n3() for solution in solutions)
    print("SELECT form — all conforming nodes in one query:")
    print(f"  {nodes}")
    print()


def compare_engines(schema: Schema, graph: Graph) -> None:
    derivative_nodes = Validator(graph, schema).conforming_nodes("Person")
    sparql_nodes = Validator(graph, schema, engine=SparqlEngine()).conforming_nodes("Person")
    print("Engine agreement on the paper's example graph:")
    print(f"  derivatives : {[n.n3() for n in derivative_nodes]}")
    print(f"  sparql      : {[n.n3() for n in sparql_nodes]}")
    print()


def show_recursion_limit(schema: Schema) -> None:
    expr = schema.expression("Person")
    try:
        shape_to_sparql_ask(expr, EX.john, approximate_references=False)
    except SparqlCompilationError as error:
        print("Recursion limitation (Section 3):")
        print(f"  {error}")
        print()


def show_where_approximation_differs() -> None:
    """A graph where the SPARQL approximation and the real semantics disagree.

    ``:a`` knows ``:ghost``, an IRI with no Person arcs at all.  The real
    (recursive) semantics rejects ``:a`` because ``:ghost`` is not a Person;
    the SPARQL approximation only checks that the object is an IRI and
    accepts it — exactly the gap the paper describes.
    """
    graph = Graph()
    graph.add(Triple(EX.a, FOAF.age, Literal(40)))
    graph.add(Triple(EX.a, FOAF.name, Literal("Ada")))
    graph.add(Triple(EX.a, FOAF.knows, EX.ghost))
    schema = person_schema()

    derivative_entry = Validator(graph, schema).validate_node(EX.a, "Person")
    sparql_entry = Validator(graph, schema, engine=SparqlEngine()).validate_node(EX.a, "Person")
    print("Where the SPARQL approximation differs (node :a knows a non-Person):")
    print(f"  derivative engine (real semantics): conforms = {derivative_entry.conforms}")
    print(f"  SPARQL approximation              : conforms = {sparql_entry.conforms}")


def main() -> None:
    graph = paper_example_graph()
    schema = person_schema()
    show_generated_query(schema, graph)
    show_select_form(schema, graph)
    compare_engines(schema, graph)
    show_recursion_limit(schema)
    show_where_approximation_differs()


if __name__ == "__main__":
    main()
