"""repro — RDF validation with Shape Expressions and regular expression derivatives.

A complete, pure-Python reproduction of

    Labra Gayo, Prud'hommeaux, Staworko, Solbrig:
    *Towards an RDF validation language based on Regular Expression
    derivatives*, EDBT/ICDT 2015 Workshops, pp. 197–204.

The package bundles:

* :mod:`repro.rdf` — an RDF substrate (terms, graphs, Turtle/N-Triples),
* :mod:`repro.shex` — Regular Shape Expressions, the derivative and
  backtracking matchers, schemas with recursion, ShExC parsing and the
  SPARQL compiler,
* :mod:`repro.sparql` — a SPARQL subset engine used as the Section 3 baseline,
* :mod:`repro.workloads` — synthetic graph and schema generators used by the
  examples and benchmarks.

Quickstart::

    from repro import Graph, Schema, Validator

    schema = Schema.from_shexc('''
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
        <Person> {
          foaf:age   xsd:integer ,
          foaf:name  xsd:string + ,
          foaf:knows @<Person> *
        }
    ''')
    graph = Graph.parse(turtle_text)
    print(Validator(graph, schema).conforming_nodes("Person"))
"""

from .rdf import (
    BNode,
    Graph,
    IRI,
    Literal,
    Namespace,
    Triple,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)
from .shex import (
    BacktrackingEngine,
    DerivativeEngine,
    MatchResult,
    Schema,
    ShapeLabel,
    ShapeTyping,
    ValidationReport,
    Validator,
    parse_shexc,
)

__version__ = "1.0.0"

__all__ = [
    "IRI", "BNode", "Literal", "Triple", "Graph", "Namespace",
    "parse_turtle", "serialize_turtle", "parse_ntriples", "serialize_ntriples",
    "Schema", "ShapeLabel", "ShapeTyping", "Validator", "ValidationReport",
    "MatchResult", "DerivativeEngine", "BacktrackingEngine", "parse_shexc",
    "__version__",
]
