"""Command line interface: validate RDF data against ShEx schemas.

The CLI makes the library usable without writing Python::

    python -m repro validate --data people.ttl --schema person.shex \
        --shape-map '<http://example.org/john>@<Person>' --format text

    python -m repro validate --data people.ttl --schema person.shex --all-nodes

    # whole-graph fast path: shared context + global derivative cache
    python -m repro validate --data people.ttl --schema person.shex \
        --all-nodes --bulk

    python -m repro check-schema person.shex
    python -m repro check-data people.ttl
    python -m repro sparql --data people.ttl --query query.rq
    python -m repro generate-workload --kind person --size 50 --output people.ttl

    # validation as a service: warm schema + maintained verdicts over HTTP
    python -m repro serve --schema person.shex --port 8080 --data people.ttl

Exit status: 0 when everything conforms (or the syntax check passes),
1 when at least one node fails validation, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .rdf import ColumnarGraph, Graph, ParseError, TripleStore
from .service.api import ServiceError
from .shex import Schema, SchemaError, Validator
from .shex.cache import DerivativeCache
from .shex.reporting import format_csv, format_text, report_to_json, summarize
from .shex.shape_map import parse_shape_map
from .shex.validator import ValidationReport

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RDF validation with Shape Expressions and regular expression derivatives",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser(
        "validate", help="validate RDF data against a ShEx schema")
    validate.add_argument("--data", required=True, help="path to a Turtle or N-Triples file")
    validate.add_argument("--data-format", choices=["turtle", "ntriples"], default="turtle")
    validate.add_argument("--schema", required=True, help="path to a ShExC schema file")
    validate.add_argument("--shape-map", help="shape map text (e.g. '<node>@<Shape>')")
    validate.add_argument("--shape-map-file", help="path to a shape map file")
    validate.add_argument("--all-nodes", action="store_true",
                          help="validate every subject node against every shape")
    validate.add_argument("--shape", help="validate all nodes against this single shape label")
    validate.add_argument("--engine", choices=["derivatives", "backtracking", "sparql"],
                          default="derivatives",
                          help="matching engine: 'derivatives' (the paper's linear "
                               "algorithm, default), 'backtracking' (the exponential "
                               "inference-rule baseline) or 'sparql' (approximate)")
    mode = validate.add_mutually_exclusive_group()
    mode.add_argument("--bulk", action="store_true",
                      help="fastest whole-graph configuration: on top of the "
                           "shared validation context (already the default), give "
                           "the derivative engine a global cross-node derivative "
                           "cache so structurally identical derivative steps are "
                           "computed once across all nodes")
    mode.add_argument("--per-node", action="store_true",
                      help="validate every node in a fresh context with no "
                           "cross-node caching (the paper-faithful baseline; "
                           "slower on graphs with shared or recursive structure)")
    validate.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="validate independent reference-graph components "
                               "across N worker processes (whole-graph modes "
                               "--all-nodes/--shape only; default 1: serial). "
                               "Incompatible with --per-node and the sparql engine")
    validate.add_argument("--no-precompile", action="store_true",
                          help="disable the compiled-schema fast paths "
                               "(static prefilter + predicate-indexed atom "
                               "tables); verdicts are identical, this is an "
                               "escape hatch for measurement and debugging")
    validate.add_argument("--cache-stats", nargs="?", const="text",
                          choices=["text", "json"], default=None,
                          help="print the unified ServiceStats counters "
                               "(store/journal/prefilter/cache) to stderr after "
                               "validation; '=json' emits the same structure "
                               "GET /stats serves.  Enables the global "
                               "derivative cache like --bulk")
    validate.add_argument("--cache-max-entries", type=int, default=None, metavar="N",
                          help="bound the global derivative cache to N entries "
                               "with LRU eviction (default: unbounded)")
    validate.add_argument("--no-signature-cache", action="store_true",
                          help="disable the neighbourhood-signature verdict "
                               "dedupe (on by default in the whole-graph bulk "
                               "modes); verdicts are identical, this is the "
                               "measurement baseline for the hot-path "
                               "benchmark")
    validate.add_argument("--store", choices=["dict", "columnar"], default="dict",
                          help="graph storage backend: 'dict' (hash-indexed, "
                               "default) or 'columnar' (dictionary-encoded "
                               "sorted int-id indexes with streaming ingest; "
                               "verdicts are identical)")
    validate.add_argument("--format", choices=["text", "json", "csv", "summary"],
                          default="text", dest="output_format")
    validate.add_argument("--include-stats", action="store_true",
                          help="include work counters in JSON output")

    revalidate = subparsers.add_parser(
        "revalidate",
        help="validate, apply a change set, then revalidate incrementally")
    revalidate.add_argument("--data", required=True,
                            help="path to the base Turtle or N-Triples file")
    revalidate.add_argument("--data-format", choices=["turtle", "ntriples"],
                            default="turtle")
    revalidate.add_argument("--schema", required=True,
                            help="path to a ShExC schema file")
    revalidate.add_argument("--add", metavar="FILE",
                            help="RDF file whose triples are added to the graph")
    revalidate.add_argument("--remove", metavar="FILE",
                            help="RDF file whose triples are removed from the graph")
    revalidate.add_argument("--shape",
                            help="revalidate against this single shape label "
                                 "(default: every shape)")
    revalidate.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes for both passes (default 1)")
    revalidate.add_argument("--no-precompile", action="store_true",
                            help="disable the compiled-schema fast paths")
    revalidate.add_argument("--no-signature-cache", action="store_true",
                            help="disable the neighbourhood-signature verdict "
                                 "dedupe for both passes")
    revalidate.add_argument("--delta-only", action="store_true",
                            help="print only the recomputed (delta) entries "
                                 "instead of the full updated report")
    revalidate.add_argument("--cache-stats", nargs="?", const="text",
                            choices=["text", "json"], default=None,
                            help="print the unified ServiceStats counters and "
                                 "revalidation stats to stderr ('=json' for "
                                 "the machine-readable structure)")
    revalidate.add_argument("--store", choices=["dict", "columnar"], default="dict",
                            help="graph storage backend (see 'validate --store')")
    revalidate.add_argument("--format", choices=["text", "json", "csv", "summary"],
                            default="text", dest="output_format")
    revalidate.add_argument("--include-stats", action="store_true",
                            help="include work counters in JSON output")

    serve = subparsers.add_parser(
        "serve",
        help="long-lived validation service: warm schema, maintained "
             "verdicts, JSON over HTTP",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="endpoints:\n"
               "  POST   /graphs                full validation, returns the graph id\n"
               "  POST   /graphs/{id}/delta     incremental delta round (idempotent\n"
               "                                via the request's delta_id)\n"
               "  GET    /graphs/{id}/verdicts  ?node=&shape=&reason=1&allow_degraded=1\n"
               "  GET    /graphs/{id}/stats     per-graph ServiceStats\n"
               "  GET    /stats                 every graph's ServiceStats\n"
               "  GET    /healthz               lock-free liveness + fleet health\n"
               "                                (status: ok | degraded)\n"
               "  DELETE /graphs/{id}           drop the graph and close its session")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks an ephemeral port and prints it)")
    serve.add_argument("--schema", required=True,
                       help="ShExC schema loaded once and kept warm")
    serve.add_argument("--data", help="optionally preload this RDF file as "
                                      "the first graph (validated at startup)")
    serve.add_argument("--data-format", choices=["turtle", "ntriples"],
                       default="turtle")
    serve.add_argument("--store", choices=["dict", "columnar"], default="dict",
                       help="storage backend for the preloaded graph")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="default SCC-parallel worker count per graph")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="hash-partition subjects across N worker "
                            "processes (the sharded scheduler; 0/1: off)")
    serve.add_argument("--no-resident-shards", action="store_true",
                       help="fork a fresh worker pool per run instead of "
                            "keeping a resident shard fleet warm (escape "
                            "hatch; slower deltas)")
    serve.add_argument("--fleet-response-timeout", type=float, default=120.0,
                       metavar="SECONDS",
                       help="how long the coordinator waits on a resident "
                            "shard worker before declaring it dead "
                            "(fleet-worker-died 503; the next write "
                            "respawns it)")
    serve.add_argument("--cache-max-entries", type=int, default=None,
                       metavar="N",
                       help="bound each graph's derivative cache (LRU)")
    serve.add_argument("--no-precompile", action="store_true",
                       help="disable the compiled-schema fast paths")
    serve.add_argument("--connection-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-connection socket timeout; stalled clients "
                            "are dropped (0: no timeout)")
    serve.add_argument("--max-connections", type=int, default=64, metavar="N",
                       help="bound on concurrent connections; past it the "
                            "accept loop queues (0: unbounded)")
    serve.add_argument("--max-body-bytes", type=int,
                       default=64 * 1024 * 1024, metavar="N",
                       help="largest accepted request body; bigger "
                            "declarations get a typed 413 (0: unbounded)")

    check_schema = subparsers.add_parser("check-schema", help="parse a ShExC schema and report errors")
    check_schema.add_argument("schema", help="path to a ShExC schema file")

    check_data = subparsers.add_parser("check-data", help="parse an RDF file and report errors")
    check_data.add_argument("data", help="path to a Turtle or N-Triples file")
    check_data.add_argument("--data-format", choices=["turtle", "ntriples"], default="turtle")

    sparql = subparsers.add_parser("sparql", help="run a SPARQL query over an RDF file")
    sparql.add_argument("--data", required=True)
    sparql.add_argument("--data-format", choices=["turtle", "ntriples"], default="turtle")
    sparql.add_argument("--query", required=True, help="path to a .rq file or an inline query")

    generate = subparsers.add_parser("generate-workload",
                                     help="generate a synthetic workload graph")
    generate.add_argument("--kind", choices=["person", "portal"], default="person")
    generate.add_argument("--size", type=int, default=50)
    generate.add_argument("--invalid-fraction", type=float, default=0.2)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", help="write Turtle here (default: stdout)")
    return parser


def _read_file(path: str) -> str:
    try:
        return Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise SystemExit(f"error: cannot read {path}: {error}")


def _load_graph(path: str, data_format: str, store: str = "dict") -> TripleStore:
    if store == "columnar":
        if data_format == "ntriples":
            # Stream line-by-line so the decoded triple list never has to be
            # held in memory alongside the encoded segments.
            graph = ColumnarGraph()
            try:
                with Path(path).open(encoding="utf-8") as lines:
                    graph.ingest_ntriples(lines)
            except OSError as error:
                raise SystemExit(f"error: cannot read {path}: {error}")
            return graph
        return ColumnarGraph.parse(_read_file(path), format=data_format)
    return Graph.parse(_read_file(path), format=data_format)


def _load_schema(path: str) -> Schema:
    return Schema.from_shexc(_read_file(path))


def _build_engine(name: str):
    if name == "sparql":
        from .shex.sparql_gen import SparqlEngine

        return SparqlEngine()
    return name


def _print_service_stats(stats, mode: str) -> None:
    """Emit the unified ServiceStats block to stderr (text or JSON).

    The same object ``GET /stats`` serves: ``--cache-stats`` prints the
    classic prefixed ``key=value`` lines, ``--cache-stats=json`` the
    versioned JSON payload.
    """
    if mode == "json":
        import json as _json

        print(_json.dumps(stats.to_json()), file=sys.stderr)
    else:
        print(stats.format_text(), file=sys.stderr)


def _render_report(report: ValidationReport, output_format: str,
                   include_stats: bool) -> str:
    if output_format == "json":
        return report_to_json(report, include_stats=include_stats)
    if output_format == "csv":
        return format_csv(report)
    if output_format == "summary":
        return summarize(report) + "\n"
    return format_text(report)


def _command_validate(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise SystemExit("error: --jobs must be at least 1")
    if args.jobs > 1 and args.per_node:
        raise SystemExit("error: --jobs > 1 shares settled verdicts across "
                         "components and is incompatible with --per-node")
    if args.jobs > 1 and args.engine == "sparql":
        raise SystemExit("error: --jobs > 1 is not supported with the sparql engine")
    if args.jobs > 1 and (args.shape_map or args.shape_map_file):
        raise SystemExit("error: --jobs > 1 needs a whole-graph mode "
                         "(--all-nodes or --shape); shape maps validate serially")
    from .service.session import ValidationSession, collect_stats

    graph = _load_graph(args.data, args.data_format, args.store)
    schema = _load_schema(args.schema)
    wants_cache = bool(args.bulk or args.cache_stats
                       or args.cache_max_entries is not None)
    session = None
    if args.per_node:
        # the paper-faithful fresh-context-per-node baseline keeps the bare
        # Validator: the session facade is built around the shared context
        engine_options = {}
        if wants_cache and args.engine == "derivatives":
            engine_options["cache"] = DerivativeCache(
                max_entries=args.cache_max_entries)
        validator = Validator(graph, schema, engine=_build_engine(args.engine),
                              shared_context=False, jobs=args.jobs,
                              precompile=not args.no_precompile,
                              signature_cache=False,
                              **engine_options)
    else:
        session = ValidationSession(
            graph, schema, engine=_build_engine(args.engine), jobs=args.jobs,
            precompile=not args.no_precompile, use_cache=wants_cache,
            cache_max_entries=args.cache_max_entries,
            use_signature_cache=not args.no_signature_cache)
        validator = session.validator

    if args.shape_map or args.shape_map_file:
        text = args.shape_map or _read_file(args.shape_map_file)
        shape_map = parse_shape_map(text, graph.namespaces)
        report = validator.validate_map(shape_map.resolve(graph))
    elif args.shape:
        report = session.validate(labels=[args.shape]) if session \
            else validator.validate_graph(labels=[args.shape])
    elif args.all_nodes:
        report = session.validate() if session else validator.validate_graph()
    else:
        raise SystemExit(
            "error: choose --shape-map/--shape-map-file, --shape or --all-nodes")

    sys.stdout.write(_render_report(report, args.output_format, args.include_stats))
    if args.cache_stats:
        if session is not None and not (args.shape_map or args.shape_map_file):
            stats = session.stats()
        else:
            stats = collect_stats(validator, report.total_stats(),
                                  {"jobs": args.jobs})
        _print_service_stats(stats, args.cache_stats)
    return 0 if report.conforms else 1


def _command_revalidate(args: argparse.Namespace) -> int:
    """Full pass, apply a change set, incremental pass: the watch-style demo.

    The change set is applied through the bulk mutation helpers
    (``add_all`` / ``remove_all``), so the whole edit lands as one batch in
    the graph's change journal; ``Validator.revalidate`` then consumes the
    journal and re-runs only the affected reference-graph region.
    """
    if args.jobs < 1:
        raise SystemExit("error: --jobs must be at least 1")
    if not args.add and not args.remove:
        raise SystemExit("error: revalidate needs a change set "
                         "(--add and/or --remove)")
    from .service.session import ValidationSession

    graph = _load_graph(args.data, args.data_format, args.store)
    schema = _load_schema(args.schema)
    labels = [args.shape] if args.shape else None
    session = ValidationSession(graph, schema, jobs=args.jobs,
                                precompile=not args.no_precompile,
                                use_cache=False,
                                use_signature_cache=not args.no_signature_cache)
    session.validate(labels=labels)

    additions = _load_graph(args.add, args.data_format) if args.add else ()
    removals = _load_graph(args.remove, args.data_format) if args.remove else ()
    # the CLI opts into the silent full-rebuild fallback a long-lived
    # service would refuse (there, the typed journal-overflow error)
    response, result = session.apply_changes(
        add=additions, remove=removals, labels=labels,
        allow_full_rebuild=True)
    shown = result.delta if args.delta_only else result.report
    sys.stdout.write(_render_report(shown, args.output_format, args.include_stats))
    print(f"revalidate: +{response.added}/-{response.removed} triples, "
          f"{response.dirty_subjects} dirty subject(s), "
          f"{response.affected_nodes} affected node(s), "
          f"{response.revalidated_pairs} pair(s) revalidated, "
          f"{response.reused_pairs} reused"
          + (" (full rebuild)" if response.full_rebuild else ""),
          file=sys.stderr)
    if args.cache_stats:
        _print_service_stats(session.stats(), args.cache_stats)
        print("revalidate-stats: "
              f"retracted_verdicts={response.retracted_verdicts} "
              f"full_rebuild={response.full_rebuild}", file=sys.stderr)
    return 0 if result.report.conforms else 1


def _command_serve(args: argparse.Namespace) -> int:
    """Run the validation service until interrupted.

    The schema is loaded (and compiled) once; every graph gets a warm
    :class:`~repro.service.session.ValidationSession` whose maintained
    baseline answers verdict queries without fresh runs.  With ``--data``
    the file is preloaded and validated before the socket starts accepting.
    """
    if args.jobs < 1:
        raise SystemExit("error: --jobs must be at least 1")
    if args.shards < 0:
        raise SystemExit("error: --shards must be at least 0")
    from .service.server import serve
    from .service.session import ValidationSession

    schema = _load_schema(args.schema)
    resident = not args.no_resident_shards
    server = serve(schema, host=args.host, port=args.port,
                   jobs=args.jobs, shards=args.shards,
                   resident=resident,
                   precompile=not args.no_precompile,
                   cache_max_entries=args.cache_max_entries,
                   connection_timeout=args.connection_timeout or None,
                   max_connections=args.max_connections or None,
                   max_body_bytes=args.max_body_bytes or None,
                   fleet_response_timeout=args.fleet_response_timeout)
    if args.data:
        graph = _load_graph(args.data, args.data_format, args.store)
        session = ValidationSession(
            graph, schema, jobs=args.jobs, shards=args.shards,
            resident=resident,
            precompile=not args.no_precompile,
            cache_max_entries=args.cache_max_entries,
            fleet_response_timeout=args.fleet_response_timeout)
        report = session.validate()
        graph_id = server.service.register(session)
        print(f"serve: preloaded {args.data} as {graph_id} "
              f"({len(graph)} triples, {len(report)} pairs, "
              f"conforms={report.conforms})", file=sys.stderr)
    print(f"serve: listening on http://{server.host}:{server.port} "
          f"(jobs={args.jobs}, shards={args.shards})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _command_check_schema(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    labels = ", ".join(str(label) for label in schema.labels())
    recursive = "recursive" if schema.is_recursive() else "non-recursive"
    print(f"OK: {len(schema)} shape(s) [{labels}] ({recursive})")
    return 0


def _command_check_data(args: argparse.Namespace) -> int:
    graph = _load_graph(args.data, args.data_format)
    print(f"OK: {len(graph)} triples, {len(list(graph.nodes()))} subject nodes")
    return 0


def _command_sparql(args: argparse.Namespace) -> int:
    from .sparql import evaluate_query

    graph = _load_graph(args.data, args.data_format)
    query_text = _read_file(args.query) if Path(args.query).exists() else args.query
    result = evaluate_query(graph, query_text)
    if result.kind == "ask":
        print("true" if result.boolean else "false")
        return 0 if result.boolean else 1
    for solution in result.solutions:
        rendered = ", ".join(
            f"?{name}={term.n3()}" for name, term in sorted(solution.items())
        )
        print(rendered if rendered else "(empty row)")
    print(f"{len(result.solutions)} solution(s)")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    from .workloads import generate_person_workload, generate_portal_workload

    if args.kind == "person":
        workload = generate_person_workload(
            num_people=args.size, invalid_fraction=args.invalid_fraction, seed=args.seed)
        graph = workload.graph
        summary = (f"# person workload: {len(workload.valid_nodes)} valid, "
                   f"{len(workload.invalid_nodes)} invalid nodes\n")
    else:
        workload = generate_portal_workload(
            num_datasets=args.size, invalid_fraction=args.invalid_fraction, seed=args.seed)
        graph = workload.graph
        summary = (f"# portal workload: {len(workload.valid_datasets)} valid, "
                   f"{len(workload.invalid_datasets)} invalid datasets\n")
    text = summary + graph.serialize("turtle")
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(graph)} triples to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


_COMMANDS = {
    "validate": _command_validate,
    "revalidate": _command_revalidate,
    "serve": _command_serve,
    "check-schema": _command_check_schema,
    "check-data": _command_check_data,
    "sparql": _command_sparql,
    "generate-workload": _command_generate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except ServiceError as error:
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        return 2
    except (ParseError, SchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SystemExit as error:
        if isinstance(error.code, str):
            print(error.code, file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
