"""RDF substrate: terms, graphs, namespaces, datatypes and concrete syntaxes.

This package is a self-contained, pure-Python replacement for the external
RDF stack the paper's implementations rely on.  It provides everything the
Shape Expression matchers need:

* the term model (:class:`IRI`, :class:`BNode`, :class:`Literal`,
  :class:`Triple`),
* an indexed in-memory :class:`Graph` with the union / neighbourhood /
  decomposition algebra of Section 2 of the paper,
* namespace management and the common vocabularies,
* XSD datatype validation,
* N-Triples and Turtle parsers and serialisers.
"""

from .datatypes import (
    canonical_lexical,
    datatype_matches,
    is_valid_lexical,
    to_python_value,
)
from .errors import (
    DatatypeError,
    GraphError,
    NamespaceError,
    ParseError,
    RDFError,
    StaleSnapshotError,
)
from .columnar import ColumnarGraph
from .dictionary import TermDictionary
from .graph import (
    ChangeJournal,
    Graph,
    NeighbourhoodSnapshot,
    NeighbourhoodView,
    OrderedTriples,
    TripleStore,
    decomposition_count,
    decompositions,
)
from .namespaces import (
    DC,
    DCTERMS,
    EX,
    FOAF,
    OWL,
    RDF,
    RDFS,
    SCHEMA,
    SHEX,
    XSD,
    Namespace,
    NamespaceManager,
)
from .ntriples import parse_ntriples, parse_term, serialize_ntriples
from .terms import (
    BNode,
    IRI,
    Literal,
    ObjectTerm,
    SubjectTerm,
    Term,
    Triple,
    is_object_term,
    is_predicate_term,
    is_subject_term,
)
from .turtle import parse_turtle, serialize_turtle

__all__ = [
    # terms
    "Term", "IRI", "BNode", "Literal", "Triple", "SubjectTerm", "ObjectTerm",
    "is_subject_term", "is_predicate_term", "is_object_term",
    # graph / storage layer
    "Graph", "TripleStore", "ColumnarGraph", "TermDictionary",
    "ChangeJournal", "NeighbourhoodSnapshot", "NeighbourhoodView",
    "OrderedTriples", "decompositions", "decomposition_count",
    # namespaces
    "Namespace", "NamespaceManager",
    "RDF", "RDFS", "XSD", "OWL", "FOAF", "SCHEMA", "DC", "DCTERMS", "SHEX", "EX",
    # datatypes
    "is_valid_lexical", "to_python_value", "canonical_lexical", "datatype_matches",
    # serialisation
    "parse_ntriples", "parse_term", "serialize_ntriples", "parse_turtle", "serialize_turtle",
    # errors
    "RDFError", "NamespaceError", "DatatypeError", "ParseError", "GraphError",
    "StaleSnapshotError",
]
