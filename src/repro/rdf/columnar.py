"""Dictionary-encoded columnar triple store with sorted int-array segments.

The dict-backed :class:`~repro.rdf.graph.Graph` keeps three nested hash
indexes of term objects — fast, but every triple costs several dict entries,
set slots and object headers, which caps graph size far below the millions
of triples the target workloads need.  :class:`ColumnarGraph` implements the
same store contract (:class:`~repro.rdf.graph.TripleStore`) on top of
:class:`~repro.rdf.dictionary.TermDictionary` ids and an LSM-flavoured
layout:

* **segments** — immutable, each holding up to ``segment_size`` triples as
  three sorted ``array('q')`` column sets (SPO, POS and OSP order).  A
  neighbourhood scan binary-searches the subject range in each segment's SPO
  columns and slices it out; no per-triple Python objects exist until a scan
  decodes its results,
* a **mutable tail** — triples added since the last flush, held as id rows
  with a small per-subject index; flushing sorts the tail into a fresh
  segment once it reaches ``segment_size``,
* **tombstones** — removals of segment-resident rows are recorded in a side
  set (segments are never rewritten); removals of tail rows drop them
  directly.

Streaming ingest (:meth:`ColumnarGraph.ingest_ntriples`) parses one
N-Triples line at a time, encodes it and lets the term objects go, so peak
memory during a load is one open segment plus the dictionary — never the
decoded triple list.

Everything above the store (validators, partitioners, the change journal)
works on this class unchanged because the mutation bookkeeping, batch
semantics and query helpers are inherited from ``TripleStore``; the journal
is keyed by subject *id* here and decoded only at the ``changes_since``
boundary.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .dictionary import TermDictionary
from .errors import GraphError
from .graph import DEFAULT_JOURNAL_BOUND, OrderedTriples, TripleStore
from .namespaces import NamespaceManager
from .terms import IRI, ObjectTerm, SubjectTerm, Triple, unchecked_triple

__all__ = ["ColumnarGraph", "DEFAULT_SEGMENT_SIZE"]

#: default number of triples per segment: large enough that segment count
#: stays small on million-triple graphs, small enough that an open tail
#: never dominates memory during streaming ingest.
DEFAULT_SEGMENT_SIZE = 1 << 16

#: an id-level triple: ``(subject_id, predicate_id, object_id)``.
_Row = Tuple[int, int, int]


def _sorted_columns(rows: List[_Row], a: int, b: int, c: int
                    ) -> Tuple[array, array, array]:
    """Three parallel ``array('q')`` columns sorted by positions (a, b, c)."""
    ordered = sorted(rows, key=lambda row: (row[a], row[b], row[c]))
    return (
        array("q", [row[a] for row in ordered]),
        array("q", [row[b] for row in ordered]),
        array("q", [row[c] for row in ordered]),
    )


class _Segment:
    """An immutable sorted run of id triples in SPO, POS and OSP order."""

    __slots__ = ("size", "spo", "pos", "osp")

    def __init__(self, rows: List[_Row]):
        self.size = len(rows)
        self.spo = _sorted_columns(rows, 0, 1, 2)
        self.pos = _sorted_columns(rows, 1, 2, 0)
        self.osp = _sorted_columns(rows, 2, 0, 1)

    def nbytes(self) -> int:
        """Total bytes held by the nine columns."""
        return sum(len(col) * col.itemsize
                   for index in (self.spo, self.pos, self.osp)
                   for col in index)


def _key_range(column: array, key: int, lo: int, hi: int) -> Tuple[int, int]:
    """The half-open row range of ``column[lo:hi]`` equal to ``key``."""
    left = bisect_left(column, key, lo, hi)
    if left == hi or column[left] != key:
        return left, left
    return left, bisect_right(column, key, left, hi)


class ColumnarGraph(TripleStore):
    """A :class:`~repro.rdf.graph.TripleStore` over dictionary-encoded
    sorted int-array segments.

    Drop-in verdict-identical replacement for the dict store: same
    triples/neighbourhood/generation/journal contract, a fraction of the
    resident memory per triple, and binary-search neighbourhood scans.
    """

    store_name = "columnar"

    def __init__(self, triples: Optional[Iterable[Triple]] = None,
                 namespaces: Optional[NamespaceManager] = None,
                 segment_size: int = DEFAULT_SEGMENT_SIZE,
                 journal_max_entries: int = DEFAULT_JOURNAL_BOUND):
        super().__init__(namespaces=namespaces,
                         journal_max_entries=journal_max_entries)
        if segment_size < 1:
            raise GraphError("segment_size must be at least 1")
        self.segment_size = segment_size
        self._dict = TermDictionary()
        self._segments: List[_Segment] = []
        #: rows added since the last flush, in insertion order …
        self._tail: List[_Row] = []
        #: … with a membership set and a per-subject (pid, oid) index so the
        #: tail never degrades neighbourhood scans to linear probes.
        self._tail_set: Set[_Row] = set()
        self._tail_spo: Dict[int, List[Tuple[int, int]]] = {}
        #: tombstones: segment-resident rows that were removed (segments are
        #: immutable, so removals are recorded on the side).  Tail rows are
        #: never tombstoned — they are dropped from the tail directly.
        self._dead: Set[_Row] = set()
        #: live out-degree per subject id (also the subject-node directory).
        self._out_degree: Dict[int, int] = {}
        #: id-order neighbourhoods for :meth:`neighbourhood_any` — kept apart
        #: from the term-sorted cache because the any-path skips the sort.
        self._neigh_any: Dict[int, OrderedTriples] = {}
        self._count = 0
        #: high-water mark of the tail during ingest — the streaming tests
        #: assert loads stay segment-bounded through this counter.
        self._peak_tail = 0
        self._segments_built = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------ set API
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Triple]:
        decode = self._dict.decode
        dead = self._dead
        for segment in self._segments:
            s_col, p_col, o_col = segment.spo
            for i in range(segment.size):
                if dead and (s_col[i], p_col[i], o_col[i]) in dead:
                    continue
                yield unchecked_triple(decode(s_col[i]), decode(p_col[i]),
                                       decode(o_col[i]))
        for s, p, o in self._tail:
            yield unchecked_triple(decode(s), decode(p), decode(o))

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, Triple):
            return False
        row = self._lookup_row(triple)
        return row is not None and self._row_present(row)

    def __repr__(self) -> str:
        return (f"ColumnarGraph(<{self._count} triples, "
                f"{len(self._segments)} segments>)")

    # ------------------------------------------------------------- id plumbing
    def _lookup_row(self, triple: Triple) -> Optional[_Row]:
        """The id row of ``triple``, or ``None`` if any term is unknown."""
        lookup = self._dict.lookup
        sid = lookup(triple.subject)
        if sid is None:
            return None
        pid = lookup(triple.predicate)
        if pid is None:
            return None
        oid = lookup(triple.object)
        if oid is None:
            return None
        return (sid, pid, oid)

    def _in_segments(self, row: _Row) -> bool:
        """True if some segment holds ``row`` (live or tombstoned)."""
        sid, pid, oid = row
        for segment in self._segments:
            first, second, third = segment.spo
            lo, hi = _key_range(first, sid, 0, segment.size)
            if lo == hi:
                continue
            lo, hi = _key_range(second, pid, lo, hi)
            if lo == hi:
                continue
            i = bisect_left(third, oid, lo, hi)
            if i < hi and third[i] == oid:
                return True
        return False

    def _row_present(self, row: _Row) -> bool:
        if row in self._tail_set:
            return True
        if row in self._dead:
            return False
        return self._in_segments(row)

    def _bump_degree(self, sid: int, delta: int) -> None:
        degree = self._out_degree.get(sid, 0) + delta
        if degree:
            self._out_degree[sid] = degree
        else:
            self._out_degree.pop(sid, None)

    def _decode_journal_keys(self, keys: FrozenSet) -> FrozenSet[SubjectTerm]:
        decode = self._dict.decode
        return frozenset(decode(sid) for sid in keys)

    # ------------------------------------------------------------- modification
    def add(self, triple: Triple) -> "ColumnarGraph":
        """Add a triple (the ``t ∘ ts`` operation).  Returns ``self``."""
        if not isinstance(triple, Triple):
            raise GraphError(
                f"can only add Triple instances, got {type(triple).__name__}")
        encode = self._dict.encode
        row = (encode(triple.subject), encode(triple.predicate),
               encode(triple.object))
        if row in self._tail_set:
            return self
        if row in self._dead:
            # the row still sits in a segment: reviving it is un-tombstoning
            self._dead.remove(row)
            self._count += 1
            self._bump_degree(row[0], 1)
            self._invalidate_key(row[0])
            return self
        if self._in_segments(row):
            return self
        self._tail.append(row)
        self._tail_set.add(row)
        self._tail_spo.setdefault(row[0], []).append((row[1], row[2]))
        self._count += 1
        self._bump_degree(row[0], 1)
        self._invalidate_key(row[0])
        if len(self._tail) > self._peak_tail:
            self._peak_tail = len(self._tail)
        if len(self._tail) >= self.segment_size:
            self._flush_tail()
        return self

    def discard(self, triple: Triple) -> "ColumnarGraph":
        """Remove ``triple`` if present.  Returns ``self``."""
        if not isinstance(triple, Triple):
            return self
        row = self._lookup_row(triple)
        if row is None:
            return self
        if row in self._tail_set:
            self._tail_set.remove(row)
            self._tail.remove(row)
            pairs = self._tail_spo[row[0]]
            pairs.remove((row[1], row[2]))
            if not pairs:
                del self._tail_spo[row[0]]
        elif row not in self._dead and self._in_segments(row):
            self._dead.add(row)
        else:
            return self
        self._count -= 1
        self._bump_degree(row[0], -1)
        self._invalidate_key(row[0])
        return self

    def _invalidate_key(self, key: int) -> None:
        self._neigh_any.pop(key, None)
        super()._invalidate_key(key)

    def clear(self) -> None:
        """Remove every triple (the dictionary keeps its interned terms)."""
        self._segments.clear()
        self._tail = []
        self._tail_set = set()
        self._tail_spo = {}
        self._dead.clear()
        self._out_degree.clear()
        self._count = 0
        self._neigh_sets.clear()
        self._neigh_ordered.clear()
        self._neigh_any.clear()
        self._generation += 1
        # every subject changed: no bounded log can say *which*, so the
        # journal honestly forgets and answers None for earlier generations.
        self._journal.truncate(self._generation)
        self._batch_dirty.clear()

    def _flush_tail(self) -> None:
        """Sort the tail into a fresh immutable segment."""
        if not self._tail:
            return
        self._segments.append(_Segment(self._tail))
        self._segments_built += 1
        self._tail = []
        self._tail_set = set()
        self._tail_spo = {}

    # ---------------------------------------------------------------- querying
    def _subject_pairs(self, sid: int) -> List[Tuple[int, int]]:
        """Live ``(predicate_id, object_id)`` pairs of subject ``sid``."""
        pairs: List[Tuple[int, int]] = []
        dead = self._dead
        for segment in self._segments:
            first, second, third = segment.spo
            lo, hi = _key_range(first, sid, 0, segment.size)
            if lo == hi:
                continue
            if dead:
                for i in range(lo, hi):
                    if (sid, second[i], third[i]) in dead:
                        continue
                    pairs.append((second[i], third[i]))
            else:
                pairs.extend(zip(second[lo:hi], third[lo:hi]))
        tail_pairs = self._tail_spo.get(sid)
        if tail_pairs:
            pairs.extend(tail_pairs)
        return pairs

    def signature_pairs(self, node: SubjectTerm
                        ) -> Optional[Tuple[int, Tuple[Tuple[int, int], ...]]]:
        """Id-native raw material for a neighbourhood signature.

        Returns ``(subject_id, sorted (predicate_id, object_id) pairs)`` for
        ``node``, or ``None`` when the node is unknown to the dictionary
        (its neighbourhood is empty and the caller should fall back to the
        term path).  The pairs are sorted by integer id — a canonical order
        that costs an int sort instead of term comparisons — and the ids let
        :meth:`ValidationContext.node_signature` key its object-class memo
        by ``(pid, oid)`` ints instead of term objects.
        """
        sid = self._dict.lookup(node)
        if sid is None:
            return None
        return sid, tuple(sorted(self._subject_pairs(sid)))

    def decode_id(self, tid: int):
        """Materialise the term for ``tid`` (dictionary passthrough)."""
        return self._dict.decode(tid)

    def triples(
        self,
        subject: Optional[SubjectTerm] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[ObjectTerm] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching a pattern; ``None`` is a wildcard."""
        lookup = self._dict.lookup
        decode = self._dict.decode
        sid = pid = oid = None
        if subject is not None:
            sid = lookup(subject)
            if sid is None:
                return
        if predicate is not None:
            pid = lookup(predicate)
            if pid is None:
                return
        if obj is not None:
            oid = lookup(obj)
            if oid is None:
                return
        if sid is not None and pid is not None and oid is not None:
            if self._row_present((sid, pid, oid)):
                yield Triple(subject, predicate, obj)
            return
        if sid is not None:
            for p, o in self._subject_pairs(sid):
                if pid is not None and p != pid:
                    continue
                if oid is not None and o != oid:
                    continue
                yield unchecked_triple(subject, decode(p), decode(o))
            return
        dead = self._dead
        if pid is not None:
            for segment in self._segments:
                first, second, third = segment.pos
                lo, hi = _key_range(first, pid, 0, segment.size)
                if oid is not None:
                    lo, hi = _key_range(second, oid, lo, hi)
                for i in range(lo, hi):
                    if dead and (third[i], pid, second[i]) in dead:
                        continue
                    yield unchecked_triple(decode(third[i]), predicate,
                                           decode(second[i]))
            for s, p, o in self._tail:
                if p != pid or (oid is not None and o != oid):
                    continue
                yield unchecked_triple(decode(s), predicate, decode(o))
            return
        if oid is not None:
            for segment in self._segments:
                first, second, third = segment.osp
                lo, hi = _key_range(first, oid, 0, segment.size)
                for i in range(lo, hi):
                    if dead and (second[i], third[i], oid) in dead:
                        continue
                    yield unchecked_triple(decode(second[i]), decode(third[i]),
                                           obj)
            for s, p, o in self._tail:
                if o != oid:
                    continue
                yield unchecked_triple(decode(s), decode(p), obj)
            return
        yield from self

    def in_edges(self, node: ObjectTerm) -> Iterator[Tuple[IRI, SubjectTerm]]:
        """Iterate ``(predicate, subject)`` over the in-edges of ``node``.

        The id-native reverse scan the ``affected_nodes`` BFS runs on: one
        binary search per segment on the OSP columns, and only the predicate
        and subject ids that survive are decoded (memoised in the
        dictionary, so a predicate is materialised once, not once per edge).
        """
        oid = self._dict.lookup(node)
        if oid is None:
            return
        decode = self._dict.decode
        dead = self._dead
        for segment in self._segments:
            first, second, third = segment.osp
            lo, hi = _key_range(first, oid, 0, segment.size)
            for i in range(lo, hi):
                if dead and (second[i], third[i], oid) in dead:
                    continue
                yield decode(third[i]), decode(second[i])
        for s, p, o in self._tail:
            if o == oid:
                yield decode(p), decode(s)

    def nodes(self) -> Iterator[SubjectTerm]:
        """Iterate over every distinct subject node in the graph."""
        decode = self._dict.decode
        return iter([decode(sid) for sid in self._out_degree])

    def degree(self, node: SubjectTerm) -> int:
        """Return the out-degree of ``node`` (size of its neighbourhood)."""
        sid = self._dict.lookup(node)
        if sid is None:
            return 0
        return self._out_degree.get(sid, 0)

    def predicate_counts(self, node: SubjectTerm) -> Dict[IRI, int]:
        """Out-edge multiplicities of ``node``, grouped by predicate.

        Counted over id pairs; only the distinct predicates are decoded
        (and those hit the dictionary's memoised term cache).
        """
        sid = self._dict.lookup(node)
        if sid is None:
            return {}
        counts: Dict[int, int] = {}
        for p, _ in self._subject_pairs(sid):
            counts[p] = counts.get(p, 0) + 1
        decode = self._dict.decode
        return {decode(p): count for p, count in counts.items()}

    # ------------------------------------------------------ paper-level algebra
    def neighbourhood(self, node: SubjectTerm) -> FrozenSet[Triple]:
        """Return ``Σgₙ`` as a frozenset (cached per subject id)."""
        sid = self._dict.lookup(node)
        if sid is None:
            return frozenset()
        cached = self._neigh_sets.get(sid)
        if cached is not None:
            return cached
        result = frozenset(self.neighbourhood_ordered(node))
        self._neigh_sets[sid] = result
        return result

    def neighbourhood_ordered(self, node: SubjectTerm) -> OrderedTriples:
        """Return ``Σgₙ`` as a predicate-sorted :class:`OrderedTriples`.

        The scan slices the subject's row range out of each segment's SPO
        columns, sorts the id pairs by memoised term sort keys and only then
        decodes — triples are materialised exactly once per (cached) result.
        """
        sid = self._dict.lookup(node)
        if sid is None:
            return OrderedTriples()
        cached = self._neigh_ordered.get(sid)
        if cached is not None:
            return cached
        pairs = self._subject_pairs(sid)
        sort_key = self._dict.sort_key
        pairs.sort(key=lambda pair: (sort_key(pair[0]), sort_key(pair[1])))
        decode = self._dict.decode
        result = OrderedTriples(
            unchecked_triple(node, decode(p), decode(o)) for p, o in pairs
        )
        self._neigh_ordered[sid] = result
        return result

    def neighbourhood_any(self, node: SubjectTerm) -> OrderedTriples:
        """``Σgₙ`` in the cheapest representation: id-order triples.

        Unlike the dict store there is no hash index to reuse (a frozenset
        would cost an extra hash of every triple), and no caller of the
        any-form relies on term order — so this path decodes the id pairs in
        index order and skips both the hashing and the sort.
        """
        sid = self._dict.lookup(node)
        if sid is None:
            return OrderedTriples()
        cached = self._neigh_any.get(sid)
        if cached is not None:
            return cached
        ordered = self._neigh_ordered.get(sid)
        if ordered is not None:
            # a term-sorted neighbourhood is already materialised: reuse it.
            self._neigh_any[sid] = ordered
            return ordered
        terms = self._dict._terms
        decode = self._dict.decode
        new = tuple.__new__
        result = OrderedTriples([
            new(Triple, (node,
                         terms.get(p) or decode(p),
                         terms.get(o) or decode(o)))
            for p, o in self._subject_pairs(sid)
        ])
        self._neigh_any[sid] = result
        return result

    def copy(self) -> "ColumnarGraph":
        """Return an independent copy (same store kind and segment size)."""
        return ColumnarGraph(self, namespaces=self.namespaces.copy(),
                             segment_size=self.segment_size)

    # ------------------------------------------------------------ observability
    def store_stats(self) -> Dict[str, object]:
        """Store counters: segments, bytes per index family, decode counts."""
        stats = super().store_stats()
        index_bytes = sum(segment.nbytes() for segment in self._segments)
        stats.update({
            "segments": len(self._segments),
            "segments_built": self._segments_built,
            "segment_size": self.segment_size,
            "segment_rows": sum(segment.size for segment in self._segments),
            "tail_rows": len(self._tail),
            "peak_tail_rows": self._peak_tail,
            "tombstones": len(self._dead),
            # nine columns split evenly across the three index families
            "index_bytes": index_bytes,
            "bytes_per_index": index_bytes // 3 if index_bytes else 0,
            "dictionary": self._dict.stats(),
        })
        return stats

    # ------------------------------------------------------------ serialisation
    def ingest_ntriples(self, lines: Iterable[str]) -> int:
        """Stream N-Triples ``lines`` into the store; returns triples added.

        ``lines`` may be an open file handle or any lazy line source.  Each
        line is parsed, encoded and released: peak memory is one open tail
        (≤ ``segment_size`` id rows) plus the term dictionary — the decoded
        triple list never exists.
        """
        from .ntriples import iter_ntriples_lines

        before = self._count
        with self.batch():
            for triple in iter_ntriples_lines(lines):
                self.add(triple)
        return self._count - before

    @classmethod
    def parse(cls, data: str, format: str = "turtle",
              base: Optional[str] = None,
              segment_size: int = DEFAULT_SEGMENT_SIZE) -> "ColumnarGraph":
        """Parse ``data`` into a new columnar graph.

        N-Triples goes through the streaming ingest path line by line.
        Turtle needs whole-document prefix context, so it is parsed into a
        dict graph first and re-encoded (buffered; prefer N-Triples for
        large loads).
        """
        if format in ("ntriples", "nt"):
            graph = cls(segment_size=segment_size)
            graph.ingest_ntriples(data.splitlines())
            return graph
        if format in ("turtle", "ttl"):
            from .turtle import parse_turtle

            parsed = parse_turtle(data, base=base)
            graph = cls(segment_size=segment_size,
                        namespaces=parsed.namespaces.copy())
            graph.add_all(parsed)
            return graph
        raise GraphError(f"unknown parse format: {format!r}")
