"""XSD datatype support: lexical validation and Python value mapping.

Shape expressions constrain literal objects by datatype (``foaf:age
xsd:integer`` in Example 1 of the paper).  Matching an arc therefore needs to
answer two questions about a literal:

1. does its declared datatype equal (or derive from) the requested datatype?
2. is its lexical form valid for that datatype?

This module implements both, plus conversion of literals to native Python
values, for the XSD datatypes that appear in RDF validation practice
(numeric types, booleans, strings, dates and times).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import date, datetime, time, timedelta, timezone
from decimal import Decimal, InvalidOperation
from typing import Callable, Dict, Optional

from .errors import DatatypeError
from .namespaces import RDF, XSD
from .terms import IRI, Literal

__all__ = [
    "DatatypeInfo",
    "registered_datatypes",
    "is_valid_lexical",
    "to_python_value",
    "canonical_lexical",
    "datatype_matches",
    "derived_numeric_types",
]


@dataclass(frozen=True)
class DatatypeInfo:
    """Validation and conversion rules for one XSD datatype."""

    iri: IRI
    #: regular expression accepting the lexical space (anchored).
    pattern: re.Pattern
    #: converter from lexical form to a Python value.
    converter: Callable[[str], object]
    #: True for types counted as numeric by comparison facets.
    numeric: bool = False


def _parse_boolean(lexical: str) -> bool:
    if lexical in ("true", "1"):
        return True
    if lexical in ("false", "0"):
        return False
    raise DatatypeError(f"invalid boolean lexical form: {lexical!r}")


def _parse_decimal(lexical: str) -> Decimal:
    try:
        return Decimal(lexical)
    except InvalidOperation as exc:
        raise DatatypeError(f"invalid decimal lexical form: {lexical!r}") from exc


def _parse_double(lexical: str) -> float:
    lowered = lexical.strip()
    if lowered == "INF":
        return float("inf")
    if lowered == "-INF":
        return float("-inf")
    if lowered == "NaN":
        return float("nan")
    try:
        return float(lowered)
    except ValueError as exc:
        raise DatatypeError(f"invalid double lexical form: {lexical!r}") from exc


_DATE_RE = re.compile(r"^(-?\d{4,})-(\d{2})-(\d{2})(Z|[+-]\d{2}:\d{2})?$")
_TIME_RE = re.compile(r"^(\d{2}):(\d{2}):(\d{2})(\.\d+)?(Z|[+-]\d{2}:\d{2})?$")
_DATETIME_RE = re.compile(
    r"^(-?\d{4,})-(\d{2})-(\d{2})T(\d{2}):(\d{2}):(\d{2})(\.\d+)?(Z|[+-]\d{2}:\d{2})?$"
)
_DURATION_RE = re.compile(
    r"^-?P(?=.)(\d+Y)?(\d+M)?(\d+D)?(T(?=.)(\d+H)?(\d+M)?(\d+(\.\d+)?S)?)?$"
)


def _tz_from_suffix(suffix: Optional[str]) -> Optional[timezone]:
    if not suffix:
        return None
    if suffix == "Z":
        return timezone.utc
    sign = 1 if suffix[0] == "+" else -1
    hours, minutes = suffix[1:].split(":")
    return timezone(sign * timedelta(hours=int(hours), minutes=int(minutes)))


def _parse_date(lexical: str) -> date:
    match = _DATE_RE.match(lexical)
    if not match:
        raise DatatypeError(f"invalid date lexical form: {lexical!r}")
    year, month, day = int(match.group(1)), int(match.group(2)), int(match.group(3))
    try:
        return date(year, month, day)
    except ValueError as exc:
        raise DatatypeError(f"invalid date: {lexical!r}") from exc


def _parse_time(lexical: str) -> time:
    match = _TIME_RE.match(lexical)
    if not match:
        raise DatatypeError(f"invalid time lexical form: {lexical!r}")
    hour, minute, second = int(match.group(1)), int(match.group(2)), int(match.group(3))
    micro = int(float(match.group(4) or "0") * 1_000_000)
    try:
        return time(hour, minute, second, micro, tzinfo=_tz_from_suffix(match.group(5)))
    except ValueError as exc:
        raise DatatypeError(f"invalid time: {lexical!r}") from exc


def _parse_datetime(lexical: str) -> datetime:
    match = _DATETIME_RE.match(lexical)
    if not match:
        raise DatatypeError(f"invalid dateTime lexical form: {lexical!r}")
    year, month, day = int(match.group(1)), int(match.group(2)), int(match.group(3))
    hour, minute, second = int(match.group(4)), int(match.group(5)), int(match.group(6))
    micro = int(float(match.group(7) or "0") * 1_000_000)
    try:
        return datetime(
            year, month, day, hour, minute, second, micro,
            tzinfo=_tz_from_suffix(match.group(8)),
        )
    except ValueError as exc:
        raise DatatypeError(f"invalid dateTime: {lexical!r}") from exc


_INTEGER_PATTERN = re.compile(r"^[+-]?\d+$")
_NON_NEGATIVE_PATTERN = re.compile(r"^\+?\d+$")
_POSITIVE_PATTERN = re.compile(r"^\+?0*[1-9]\d*$")
_DECIMAL_PATTERN = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)$")
_DOUBLE_PATTERN = re.compile(
    r"^([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|[+-]?INF|NaN)$"
)
_BOOLEAN_PATTERN = re.compile(r"^(true|false|0|1)$")
_ANY_PATTERN = re.compile(r"^[\s\S]*$")
_LANG_PATTERN = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")


def _bounded_int(low: Optional[int], high: Optional[int]) -> Callable[[str], int]:
    def convert(lexical: str) -> int:
        value = int(lexical)
        if low is not None and value < low:
            raise DatatypeError(f"integer {value} below range minimum {low}")
        if high is not None and value > high:
            raise DatatypeError(f"integer {value} above range maximum {high}")
        return value

    return convert


_REGISTRY: Dict[str, DatatypeInfo] = {}


def _register(
    iri: IRI,
    pattern: re.Pattern,
    converter: Callable[[str], object],
    numeric: bool = False,
) -> None:
    _REGISTRY[iri.value] = DatatypeInfo(iri, pattern, converter, numeric)


_register(XSD.string, _ANY_PATTERN, str)
_register(XSD.boolean, _BOOLEAN_PATTERN, _parse_boolean)
_register(XSD.integer, _INTEGER_PATTERN, int, numeric=True)
_register(XSD.int, _INTEGER_PATTERN, _bounded_int(-(2**31), 2**31 - 1), numeric=True)
_register(XSD.long, _INTEGER_PATTERN, _bounded_int(-(2**63), 2**63 - 1), numeric=True)
_register(XSD.short, _INTEGER_PATTERN, _bounded_int(-(2**15), 2**15 - 1), numeric=True)
_register(XSD.byte, _INTEGER_PATTERN, _bounded_int(-(2**7), 2**7 - 1), numeric=True)
_register(XSD.nonNegativeInteger, _NON_NEGATIVE_PATTERN, _bounded_int(0, None), numeric=True)
_register(XSD.positiveInteger, _POSITIVE_PATTERN, _bounded_int(1, None), numeric=True)
_register(XSD.negativeInteger, _INTEGER_PATTERN, _bounded_int(None, -1), numeric=True)
_register(XSD.nonPositiveInteger, _INTEGER_PATTERN, _bounded_int(None, 0), numeric=True)
_register(XSD.unsignedInt, _NON_NEGATIVE_PATTERN, _bounded_int(0, 2**32 - 1), numeric=True)
_register(XSD.unsignedLong, _NON_NEGATIVE_PATTERN, _bounded_int(0, 2**64 - 1), numeric=True)
_register(XSD.decimal, _DECIMAL_PATTERN, _parse_decimal, numeric=True)
_register(XSD.double, _DOUBLE_PATTERN, _parse_double, numeric=True)
_register(XSD.float, _DOUBLE_PATTERN, _parse_double, numeric=True)
_register(XSD.date, _DATE_RE, _parse_date)
_register(XSD.time, _TIME_RE, _parse_time)
_register(XSD.dateTime, _DATETIME_RE, _parse_datetime)
_register(XSD.duration, _DURATION_RE, str)
_register(XSD.anyURI, _ANY_PATTERN, str)
_register(XSD.language, _LANG_PATTERN, str)
_register(RDF.langString, _ANY_PATTERN, str)


#: integer-like datatypes that satisfy an ``xsd:integer`` (or broader numeric)
#: constraint when a shape asks for the base type.
_INTEGER_DERIVED = frozenset(
    iri.value
    for iri in (
        XSD.integer, XSD.int, XSD.long, XSD.short, XSD.byte,
        XSD.nonNegativeInteger, XSD.positiveInteger, XSD.negativeInteger,
        XSD.nonPositiveInteger, XSD.unsignedInt, XSD.unsignedLong,
    )
)

_DECIMAL_DERIVED = _INTEGER_DERIVED | {XSD.decimal.value}


def registered_datatypes() -> Dict[str, DatatypeInfo]:
    """Return a copy of the datatype registry keyed by datatype IRI string."""
    return dict(_REGISTRY)


def is_valid_lexical(lexical: str, datatype: IRI) -> bool:
    """True if ``lexical`` belongs to the lexical space of ``datatype``.

    Unknown datatypes are treated permissively (every lexical form is valid),
    mirroring RDF 1.1 where unrecognised datatype IRIs do not make a literal
    ill-typed at the syntax level.
    """
    info = _REGISTRY.get(datatype.value)
    if info is None:
        return True
    if not info.pattern.match(lexical):
        return False
    try:
        info.converter(lexical)
    except (DatatypeError, ValueError, OverflowError):
        return False
    return True


def to_python_value(literal: Literal) -> object:
    """Convert ``literal`` to a native Python value.

    Falls back to the lexical string if the datatype is unknown or the
    lexical form is invalid.
    """
    info = _REGISTRY.get(literal.datatype.value)
    if info is None:
        return literal.lexical
    try:
        return info.converter(literal.lexical)
    except (DatatypeError, ValueError, OverflowError):
        return literal.lexical


def canonical_lexical(literal: Literal) -> str:
    """Return a canonical lexical form for value-based comparison.

    Numeric literals are canonicalised through their Python value so that
    ``"01"^^xsd:integer`` and ``"1"^^xsd:integer`` compare equal in value
    sets; other datatypes keep their lexical form.
    """
    info = _REGISTRY.get(literal.datatype.value)
    if info is None or not info.numeric:
        return literal.lexical
    try:
        value = info.converter(literal.lexical)
    except (DatatypeError, ValueError, OverflowError):
        return literal.lexical
    if isinstance(value, Decimal):
        value = value.normalize()
    return str(value)


def datatype_matches(literal: Literal, requested: IRI) -> bool:
    """Decide whether ``literal`` satisfies a datatype constraint.

    The check combines two conditions:

    * the literal's declared datatype is ``requested`` or a type derived from
      it (e.g. ``xsd:int`` satisfies ``xsd:integer``), and
    * the lexical form is valid for the declared datatype.

    This is the semantics used by the ``Arc`` constraint when a shape writes
    ``foaf:age xsd:integer``.
    """
    declared = literal.datatype.value
    target = requested.value
    if not is_valid_lexical(literal.lexical, literal.datatype):
        return False
    if declared == target:
        return True
    if target == XSD.integer.value and declared in _INTEGER_DERIVED:
        return True
    if target == XSD.decimal.value and declared in _DECIMAL_DERIVED:
        return True
    if target == XSD.string.value and declared == RDF.langString.value:
        return False
    return False


def derived_numeric_types() -> frozenset:
    """Return the set of datatype IRI strings treated as integer-derived."""
    return _INTEGER_DERIVED
