"""Dictionary encoding: interning RDF terms as dense integer ids.

The columnar store (:mod:`repro.rdf.columnar`) keeps every index as sorted
arrays of 64-bit integers instead of nested dictionaries of term objects.
The :class:`TermDictionary` provides the bidirectional mapping that makes
this possible:

* every distinct IRI, blank node and literal is interned once and assigned a
  dense id from a **per-kind id range** (IRIs from 0, blank nodes from
  ``BNODE_BASE``, literals from ``LITERAL_BASE``), so the ``isinstance``
  checks the validation layers perform constantly (is this object a literal?
  can it be a subject?) become integer range tests with no decode,
* encoding is **string-keyed** (``encode_iri("...")`` interns a lexical form
  directly), so the streaming N-Triples ingest path never has to build — or
  retain — term objects for data that only ever lives in the int indexes,
* decoding is lazy and memoised: a term object is materialised at most once
  per id, and only when something actually crosses the id/term boundary
  (report entries, journal exports, neighbourhood scans).  The
  ``decoded_terms`` counter exposes exactly how many ids were materialised,
  which ``--cache-stats`` reports as the store's decode cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .errors import GraphError
from .terms import BNode, IRI, Literal, Term

__all__ = [
    "TermDictionary",
    "IRI_BASE",
    "BNODE_BASE",
    "LITERAL_BASE",
    "DEFAULT_DECODE_MEMO_BOUND",
]

#: default cap on the lazy id → term decode memo.  Streaming ingest of large
#: graphs used to grow the memo without limit (every report, journal export
#: or neighbourhood scan pins its decoded terms forever); the cap turns it
#: into an LRU working set, mirroring the PR 4 intern-table bounds.  Eviction
#: only ever costs a re-decode, never correctness — terms compare by value.
DEFAULT_DECODE_MEMO_BOUND = 1 << 20

#: per-kind id ranges: 2**40 ids per kind keeps every id far inside the
#: signed-64-bit columns of the columnar store while making the kind of any
#: id a pair of integer comparisons.
IRI_BASE = 0
BNODE_BASE = 1 << 40
LITERAL_BASE = 1 << 41
_KIND_CAPACITY = 1 << 40

#: literal intern key: (lexical, datatype IRI string, language tag or None).
_LiteralKey = Tuple[str, str, Optional[str]]


class TermDictionary:
    """Bidirectional term ↔ dense-integer-id mapping with per-kind ranges.

    Encoding interns; :meth:`lookup` answers "is this term known?" without
    growing the dictionary (pattern queries over a columnar graph must not
    intern every term they are asked about).  Ids are stable for the
    lifetime of the dictionary and never reused.
    """

    __slots__ = (
        "_iri_ids", "_iri_values",
        "_bnode_ids", "_bnode_values",
        "_literal_ids", "_literal_values",
        "_terms", "_sort_keys",
        "max_decoded_terms", "_decoded_total", "_decode_evictions",
    )

    def __init__(self, max_decoded_terms: Optional[int] = DEFAULT_DECODE_MEMO_BOUND) -> None:
        if max_decoded_terms is not None and max_decoded_terms < 1:
            raise GraphError(
                "max_decoded_terms must be at least 1 (or None for unbounded)")
        self._iri_ids: Dict[str, int] = {}
        self._iri_values: List[str] = []
        self._bnode_ids: Dict[str, int] = {}
        self._bnode_values: List[str] = []
        self._literal_ids: Dict[_LiteralKey, int] = {}
        self._literal_values: List[_LiteralKey] = []
        #: flat id → term memo — one dict for all three kinds, so the hot
        #: decode path (and the scan loops that inline ``_terms.get``) is a
        #: single hash probe with no range dispatch.  Bounded: dict order is
        #: the LRU order (:meth:`decode` refreshes recency on hit; the scan
        #: loops that inline ``_terms.get`` skip the refresh, making the
        #: policy approximate but the hot probe branch-free).
        self._terms: Dict[int, Union[IRI, BNode, Literal]] = {}
        #: id → term sort key, memoised (scan ordering sorts id pairs by
        #: these instead of building term sort keys per scan).
        self._sort_keys: Dict[int, tuple] = {}
        self.max_decoded_terms = max_decoded_terms
        self._decoded_total = 0
        self._decode_evictions = 0

    @property
    def decoded_terms(self) -> int:
        """Number of term objects currently memoised (the decode working set)."""
        return len(self._terms)

    @property
    def decode_evictions(self) -> int:
        """Number of memoised terms evicted by the ``max_decoded_terms`` cap."""
        return self._decode_evictions

    # ------------------------------------------------------------------ encode
    def encode_iri(self, value: str) -> int:
        """Intern an IRI by lexical value and return its id."""
        tid = self._iri_ids.get(value)
        if tid is None:
            index = len(self._iri_values)
            if index >= _KIND_CAPACITY:  # pragma: no cover - 2**40 IRIs
                raise GraphError("term dictionary IRI range exhausted")
            tid = IRI_BASE + index
            self._iri_ids[value] = tid
            self._iri_values.append(value)
        return tid

    def encode_bnode(self, node_id: str) -> int:
        """Intern a blank node by local identifier and return its id."""
        tid = self._bnode_ids.get(node_id)
        if tid is None:
            index = len(self._bnode_values)
            if index >= _KIND_CAPACITY:  # pragma: no cover
                raise GraphError("term dictionary blank-node range exhausted")
            tid = BNODE_BASE + index
            self._bnode_ids[node_id] = tid
            self._bnode_values.append(node_id)
        return tid

    def encode_literal(self, lexical: str, datatype: str,
                       lang: Optional[str] = None) -> int:
        """Intern a literal by ``(lexical, datatype IRI, lang)`` and return its id."""
        key = (lexical, datatype, lang)
        tid = self._literal_ids.get(key)
        if tid is None:
            index = len(self._literal_values)
            if index >= _KIND_CAPACITY:  # pragma: no cover
                raise GraphError("term dictionary literal range exhausted")
            tid = LITERAL_BASE + index
            self._literal_ids[key] = tid
            self._literal_values.append(key)
        return tid

    def encode(self, term: Term) -> int:
        """Intern any term object and return its id."""
        if isinstance(term, IRI):
            return self.encode_iri(term.value)
        if isinstance(term, BNode):
            return self.encode_bnode(term.id)
        if isinstance(term, Literal):
            return self.encode_literal(term.lexical, term.datatype.value, term.lang)
        raise GraphError(f"cannot encode {type(term).__name__} into a term dictionary")

    def lookup(self, term: Term) -> Optional[int]:
        """Return the id of ``term`` or ``None`` — never interns.

        Pattern queries use this: asking a graph about a term it has never
        seen must not grow the dictionary.
        """
        if isinstance(term, IRI):
            return self._iri_ids.get(term.value)
        if isinstance(term, BNode):
            return self._bnode_ids.get(term.id)
        if isinstance(term, Literal):
            return self._literal_ids.get((term.lexical, term.datatype.value, term.lang))
        return None

    # ------------------------------------------------------------------ decode
    def decode(self, tid: int) -> Union[IRI, BNode, Literal]:
        """Materialise the term for ``tid`` (memoised, evicted past the cap)."""
        terms = self._terms
        term = terms.get(tid)
        if term is not None:
            if self.max_decoded_terms is not None:
                # refresh recency: dict order is the LRU order when bounded.
                del terms[tid]
                terms[tid] = term
            return term
        if tid >= LITERAL_BASE:
            lexical, datatype, lang = self._literal_values[tid - LITERAL_BASE]
            if lang is not None:
                term = Literal(lexical, lang=lang)
            else:
                term = Literal(lexical, datatype=IRI(datatype))
        elif tid >= BNODE_BASE:
            term = BNode(self._bnode_values[tid - BNODE_BASE])
        else:
            term = IRI(self._iri_values[tid])
        terms[tid] = term
        self._decoded_total += 1
        if self.max_decoded_terms is not None and len(terms) > self.max_decoded_terms:
            del terms[next(iter(terms))]
            self._decode_evictions += 1
        return term

    # ------------------------------------------------------------- id algebra
    @staticmethod
    def is_iri_id(tid: int) -> bool:
        """Range test replacing ``isinstance(term, IRI)``."""
        return 0 <= tid < BNODE_BASE

    @staticmethod
    def is_bnode_id(tid: int) -> bool:
        """Range test replacing ``isinstance(term, BNode)``."""
        return BNODE_BASE <= tid < LITERAL_BASE

    @staticmethod
    def is_literal_id(tid: int) -> bool:
        """Range test replacing ``isinstance(term, Literal)``."""
        return tid >= LITERAL_BASE

    @staticmethod
    def is_subject_id(tid: int) -> bool:
        """Range test replacing ``is_subject_term`` (``Vs = I ∪ B``)."""
        return tid < LITERAL_BASE

    def sort_key(self, tid: int) -> tuple:
        """The term's :meth:`~repro.rdf.terms.Term.sort_key`, without decoding.

        Memoised per id: ordering a neighbourhood scan sorts id pairs by
        these keys, so the term objects themselves are only materialised for
        the triples the scan actually returns.
        """
        key = self._sort_keys.get(tid)
        if key is None:
            if tid >= LITERAL_BASE:
                lexical, datatype, lang = self._literal_values[tid - LITERAL_BASE]
                key = (2, lexical, datatype, lang or "")
            elif tid >= BNODE_BASE:
                key = (1, self._bnode_values[tid - BNODE_BASE])
            else:
                key = (0, self._iri_values[tid])
            self._sort_keys[tid] = key
        return key

    # ------------------------------------------------------------------ stats
    def __len__(self) -> int:
        return (len(self._iri_values) + len(self._bnode_values)
                + len(self._literal_values))

    def stats(self) -> Dict[str, int]:
        """Summary counters for ``--cache-stats`` and the benchmarks."""
        return {
            "terms": len(self),
            "iris": len(self._iri_values),
            "bnodes": len(self._bnode_values),
            "literals": len(self._literal_values),
            "decoded_terms": self.decoded_terms,
            "decoded_total": self._decoded_total,
            "decode_evictions": self._decode_evictions,
            "max_decoded_terms": (self.max_decoded_terms
                                  if self.max_decoded_terms is not None else 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TermDictionary(<{len(self._iri_values)} IRIs, "
                f"{len(self._bnode_values)} bnodes, "
                f"{len(self._literal_values)} literals>)")
