"""Exception hierarchy for the RDF substrate.

All exceptions raised by :mod:`repro.rdf` derive from :class:`RDFError` so
that callers can catch substrate failures with a single ``except`` clause
while still distinguishing parse errors from model errors.
"""

from __future__ import annotations

__all__ = [
    "RDFError",
    "NamespaceError",
    "DatatypeError",
    "ParseError",
    "GraphError",
    "StaleSnapshotError",
]


class RDFError(Exception):
    """Base class for every error raised by the RDF substrate."""


class NamespaceError(RDFError):
    """Raised for unknown prefixes or invalid namespace bindings."""


class DatatypeError(RDFError):
    """Raised when a literal's lexical form is invalid for its datatype."""


class GraphError(RDFError):
    """Raised for invalid graph-level operations."""


class StaleSnapshotError(GraphError):
    """Raised when a neighbourhood snapshot no longer matches its graph.

    A :class:`~repro.rdf.graph.NeighbourhoodSnapshot` captures the per-subject
    neighbourhoods at one graph generation; using it after the graph has
    mutated would silently serve old neighbourhoods (e.g. to parallel
    validation workers).  ``ensure_fresh`` raises this instead.
    """


class ParseError(RDFError):
    """Raised by the N-Triples, Turtle and ShExC parsers.

    Carries the position of the offending input so that error messages point
    at the exact line and column.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
