"""In-memory RDF graph with triple indexes and the graph algebra of the paper.

Section 2 of the paper defines the operations the matchers rely on:

* ``t ∘ ts`` — adding a triple to a graph,
* ``g1 ⊕ g2`` — union of two graphs (preserving blank-node identity),
* ``Σgₙ`` — the *shape of a node*: all triples whose subject is ``n``,
* the *decomposition* of a graph — every pair ``(g1, g2)`` with
  ``g1 ⊕ g2 = g`` (Example 3), which the backtracking matcher enumerates and
  which is the source of its exponential behaviour.

The :class:`Graph` class maintains three hash indexes (SPO, POS, OSP) so that
triple-pattern lookups used by the SPARQL engine and by neighbourhood
extraction stay close to O(result size).
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from contextlib import contextmanager
from typing import (AbstractSet, Dict, FrozenSet, Iterable, Iterator, List,
                    Mapping, Optional, Set, Tuple)

from .errors import GraphError, StaleSnapshotError
from .namespaces import NamespaceManager
from .terms import IRI, ObjectTerm, SubjectTerm, Triple

__all__ = [
    "ChangeJournal",
    "Graph",
    "NeighbourhoodView",
    "NeighbourhoodSnapshot",
    "OrderedTriples",
    "TripleStore",
    "decompositions",
    "decomposition_count",
]

#: default bound on the number of subjects a change journal tracks before it
#: overflows (consumers then fall back to a full rebuild).  Generous enough
#: for interactive editing sessions, small enough that the journal never
#: rivals the triple indexes in memory.
DEFAULT_JOURNAL_BOUND = 1 << 17


class ChangeJournal:
    """A bounded per-subject dirty log with generation epochs.

    Every effective graph mutation dirties the triple's subject; the journal
    records, per subject, the *generation* of its most recent mutation.  A
    consumer that finished deriving state at generation ``g`` (a validation
    run, say) can later ask :meth:`changes_since` ``(g)`` for exactly the
    subjects whose neighbourhoods may differ from what it saw.

    The journal is **bounded**: once more than ``max_entries`` distinct
    subjects are tracked it overflows — the log is dropped and a floor is
    raised so that questions about pre-overflow generations honestly answer
    ``None`` ("I don't know, rebuild from scratch") instead of under-reporting
    changes.  Batches (:meth:`Graph.begin_batch` / :meth:`Graph.end_batch`)
    coalesce their mutations into one journal record per touched subject —
    not one per triple — so bulk loads do not pay per-triple journalling
    (the generation itself still counts every effective mutation).
    """

    __slots__ = ("max_entries", "_epochs", "_floor", "records", "overflows")

    def __init__(self, max_entries: int = DEFAULT_JOURNAL_BOUND):
        if max_entries < 1:
            raise ValueError("a change journal needs room for at least one entry")
        self.max_entries = max_entries
        #: subject → generation of its latest mutation.
        self._epochs: Dict[SubjectTerm, int] = {}
        #: generations ``< _floor`` are unanswerable (pre-overflow history).
        self._floor = 0
        #: total mutations recorded (batch = one record per touched subject).
        self.records = 0
        #: times the bound was hit and the log was dropped.
        self.overflows = 0

    def record(self, subject: SubjectTerm, generation: int) -> None:
        """Note that ``subject`` was mutated at ``generation``."""
        self.records += 1
        self._epochs[subject] = generation
        if len(self._epochs) > self.max_entries:
            self.truncate(generation)
            self.overflows += 1

    def truncate(self, generation: int) -> None:
        """Drop the log; only generations ``>= generation`` stay answerable."""
        self._epochs.clear()
        self._floor = generation

    def changes_since(self, generation: int) -> Optional[FrozenSet[SubjectTerm]]:
        """Subjects mutated after ``generation``, or ``None`` if unknowable.

        ``None`` means the journal overflowed (or was truncated) since
        ``generation``: the caller must treat *everything* as dirty.
        """
        if generation < self._floor:
            return None
        return frozenset(
            subject for subject, epoch in self._epochs.items() if epoch > generation
        )

    def stats(self) -> Dict[str, int]:
        """Summary counters for ``--cache-stats`` and benchmarks."""
        return {
            "tracked_subjects": len(self._epochs),
            "max_entries": self.max_entries,
            "records": self.records,
            "overflows": self.overflows,
            "floor": self._floor,
        }

    def __repr__(self) -> str:
        return (f"ChangeJournal(<{len(self._epochs)} subjects, "
                f"floor={self._floor}, bound={self.max_entries}>)")


class OrderedTriples(tuple):
    """A tuple of triples already sorted by :meth:`Triple.sort_key`.

    Produced by :meth:`Graph.neighbourhood_ordered`; matching engines treat
    it as pre-ordered and skip their own sort.  A plain tuple or list makes
    no ordering promise and is sorted by the engine as usual.
    """

    __slots__ = ()


class TripleStore:
    """Shared behaviour of the triple stores — the *store contract*.

    :class:`Graph` (hash indexes of term objects) and
    :class:`~repro.rdf.columnar.ColumnarGraph` (dictionary-encoded sorted
    int-array segments) both derive from this class.  A concrete store
    implements the primitives — ``add``, ``discard``, ``clear``,
    ``triples``, ``nodes``, ``degree``, ``neighbourhood`` /
    ``neighbourhood_ordered`` and the set protocol (``__len__`` /
    ``__iter__`` / ``__contains__``) — and inherits everything the
    validation layers actually call: the batch/journal machinery, pattern
    query helpers, snapshots and the graph algebra of the paper.  Because
    the derived behaviour is shared code over identical primitives,
    validation verdicts are store-independent by construction.

    The mutation bookkeeping lives here too: stores invalidate through
    :meth:`_invalidate_key`, which pops the per-subject neighbourhood
    caches, bumps the generation and journals the key.  The *key type* is
    the store's choice — term objects for the dict store, dense subject ids
    for the columnar store — and :meth:`_decode_journal_keys` translates
    journal answers back to terms at the :meth:`changes_since` boundary.
    """

    #: short name reported by :meth:`store_stats` and the CLI ``--store`` flag.
    store_name = "abstract"

    def __init__(self, namespaces: Optional[NamespaceManager] = None,
                 journal_max_entries: int = DEFAULT_JOURNAL_BOUND):
        #: per-subject neighbourhood caches (``Σgₙ`` as a frozenset and as a
        #: predicate-sorted tuple); invalidated per subject on mutation.  The
        #: engines ask for the same neighbourhood once per ``(node, label)``
        #: pair, so bulk validation hits these constantly.  Keyed by whatever
        #: the concrete store invalidates with (terms or ids).
        self._neigh_sets: Dict[object, FrozenSet[Triple]] = {}
        self._neigh_ordered: Dict[object, Tuple[Triple, ...]] = {}
        #: mutation counter; bumps on every effective add/discard/clear so
        #: derived state (e.g. a shared ValidationContext) can notice change.
        self._generation = 0
        #: bounded per-subject dirty log (see :class:`ChangeJournal`).
        self._journal = ChangeJournal(max_entries=journal_max_entries)
        #: batch nesting depth; > 0 coalesces invalidations (see ``batch``).
        self._batch_depth = 0
        #: journal keys dirtied inside the current outermost batch.
        self._batch_dirty: Set[object] = set()
        self.namespaces = namespaces if namespaces is not None else NamespaceManager(
            bind_defaults=True
        )

    # ------------------------------------------------------- store primitives
    def add(self, triple: Triple) -> "TripleStore":  # pragma: no cover
        raise NotImplementedError

    def discard(self, triple: Triple) -> "TripleStore":  # pragma: no cover
        raise NotImplementedError

    def triples(self, subject: Optional[SubjectTerm] = None,
                predicate: Optional[IRI] = None,
                obj: Optional[ObjectTerm] = None
                ) -> Iterator[Triple]:  # pragma: no cover
        raise NotImplementedError

    # --------------------------------------------------- mutation bookkeeping
    def _invalidate_key(self, key: object) -> None:
        # the cache pop is unconditional so reads *inside* a batch still see
        # current triples; only the generation bump and the journal record
        # are coalesced to the end of the batch.
        self._neigh_sets.pop(key, None)
        self._neigh_ordered.pop(key, None)
        # the generation counts every effective mutation, batch or not: an
        # integer bump is nearly free, and anything derived from the graph
        # (snapshots, shared contexts) stays stale-detectable even mid-batch.
        self._generation += 1
        if self._batch_depth:
            self._batch_dirty.add(key)
        else:
            self._journal.record(key, self._generation)

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (changes whenever the triples change)."""
        return self._generation

    # ------------------------------------------------------------ change journal
    @property
    def journal(self) -> ChangeJournal:
        """The store's bounded :class:`ChangeJournal`."""
        return self._journal

    def _decode_journal_keys(self, keys: FrozenSet) -> FrozenSet[SubjectTerm]:
        """Translate journal keys back to subject terms (identity by default)."""
        return keys

    def changes_since(self, generation: int) -> Optional[FrozenSet[SubjectTerm]]:
        """Subjects whose neighbourhoods may have changed after ``generation``.

        Returns ``None`` when the journal cannot answer (it overflowed or was
        truncated since ``generation``, or ``generation`` predates it): the
        caller must assume everything changed.  Asking from inside a batch is
        an error — the batch's mutations have not been journalled yet, so any
        answer would under-report.
        """
        if self._batch_depth:
            raise GraphError("changes_since inside an open batch would "
                             "under-report; close the batch first")
        keys = self._journal.changes_since(generation)
        if keys is None:
            return None
        return self._decode_journal_keys(keys)

    def begin_batch(self) -> None:
        """Enter batch mode: coalesce journal records until ``end_batch``.

        Nestable; only the outermost pair takes effect.  While a batch is
        open, triple reads see every mutation immediately (per-subject
        neighbourhood caches are still invalidated eagerly, and the
        generation still counts every effective mutation — snapshots and
        derived state stay stale-detectable mid-batch), but the journal
        receives one record per touched *subject* instead of one per triple,
        all stamped with the batch's final generation.  A batch that changes
        nothing (empty, or a fully idempotent replay) leaves the generation
        untouched, so derived state stays valid.
        """
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Leave batch mode, journalling the coalesced per-subject changes."""
        if self._batch_depth == 0:
            raise GraphError("end_batch without a matching begin_batch")
        self._batch_depth -= 1
        if self._batch_depth == 0 and self._batch_dirty:
            # stamping with the final generation over-approximates soundly:
            # a consumer that derived state mid-batch sees every batch
            # subject as changed, including those mutated before its read.
            for key in self._batch_dirty:
                self._journal.record(key, self._generation)
            self._batch_dirty.clear()

    @contextmanager
    def batch(self):
        """Context manager around ``begin_batch`` / ``end_batch``::

            with graph.batch():
                for triple in bulk:
                    graph.add(triple)
        """
        self.begin_batch()
        try:
            yield self
        finally:
            self.end_batch()

    # ------------------------------------------------------- bulk modification
    def add_triple(self, subject: SubjectTerm, predicate: IRI,
                   obj: ObjectTerm) -> "TripleStore":
        """Convenience wrapper building the :class:`Triple` for the caller."""
        return self.add(Triple(subject, predicate, obj))

    def update(self, triples: Iterable[Triple]) -> "TripleStore":
        """Add every triple from ``triples``.  Returns ``self``."""
        return self.add_all(triples)

    def add_all(self, triples: Iterable[Triple]) -> "TripleStore":
        """Add every triple inside one batch (one journal record per touched
        subject).  Returns ``self``."""
        # materialise first: the natural call sites hand in live generators
        # over this very graph (``graph.add_all(other.triples(...))`` where
        # ``other is graph``), which would otherwise mutate the indexes
        # they are iterating.
        with self.batch():
            for triple in list(triples):
                self.add(triple)
        return self

    def remove_all(self, triples: Iterable[Triple]) -> "TripleStore":
        """Discard every triple inside one batch.  Returns ``self``.

        Absent triples are ignored (``discard`` semantics), so a removal
        batch can be replayed idempotently.  The iterable is materialised
        first, so ``graph.remove_all(graph.triples(subject=s))`` — deleting
        a subject through a live query over the same graph — is safe.
        """
        with self.batch():
            for triple in list(triples):
                self.discard(triple)
        return self

    def remove(self, triple: Triple) -> "TripleStore":
        """Remove ``triple``; raise :class:`GraphError` if absent."""
        if triple not in self:
            raise GraphError(f"triple not in graph: {triple}")
        return self.discard(triple)

    # ------------------------------------------------------------ set protocol
    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other) -> bool:
        if isinstance(other, TripleStore):
            return self.to_set() == other.to_set()
        if isinstance(other, (set, frozenset)):
            return self.to_set() == other
        return NotImplemented

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError(f"{type(self).__name__} is mutable and unhashable; "
                        f"use frozenset(graph)")

    # ------------------------------------------------------------ query helpers
    def subjects(self, predicate: Optional[IRI] = None,
                 obj: Optional[ObjectTerm] = None) -> Iterator[SubjectTerm]:
        """Iterate over distinct subjects of triples matching the pattern."""
        seen: Set[SubjectTerm] = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(self, subject: Optional[SubjectTerm] = None,
                   obj: Optional[ObjectTerm] = None) -> Iterator[IRI]:
        """Iterate over distinct predicates of triples matching the pattern."""
        seen: Set[IRI] = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(self, subject: Optional[SubjectTerm] = None,
                predicate: Optional[IRI] = None) -> Iterator[ObjectTerm]:
        """Iterate over distinct objects of triples matching the pattern."""
        seen: Set[ObjectTerm] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(self, subject: SubjectTerm, predicate: IRI) -> Optional[ObjectTerm]:
        """Return one object for ``(subject, predicate)`` or ``None``."""
        for obj in self.objects(subject, predicate):
            return obj
        return None

    def all_nodes(self) -> Iterator[ObjectTerm]:
        """Iterate over every distinct node (subjects and objects)."""
        seen: Set[ObjectTerm] = set()
        for triple in self:
            for term in (triple.subject, triple.object):
                if term not in seen:
                    seen.add(term)
                    yield term

    # ------------------------------------------------------ paper-level algebra
    def neighbourhood_any(self, node: SubjectTerm) -> Iterable[Triple]:
        """``Σgₙ`` in whatever representation is cheapest to produce.

        For the dict store that is the unsorted frozenset (no predicate
        sort); the columnar store and :class:`NeighbourhoodSnapshot` return
        their ordered tuples instead.  Order-insensitive consumers — the
        compiled-schema prefilter above all — should use this accessor.
        """
        return self.neighbourhood(node)

    def signature_pairs(self, node: SubjectTerm) -> Optional[tuple]:
        """Id-native raw material for a neighbourhood signature, or ``None``.

        The columnar store overrides this with ``(subject_id, sorted
        (predicate_id, object_id) pairs)`` straight from its int indexes;
        term-object stores answer ``None`` and signature construction falls
        back to :meth:`neighbourhood_any` term pairs.  Either path yields the
        same canonical signature *classes* — only the memo keys differ.
        """
        return None

    def neighbourhood_view(self, node: SubjectTerm) -> "NeighbourhoodView":
        """Return a :class:`NeighbourhoodView` over ``Σgₙ``."""
        return NeighbourhoodView(node, self.neighbourhood(node))

    def snapshot(self, nodes: Optional[Iterable[SubjectTerm]] = None
                 ) -> "NeighbourhoodSnapshot":
        """Return a picklable :class:`NeighbourhoodSnapshot` of ``Σgₙ`` tables.

        ``nodes`` defaults to every subject node.  The snapshot captures the
        predicate-sorted neighbourhood of each requested node (empty tuples
        for nodes without outgoing triples are stored explicitly), so worker
        processes can validate against it without holding the full graph.
        """
        if nodes is None:
            node_list: List[SubjectTerm] = list(self.nodes())
        else:
            node_list = list(nodes)
        return NeighbourhoodSnapshot(
            {node: self.neighbourhood_ordered(node) for node in node_list},
            generation=self._generation,
        )

    def union(self, other: "TripleStore") -> "TripleStore":
        """Return a new graph ``self ⊕ other`` (blank-node identity preserved).

        The result uses the receiver's store kind.
        """
        result = type(self)(namespaces=self.namespaces.copy())
        result.update(self)
        result.update(other)
        for prefix, base in other.namespaces.prefixes():
            if prefix not in result.namespaces:
                result.namespaces.bind(prefix, base)
        return result

    def __or__(self, other: "TripleStore") -> "TripleStore":
        return self.union(other)

    def __add__(self, other: "TripleStore") -> "TripleStore":
        return self.union(other)

    def copy(self) -> "TripleStore":
        """Return an independent copy of the graph (same store kind)."""
        return type(self)(self, namespaces=self.namespaces.copy())

    def to_set(self) -> FrozenSet[Triple]:
        """Return the triples as an immutable frozenset."""
        return frozenset(self)

    def sorted_triples(self) -> List[Triple]:
        """Return triples in a deterministic (term-ordered) list."""
        return sorted(self, key=Triple.sort_key)

    # ------------------------------------------------------------ observability
    def store_stats(self) -> Dict[str, object]:
        """Store-level counters surfaced by ``--cache-stats``."""
        return {
            "store": self.store_name,
            "triples": len(self),
            "cached_neighbourhoods":
                len(self._neigh_sets) + len(self._neigh_ordered),
        }

    # ------------------------------------------------------------ serialisation
    def serialize(self, format: str = "turtle") -> str:
        """Serialise the graph (formats: ``turtle``, ``ntriples``)."""
        if format in ("turtle", "ttl"):
            from .turtle import serialize_turtle

            return serialize_turtle(self)
        if format in ("ntriples", "nt"):
            from .ntriples import serialize_ntriples

            return serialize_ntriples(self)
        raise GraphError(f"unknown serialisation format: {format!r}")


class Graph(TripleStore):
    """A set of RDF triples with pattern-matching indexes.

    The class behaves like a set of :class:`~repro.rdf.terms.Triple` (supports
    ``in``, ``len``, iteration) and adds RDF-specific operations: triple
    pattern queries, namespace management, node neighbourhoods and union.
    """

    store_name = "dict"

    def __init__(self, triples: Optional[Iterable[Triple]] = None,
                 namespaces: Optional[NamespaceManager] = None,
                 journal_max_entries: int = DEFAULT_JOURNAL_BOUND):
        super().__init__(namespaces=namespaces,
                         journal_max_entries=journal_max_entries)
        self._triples: Set[Triple] = set()
        self._spo: Dict[SubjectTerm, Dict[IRI, Set[ObjectTerm]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: Dict[IRI, Dict[ObjectTerm, Set[SubjectTerm]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: Dict[ObjectTerm, Dict[SubjectTerm, Set[IRI]]] = defaultdict(
            lambda: defaultdict(set)
        )
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------ set API
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: object) -> bool:
        return triple in self._triples

    def __bool__(self) -> bool:
        return bool(self._triples)

    def __eq__(self, other) -> bool:
        if isinstance(other, Graph):
            return self._triples == other._triples
        if isinstance(other, (set, frozenset)):
            return self._triples == other
        return NotImplemented

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("Graph is mutable and unhashable; use frozenset(graph)")

    def __repr__(self) -> str:
        return f"Graph(<{len(self._triples)} triples>)"

    # ------------------------------------------------------------- modification
    def add(self, triple: Triple) -> "Graph":
        """Add a triple (the ``t ∘ ts`` operation).  Returns ``self``."""
        if not isinstance(triple, Triple):
            raise GraphError(f"can only add Triple instances, got {type(triple).__name__}")
        if triple in self._triples:
            return self
        self._triples.add(triple)
        s, p, o = triple.subject, triple.predicate, triple.object
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._invalidate_neighbourhood(s)
        return self

    def discard(self, triple: Triple) -> "Graph":
        """Remove ``triple`` if present.  Returns ``self``."""
        if triple not in self._triples:
            return self
        self._triples.discard(triple)
        s, p, o = triple.subject, triple.predicate, triple.object
        self._spo[s][p].discard(o)
        if not self._spo[s][p]:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._invalidate_neighbourhood(s)
        return self

    def clear(self) -> None:
        """Remove every triple."""
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._neigh_sets.clear()
        self._neigh_ordered.clear()
        self._generation += 1
        # every subject changed: no bounded log can say *which*, so the
        # journal honestly forgets and answers None for earlier generations.
        self._journal.truncate(self._generation)
        self._batch_dirty.clear()

    def _invalidate_neighbourhood(self, subject: SubjectTerm) -> None:
        self._invalidate_key(subject)

    # ---------------------------------------------------------------- querying
    def triples(
        self,
        subject: Optional[SubjectTerm] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[ObjectTerm] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching a pattern; ``None`` is a wildcard."""
        if subject is not None and predicate is not None and obj is not None:
            candidate = Triple(subject, predicate, obj)
            if candidate in self._triples:
                yield candidate
            return
        if subject is not None:
            by_pred = self._spo.get(subject)
            if not by_pred:
                return
            if predicate is not None:
                for o in by_pred.get(predicate, ()):
                    if obj is None or obj == o:
                        yield Triple(subject, predicate, o)
            else:
                for p, objects in by_pred.items():
                    for o in objects:
                        if obj is None or obj == o:
                            yield Triple(subject, p, o)
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate)
            if not by_obj:
                return
            if obj is not None:
                for s in by_obj.get(obj, ()):
                    yield Triple(s, predicate, obj)
            else:
                for o, subjects in by_obj.items():
                    for s in subjects:
                        yield Triple(s, predicate, o)
            return
        if obj is not None:
            by_subj = self._osp.get(obj)
            if not by_subj:
                return
            for s, predicates in by_subj.items():
                for p in predicates:
                    yield Triple(s, p, obj)
            return
        yield from self._triples

    def nodes(self) -> Iterator[SubjectTerm]:
        """Iterate over every distinct subject node in the graph."""
        return iter(list(self._spo.keys()))

    def degree(self, node: SubjectTerm) -> int:
        """Return the out-degree of ``node`` (size of its neighbourhood)."""
        by_pred = self._spo.get(node)
        if not by_pred:
            return 0
        return sum(len(objects) for objects in by_pred.values())

    def predicate_counts(self, node: SubjectTerm) -> Dict[IRI, int]:
        """Out-edge multiplicities of ``node``, grouped by predicate.

        Computed straight from the SPO index without materialising any
        :class:`Triple` — the compiled-schema prefilter decides most nodes
        from these counts alone, so building neighbourhood triples for them
        is wasted work.
        """
        by_pred = self._spo.get(node)
        if not by_pred:
            return {}
        return {p: len(objects) for p, objects in by_pred.items()}

    def predicate_objects(self, node: SubjectTerm) -> Mapping[IRI, AbstractSet[ObjectTerm]]:
        """Out-edge objects of ``node``, grouped by predicate, zero-copy.

        Returns the store's live SPO bucket — callers MUST treat it as
        read-only and must not hold it across mutations.  Neighbourhood
        signatures are built from this view: grouping by predicate lets the
        builder resolve each predicate's candidate atoms once and skip
        :class:`Triple` construction entirely, which matters when thousands
        of subjects are probed and most never reach the engine.
        """
        by_pred = self._spo.get(node)
        return by_pred if by_pred is not None else {}

    # ------------------------------------------------------ paper-level algebra
    def neighbourhood(self, node: SubjectTerm) -> FrozenSet[Triple]:
        """Return ``Σgₙ``: the set of triples whose subject is ``node``.

        The frozenset is cached per subject (and invalidated on mutation), so
        validating the same node against many shapes rebuilds nothing.
        """
        cached = self._neigh_sets.get(node)
        if cached is not None:
            return cached
        by_pred = self._spo.get(node)
        if not by_pred:
            result: FrozenSet[Triple] = frozenset()
        else:
            result = frozenset(
                Triple(node, p, o) for p, objects in by_pred.items() for o in objects
            )
        self._neigh_sets[node] = result
        return result

    def neighbourhood_ordered(self, node: SubjectTerm) -> "OrderedTriples":
        """Return ``Σgₙ`` as a predicate-sorted :class:`OrderedTriples`.

        This is the order the derivative engine consumes triples in;
        computing (and sorting) it once per node instead of once per
        ``(node, label)`` pair removes a per-validation O(d log d) cost.
        The result is cached per subject.
        """
        cached = self._neigh_ordered.get(node)
        if cached is not None:
            return cached
        result = OrderedTriples(sorted(self.neighbourhood(node), key=Triple.sort_key))
        self._neigh_ordered[node] = result
        return result

    def to_set(self) -> FrozenSet[Triple]:
        """Return the triples as an immutable frozenset."""
        return frozenset(self._triples)

    # ------------------------------------------------------------ serialisation
    @classmethod
    def parse(cls, data: str, format: str = "turtle",
              base: Optional[str] = None) -> "Graph":
        """Parse ``data`` into a new graph (formats: ``turtle``, ``ntriples``)."""
        if format in ("turtle", "ttl"):
            from .turtle import parse_turtle

            return parse_turtle(data, base=base)
        if format in ("ntriples", "nt"):
            from .ntriples import parse_ntriples

            return parse_ntriples(data)
        raise GraphError(f"unknown parse format: {format!r}")


class NeighbourhoodSnapshot:
    """A picklable, read-only table of per-subject neighbourhoods.

    Exposes the slice of the :class:`Graph` API a validation context needs —
    :meth:`neighbourhood`, :meth:`neighbourhood_ordered` and ``generation`` —
    so it can stand in for the full graph inside worker processes during
    parallel bulk validation.  Lookups outside the captured node set raise
    :class:`~repro.rdf.errors.GraphError` instead of silently returning an
    empty neighbourhood: a miss means the scheduler under-approximated the
    nodes a worker could touch, which must surface as an error rather than
    as a wrong verdict.
    """

    __slots__ = ("_ordered", "_sets", "_packed", "generation")

    def __init__(self, ordered: Dict[SubjectTerm, "OrderedTriples"],
                 generation: int = 0):
        self._ordered = dict(ordered)
        self._sets: Dict[SubjectTerm, FrozenSet[Triple]] = {}
        self._packed: Optional[tuple] = None
        self.generation = generation

    def _pack(self) -> tuple:
        """Columnar wire form: each distinct term once, plus raw id buffers.

        Neighbourhood tables are extremely redundant — every triple repeats
        its subject, predicates come from a small vocabulary, and objects
        are shared across nodes.  Pickling the triple objects pays a
        per-object frame for all of that redundancy on every worker spawn.
        The packed form assigns snapshot-local dense ids to the distinct
        terms and ships three flat ``array('q')`` buffers (node ids, table
        offsets, interleaved predicate/object id pairs): 16 bytes per triple
        plus each term exactly once, for both the dict and columnar stores.
        """
        if self._packed is None:
            local: Dict[object, int] = {}
            node_ids = array("q")
            offsets = array("q", [0])
            pairs = array("q")
            for node, ordered in self._ordered.items():
                nid = local.get(node)
                if nid is None:
                    nid = local[node] = len(local)
                node_ids.append(nid)
                for triple in ordered:
                    for term in (triple.predicate, triple.object):
                        tid = local.get(term)
                        if tid is None:
                            tid = local[term] = len(local)
                        pairs.append(tid)
                offsets.append(len(pairs))
            self._packed = (tuple(local), node_ids, offsets, pairs)
        return self._packed

    def __reduce__(self):
        # the lazily-built frozenset cache is rebuilt on demand in the target
        # process; only the packed buffers travel (and are kept, so a
        # re-pickle of the same snapshot is free).
        return (_unpack_snapshot, (*self._pack(), self.generation))

    def ensure_fresh(self, graph: "Graph") -> "NeighbourhoodSnapshot":
        """Raise :class:`StaleSnapshotError` unless ``graph`` is unchanged.

        The check compares the generation stamped at capture time with the
        graph's current one, so a snapshot reused across mutations fails
        loudly instead of serving old neighbourhoods to parallel workers.
        Returns ``self`` so call sites can chain.
        """
        current = getattr(graph, "generation", None)
        if current != self.generation:
            raise StaleSnapshotError(
                f"neighbourhood snapshot captured at generation "
                f"{self.generation} but the graph is at generation {current}; "
                f"re-snapshot after mutating"
            )
        return self

    def __len__(self) -> int:
        return len(self._ordered)

    def __contains__(self, node: object) -> bool:
        return node in self._ordered

    def nodes(self) -> Iterator[SubjectTerm]:
        """Iterate over the captured nodes."""
        return iter(self._ordered.keys())

    def neighbourhood_ordered(self, node: SubjectTerm) -> "OrderedTriples":
        """Return the captured predicate-sorted ``Σgₙ`` for ``node``."""
        try:
            return self._ordered[node]
        except KeyError:
            raise GraphError(
                f"node {node.n3()} is outside this neighbourhood snapshot"
            ) from None

    def neighbourhood(self, node: SubjectTerm) -> FrozenSet[Triple]:
        """Return the captured ``Σgₙ`` for ``node`` as a frozenset."""
        cached = self._sets.get(node)
        if cached is None:
            cached = frozenset(self.neighbourhood_ordered(node))
            self._sets[node] = cached
        return cached

    def neighbourhood_any(self, node: SubjectTerm) -> "OrderedTriples":
        """``Σgₙ`` in the cheapest representation: the captured tuple."""
        return self.neighbourhood_ordered(node)

    def __repr__(self) -> str:
        return f"NeighbourhoodSnapshot(<{len(self._ordered)} nodes>)"


def _unpack_snapshot(terms: tuple, node_ids: "array", offsets: "array",
                     pairs: "array", generation: int) -> NeighbourhoodSnapshot:
    """Rebuild a :class:`NeighbourhoodSnapshot` from its packed wire form.

    Terms are materialised exactly once per distinct term in the receiving
    process; every rebuilt :class:`Triple` shares them.
    """
    ordered: Dict[SubjectTerm, OrderedTriples] = {}
    for index, nid in enumerate(node_ids):
        node = terms[nid]
        start, end = offsets[index], offsets[index + 1]
        ordered[node] = OrderedTriples(
            Triple(node, terms[pairs[i]], terms[pairs[i + 1]])
            for i in range(start, end, 2)
        )
    snapshot = NeighbourhoodSnapshot(ordered, generation=generation)
    snapshot._packed = (terms, node_ids, offsets, pairs)
    return snapshot


class NeighbourhoodView:
    """The neighbourhood ``Σgₙ`` of a node, pre-grouped by predicate.

    Both matching engines consume neighbourhoods; grouping the triples by
    predicate lets the derivative engine order its work and lets reporting
    code produce readable error messages.
    """

    __slots__ = ("node", "triples", "_by_predicate")

    def __init__(self, node: SubjectTerm, triples: FrozenSet[Triple]):
        self.node = node
        self.triples = frozenset(triples)
        by_predicate: Dict[IRI, List[Triple]] = defaultdict(list)
        for triple in self.triples:
            if triple.subject != node:
                raise GraphError(
                    f"neighbourhood triple {triple} does not start at {node}"
                )
            by_predicate[triple.predicate].append(triple)
        self._by_predicate = {
            pred: tuple(sorted(ts, key=Triple.sort_key))
            for pred, ts in by_predicate.items()
        }

    def __len__(self) -> int:
        return len(self.triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.sorted())

    def __contains__(self, triple: object) -> bool:
        return triple in self.triples

    def predicates(self) -> List[IRI]:
        """Return the distinct predicates in deterministic order."""
        return sorted(self._by_predicate.keys(), key=IRI.sort_key)

    def by_predicate(self, predicate: IRI) -> Tuple[Triple, ...]:
        """Return the triples using ``predicate`` (possibly empty)."""
        return self._by_predicate.get(predicate, ())

    def sorted(self) -> List[Triple]:
        """Return the triples sorted by (predicate, object)."""
        return sorted(self.triples, key=lambda t: (t.predicate.sort_key(), t.object.sort_key()))

    def __repr__(self) -> str:
        return f"NeighbourhoodView({self.node!r}, {len(self.triples)} triples)"


def decompositions(triples: FrozenSet[Triple] | Set[Triple]) -> Iterator[
    Tuple[FrozenSet[Triple], FrozenSet[Triple]]
]:
    """Enumerate every decomposition ``(g1, g2)`` with ``g1 ⊕ g2 = g``.

    Reproduces Example 3 of the paper.  A graph with ``n`` triples yields
    ``2ⁿ`` pairs; this is the operation that makes the naïve backtracking
    matcher exponential and that the derivative algorithm avoids entirely.
    """
    ordered = sorted(triples, key=Triple.sort_key)
    n = len(ordered)
    for mask in range(2 ** n):
        left = frozenset(ordered[i] for i in range(n) if mask & (1 << i))
        right = frozenset(ordered[i] for i in range(n) if not mask & (1 << i))
        yield left, right


def decomposition_count(triples: FrozenSet[Triple] | Set[Triple]) -> int:
    """Return the number of decompositions of ``triples`` (``2ⁿ``)."""
    return 2 ** len(triples)
