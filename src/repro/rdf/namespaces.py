"""Namespace helpers and well-known vocabularies.

A :class:`Namespace` wraps a base IRI string and produces :class:`~repro.rdf.terms.IRI`
terms through attribute or item access::

    >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    >>> FOAF.name
    IRI('http://xmlns.com/foaf/0.1/name')
    >>> FOAF["knows"]
    IRI('http://xmlns.com/foaf/0.1/knows')

The :class:`NamespaceManager` keeps prefix→namespace bindings and is used by
the Turtle parser/serialiser and the ShExC parser/serialiser to resolve and
shorten prefixed names.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .errors import NamespaceError
from .terms import IRI

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "XSD",
    "OWL",
    "FOAF",
    "SCHEMA",
    "DC",
    "DCTERMS",
    "SHEX",
    "EX",
]


class Namespace:
    """A factory of IRIs sharing a common prefix."""

    __slots__ = ("base",)

    def __init__(self, base: str):
        if not isinstance(base, str) or not base:
            raise NamespaceError("namespace base must be a non-empty string")
        self.base = base

    def term(self, name: str) -> IRI:
        """Return the IRI obtained by appending ``name`` to the base."""
        return IRI(self.base + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: object) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.base)

    def __eq__(self, other) -> bool:
        return isinstance(other, Namespace) and other.base == self.base

    def __hash__(self) -> int:
        return hash(("Namespace", self.base))

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"

    def __str__(self) -> str:
        return self.base

    def local_name(self, iri: IRI) -> str:
        """Return the part of ``iri`` after the namespace base.

        Raises :class:`NamespaceError` if the IRI is not inside this namespace.
        """
        if iri not in self:
            raise NamespaceError(f"{iri} is not in namespace {self.base}")
        return iri.value[len(self.base):]


#: RDF core vocabulary.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
#: RDF Schema vocabulary.
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
#: XML Schema datatypes.
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
#: OWL 2 vocabulary.
OWL = Namespace("http://www.w3.org/2002/07/owl#")
#: Friend-of-a-friend vocabulary (used throughout the paper's examples).
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
#: schema.org vocabulary.
SCHEMA = Namespace("http://schema.org/")
#: Dublin Core elements.
DC = Namespace("http://purl.org/dc/elements/1.1/")
#: Dublin Core terms.
DCTERMS = Namespace("http://purl.org/dc/terms/")
#: ShEx vocabulary (for schema metadata).
SHEX = Namespace("http://www.w3.org/ns/shex#")
#: Example namespace used in tests, examples and workloads.
EX = Namespace("http://example.org/")

_DEFAULT_BINDINGS: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "xsd": XSD,
    "owl": OWL,
    "foaf": FOAF,
    "schema": SCHEMA,
    "dc": DC,
    "dcterms": DCTERMS,
    "shex": SHEX,
}


class NamespaceManager:
    """Bidirectional prefix ↔ namespace registry.

    Used to expand ``foaf:name`` style qualified names while parsing and to
    compact full IRIs while serialising.
    """

    def __init__(self, bind_defaults: bool = False):
        self._prefix_to_ns: Dict[str, str] = {}
        self._sorted_bases: list[Tuple[str, str]] = []
        if bind_defaults:
            for prefix, namespace in _DEFAULT_BINDINGS.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: Namespace | str, replace: bool = True) -> None:
        """Associate ``prefix`` with ``namespace``.

        An empty string is a valid prefix (the default/empty prefix of Turtle
        and ShExC).  Rebinding an existing prefix replaces the old binding
        unless ``replace`` is false, in which case a :class:`NamespaceError`
        is raised.
        """
        base = namespace.base if isinstance(namespace, Namespace) else str(namespace)
        if prefix in self._prefix_to_ns and not replace:
            if self._prefix_to_ns[prefix] != base:
                raise NamespaceError(f"prefix {prefix!r} is already bound")
        self._prefix_to_ns[prefix] = base
        self._rebuild_sorted()

    def _rebuild_sorted(self) -> None:
        # longest base first so that compaction picks the most specific prefix
        self._sorted_bases = sorted(
            ((base, prefix) for prefix, base in self._prefix_to_ns.items()),
            key=lambda item: (-len(item[0]), item[1]),
        )

    def namespace(self, prefix: str) -> Namespace:
        """Return the namespace bound to ``prefix``."""
        try:
            return Namespace(self._prefix_to_ns[prefix])
        except KeyError:
            raise NamespaceError(f"unknown prefix: {prefix!r}") from None

    def prefixes(self) -> Iterator[Tuple[str, str]]:
        """Iterate over ``(prefix, base)`` pairs in insertion order."""
        return iter(self._prefix_to_ns.items())

    def __len__(self) -> int:
        return len(self._prefix_to_ns)

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns

    def expand(self, qname: str) -> IRI:
        """Expand a prefixed name such as ``foaf:name`` into a full IRI."""
        if ":" not in qname:
            raise NamespaceError(f"not a prefixed name: {qname!r}")
        prefix, _, local = qname.partition(":")
        if prefix not in self._prefix_to_ns:
            raise NamespaceError(f"unknown prefix: {prefix!r}")
        return IRI(self._prefix_to_ns[prefix] + local)

    def compact(self, iri: IRI) -> Optional[str]:
        """Return the shortest prefixed form of ``iri`` or ``None``.

        The local part must be a simple name (no slash, hash or colon) for the
        compaction to be reversible by a Turtle/ShExC parser.
        """
        for base, prefix in self._sorted_bases:
            if iri.value.startswith(base):
                local = iri.value[len(base):]
                if local and not _is_safe_local(local):
                    continue
                return f"{prefix}:{local}"
        return None

    def copy(self) -> "NamespaceManager":
        """Return an independent copy of this manager."""
        clone = NamespaceManager()
        for prefix, base in self._prefix_to_ns.items():
            clone.bind(prefix, base)
        return clone


def _is_safe_local(local: str) -> bool:
    """Heuristic check that ``local`` can appear as a PN_LOCAL name."""
    if any(ch in local for ch in "/#:?[]()<>\"' \t\n"):
        return False
    return True
