"""N-Triples parser and serialiser (RDF 1.1 N-Triples, line-based).

N-Triples is the simplest RDF concrete syntax: one triple per line, full IRIs
only.  It is used as the interchange format for the workload generators and as
the building block of the Turtle serialiser's escaping rules.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from .errors import ParseError
from .graph import Graph
from .terms import BNode, IRI, Literal, ObjectTerm, SubjectTerm, Triple

__all__ = [
    "parse_ntriples",
    "iter_ntriples",
    "iter_ntriples_lines",
    "parse_term",
    "serialize_ntriples",
    "unescape_string",
    "escape_string",
]

_IRIREF = r"<([^\x00-\x20<>\"{}|^`\\]*)>"
_BNODE = r"_:([A-Za-z0-9][A-Za-z0-9_.-]*)"
_STRING = r'"((?:[^"\\\n\r]|\\.)*)"'
_LANGTAG = r"@([a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*)"

_SUBJECT_RE = re.compile(rf"\s*(?:{_IRIREF}|{_BNODE})")
_PREDICATE_RE = re.compile(rf"\s*{_IRIREF}")
_OBJECT_RE = re.compile(
    rf"\s*(?:{_IRIREF}|{_BNODE}|{_STRING}(?:{_LANGTAG}|\^\^{_IRIREF})?)"
)
_END_RE = re.compile(r"\s*\.\s*(#.*)?$")

_ESCAPE_SEQUENCES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def unescape_string(value: str) -> str:
    """Resolve ``\\n``, ``\\t``, ``\\uXXXX`` and ``\\UXXXXXXXX`` escapes."""
    out = []
    i = 0
    n = len(value)
    while i < n:
        ch = value[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise ParseError("dangling escape at end of string")
        esc = value[i + 1]
        if esc in _ESCAPE_SEQUENCES:
            out.append(_ESCAPE_SEQUENCES[esc])
            i += 2
        elif esc == "u":
            hex_digits = value[i + 2:i + 6]
            if len(hex_digits) != 4:
                raise ParseError(f"invalid \\u escape: {value[i:i+6]!r}")
            out.append(chr(int(hex_digits, 16)))
            i += 6
        elif esc == "U":
            hex_digits = value[i + 2:i + 10]
            if len(hex_digits) != 8:
                raise ParseError(f"invalid \\U escape: {value[i:i+10]!r}")
            out.append(chr(int(hex_digits, 16)))
            i += 10
        else:
            raise ParseError(f"unknown escape sequence: \\{esc}")
    return "".join(out)


def escape_string(value: str) -> str:
    """Escape a literal lexical form for N-Triples output."""
    out = []
    for ch in value:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\t":
            out.append("\\t")
        else:
            out.append(ch)
    return "".join(out)


def _parse_subject(line: str, pos: int, lineno: int) -> tuple[SubjectTerm, int]:
    match = _SUBJECT_RE.match(line, pos)
    if not match:
        raise ParseError("expected IRI or blank node as subject", lineno, pos)
    iri, bnode = match.group(1), match.group(2)
    term: SubjectTerm = IRI(unescape_string(iri)) if iri is not None else BNode(bnode)
    return term, match.end()


def _parse_predicate(line: str, pos: int, lineno: int) -> tuple[IRI, int]:
    match = _PREDICATE_RE.match(line, pos)
    if not match:
        raise ParseError("expected IRI as predicate", lineno, pos)
    return IRI(unescape_string(match.group(1))), match.end()


def _parse_object(line: str, pos: int, lineno: int) -> tuple[ObjectTerm, int]:
    match = _OBJECT_RE.match(line, pos)
    if not match:
        raise ParseError("expected IRI, blank node or literal as object", lineno, pos)
    iri, bnode, string, lang, dtype = (
        match.group(1), match.group(2), match.group(3), match.group(4), match.group(5),
    )
    term: ObjectTerm
    if iri is not None:
        term = IRI(unescape_string(iri))
    elif bnode is not None:
        term = BNode(bnode)
    else:
        lexical = unescape_string(string)
        if lang:
            term = Literal(lexical, lang=lang)
        elif dtype:
            term = Literal(lexical, datatype=IRI(unescape_string(dtype)))
        else:
            term = Literal(lexical)
    return term, match.end()


def parse_term(text: str) -> ObjectTerm:
    """Parse one N-Triples term (``<iri>``, ``_:bnode`` or a literal).

    The service layer's query-string contract: verdict queries name nodes in
    N-Triples syntax, the one representation every term already knows how to
    emit (:meth:`~repro.rdf.terms.Term.n3`).  Raises :class:`ParseError` on
    malformed input or trailing garbage.
    """
    stripped = text.strip()
    term, pos = _parse_object(stripped, 0, 1)
    if stripped[pos:].strip():
        raise ParseError(f"trailing characters after term: {stripped[pos:]!r}", 1, pos)
    return term


def iter_ntriples_lines(lines: Iterable[str]) -> Iterator[Triple]:
    """Yield triples from an iterable of N-Triples lines, one at a time.

    This is the streaming entry point: ``lines`` can be an open file handle
    or any other lazy line source, and only the line currently being parsed
    is held in memory.  The columnar store's segment-bounded ingest path
    feeds on this, encoding each yielded triple into integer ids and letting
    the term objects go.
    """
    for lineno, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        subject, pos = _parse_subject(raw_line, 0, lineno)
        predicate, pos = _parse_predicate(raw_line, pos, lineno)
        obj, pos = _parse_object(raw_line, pos, lineno)
        if not _END_RE.match(raw_line, pos):
            raise ParseError("expected '.' at end of triple", lineno, pos)
        yield Triple(subject, predicate, obj)


def iter_ntriples(data: str) -> Iterator[Triple]:
    """Yield triples from N-Triples text, skipping comments and blank lines."""
    return iter_ntriples_lines(data.splitlines())


def parse_ntriples(data: str) -> Graph:
    """Parse N-Triples text into a :class:`~repro.rdf.graph.Graph`."""
    graph = Graph()
    graph.add_all(iter_ntriples(data))
    return graph


def serialize_ntriples(graph: Graph, sort: bool = True) -> str:
    """Serialise ``graph`` as N-Triples (one canonical line per triple)."""
    triples = graph.sorted_triples() if sort else list(graph)
    lines = []
    for triple in triples:
        lines.append(_triple_to_ntriples(triple))
    return "\n".join(lines) + ("\n" if lines else "")


def _term_to_ntriples(term: ObjectTerm) -> str:
    if isinstance(term, Literal):
        quoted = f'"{escape_string(term.lexical)}"'
        if term.lang:
            return f"{quoted}@{term.lang}"
        if term.is_plain:
            return quoted
        return f"{quoted}^^<{term.datatype.value}>"
    return term.n3()


def _triple_to_ntriples(triple: Triple) -> str:
    return (
        f"{_term_to_ntriples(triple.subject)} "
        f"{_term_to_ntriples(triple.predicate)} "
        f"{_term_to_ntriples(triple.object)} ."
    )
