"""Core RDF term model: IRIs, blank nodes, literals and triples.

The paper works over three vocabularies (Section 2):

* ``Vs = I ∪ B`` — subjects are IRIs or blank nodes,
* ``Vp = I`` — predicates are IRIs,
* ``Vo = I ∪ B ∪ L`` — objects are IRIs, blank nodes or literals.

This module provides immutable, hashable term classes mirroring the RDF 1.1
abstract syntax so that triples can live inside Python sets and dictionaries,
which is what both the backtracking and the derivative matchers require.
"""

from __future__ import annotations

import itertools
import operator as _operator
import re
import threading
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Term",
    "IRI",
    "BNode",
    "Literal",
    "Triple",
    "SubjectTerm",
    "ObjectTerm",
    "is_subject_term",
    "is_predicate_term",
    "is_object_term",
]

_IRI_ILLEGAL = re.compile(r"[\x00-\x20<>\"{}|^`\\]")

# RDF 1.1 well-known datatype IRIs used when constructing literals from
# Python values.  They are plain strings here to avoid a circular import with
# :mod:`repro.rdf.namespaces`.
_XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

_LANGTAG_RE = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")


class Term:
    """Abstract base class for RDF terms.

    Terms are immutable and totally ordered (IRIs < blank nodes < literals)
    so that graphs can be serialised deterministically and matchers can sort
    triples into a canonical processing order.
    """

    __slots__ = ()

    #: ordering rank of the term kind; overridden by subclasses.
    _sort_rank = 0

    def sort_key(self) -> tuple:
        """Return a tuple usable to order terms deterministically."""
        raise NotImplementedError

    def n3(self) -> str:
        """Return the N-Triples / Turtle lexical form of this term."""
        raise NotImplementedError

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class IRI(Term):
    """An IRI reference (RDF 1.1 IRIs, absolute or relative).

    >>> IRI("http://example.org/alice").n3()
    '<http://example.org/alice>'
    """

    __slots__ = ("value", "_hash")
    _sort_rank = 0

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be a string, got {type(value).__name__}")
        if not value:
            raise ValueError("IRI value must not be empty")
        if _IRI_ILLEGAL.search(value):
            raise ValueError(f"IRI contains illegal characters: {value!r}")
        object.__setattr__(self, "value", value)
        # terms are dictionary keys everywhere (indexes, caches, counts);
        # computing the hash once at construction keeps every lookup O(1)
        # with no per-call tuple building
        object.__setattr__(self, "_hash", hash(("IRI", value)))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("IRI instances are immutable")

    def __reduce__(self):
        # the immutability guard breaks slot-based pickling; rebuild through
        # the constructor instead (also re-validates on the way in)
        return (IRI, (self.value,))

    def __eq__(self, other) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        return f"<{self.value}>"

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.value)

    def concat(self, suffix: str) -> "IRI":
        """Return a new IRI with ``suffix`` appended (namespace member access)."""
        return IRI(self.value + suffix)


class BNode(Term):
    """A blank node.

    Blank nodes carry a local identifier; two blank nodes are equal iff their
    identifiers are equal (the paper uses *union* of graphs, which preserves
    blank-node identity, rather than *merge*).

    Creating a :class:`BNode` with no argument mints a fresh identifier that
    is unique within the running process.
    """

    __slots__ = ("id", "_hash")
    _sort_rank = 1

    _counter = itertools.count()
    _lock = threading.Lock()

    def __init__(self, id: Optional[str] = None):
        if id is None:
            with BNode._lock:
                id = f"b{next(BNode._counter)}"
        if not isinstance(id, str):
            raise TypeError(f"BNode id must be a string, got {type(id).__name__}")
        if not id:
            raise ValueError("BNode id must not be empty")
        object.__setattr__(self, "id", id)
        object.__setattr__(self, "_hash", hash(("BNode", id)))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("BNode instances are immutable")

    def __reduce__(self):
        return (BNode, (self.id,))

    def __eq__(self, other) -> bool:
        return isinstance(other, BNode) and other.id == self.id

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BNode({self.id!r})"

    def __str__(self) -> str:
        return f"_:{self.id}"

    def n3(self) -> str:
        return f"_:{self.id}"

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.id)


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_literal(value: str) -> str:
    out = []
    for ch in value:
        out.append(_ESCAPES.get(ch, ch))
    return "".join(out)


class Literal(Term):
    """An RDF literal with a lexical form, a datatype and an optional language.

    The constructor accepts either a ready lexical form plus datatype/language,
    or a plain Python value (``int``, ``float``, ``bool``, ``str``) which is
    converted to the corresponding XSD datatype:

    >>> Literal(23).datatype.value.endswith('integer')
    True
    >>> Literal("chat", lang="fr").n3()
    '"chat"@fr'
    """

    __slots__ = ("lexical", "datatype", "lang", "_hash")
    _sort_rank = 2

    def __init__(
        self,
        value: Union[str, int, float, bool],
        datatype: Optional[IRI] = None,
        lang: Optional[str] = None,
    ):
        if lang is not None and datatype is not None:
            if datatype.value != RDF_LANGSTRING:
                raise ValueError(
                    "a language-tagged literal must use rdf:langString as datatype"
                )
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or IRI(XSD_BOOLEAN)
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or IRI(XSD_INTEGER)
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or IRI(XSD_DOUBLE)
        elif isinstance(value, str):
            lexical = value
            if lang is not None:
                if not _LANGTAG_RE.match(lang):
                    raise ValueError(f"invalid language tag: {lang!r}")
                datatype = IRI(RDF_LANGSTRING)
            elif datatype is None:
                datatype = IRI(XSD_STRING)
        else:
            raise TypeError(
                f"cannot build a Literal from {type(value).__name__}; "
                "expected str, int, float or bool"
            )
        if not isinstance(datatype, IRI):
            raise TypeError("datatype must be an IRI")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "lang", lang.lower() if lang else None)
        object.__setattr__(self, "_hash",
                           hash(("Literal", lexical, datatype.value, self.lang)))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Literal instances are immutable")

    def __reduce__(self):
        # lexical + datatype + lang fully determine the literal; the lang-tag
        # invariant (datatype is rdf:langString) holds by construction
        return (Literal, (self.lexical, self.datatype, self.lang))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.lang == self.lang
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.lang:
            return f"Literal({self.lexical!r}, lang={self.lang!r})"
        return f"Literal({self.lexical!r}, datatype={self.datatype.value!r})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        quoted = f'"{_escape_literal(self.lexical)}"'
        if self.lang:
            return f"{quoted}@{self.lang}"
        if self.datatype.value == XSD_STRING:
            return quoted
        return f"{quoted}^^<{self.datatype.value}>"

    def sort_key(self) -> tuple:
        return (self._sort_rank, self.lexical, self.datatype.value, self.lang or "")

    # -- value access -----------------------------------------------------
    def to_python(self):
        """Convert the literal to a Python value using its datatype.

        Falls back to the lexical form when the datatype has no registered
        mapping or the lexical form is invalid for the datatype.
        """
        from .datatypes import to_python_value

        return to_python_value(self)

    @property
    def is_plain(self) -> bool:
        """True for simple ``xsd:string`` literals without a language tag."""
        return self.lang is None and self.datatype.value == XSD_STRING


SubjectTerm = Union[IRI, BNode]
ObjectTerm = Union[IRI, BNode, Literal]


def is_subject_term(term: object) -> bool:
    """True if ``term`` belongs to ``Vs = I ∪ B``."""
    return isinstance(term, (IRI, BNode))


def is_predicate_term(term: object) -> bool:
    """True if ``term`` belongs to ``Vp = I``."""
    return isinstance(term, IRI)


def is_object_term(term: object) -> bool:
    """True if ``term`` belongs to ``Vo = I ∪ B ∪ L``."""
    return isinstance(term, (IRI, BNode, Literal))


class Triple(tuple):
    """An RDF triple ``⟨s, p, o⟩``.

    Validity of the three positions is enforced at construction time, matching
    the vocabulary constraints of Section 2 of the paper.

    The class is a ``tuple`` subclass, not a dataclass: the storage layer
    hashes triples constantly (the dict store's indexes and neighbourhood
    frozensets) and the columnar store materialises them in bulk on every
    scan, so construction, hashing and equality all running at C speed is a
    measurable win.  Field access stays attribute-style (``triple.subject``)
    through ``itemgetter`` properties.
    """

    __slots__ = ()

    def __new__(cls, subject: SubjectTerm, predicate: IRI,
                object: ObjectTerm) -> "Triple":
        if not is_subject_term(subject):
            raise TypeError(
                f"triple subject must be an IRI or BNode, got {type(subject).__name__}"
            )
        if not is_predicate_term(predicate):
            raise TypeError(
                f"triple predicate must be an IRI, got {type(predicate).__name__}"
            )
        if not is_object_term(object):
            raise TypeError(
                f"triple object must be an IRI, BNode or Literal, "
                f"got {type(object).__name__}"
            )
        return tuple.__new__(cls, (subject, predicate, object))

    subject = property(_operator.itemgetter(0))
    predicate = property(_operator.itemgetter(1))
    object = property(_operator.itemgetter(2))

    def __getnewargs__(self) -> tuple:
        return (self[0], self[1], self[2])

    def __repr__(self) -> str:
        return (f"Triple(subject={self[0]!r}, predicate={self[1]!r}, "
                f"object={self[2]!r})")

    # ordering follows the term sort keys (as the dataclass version did),
    # not the element-wise tuple comparison inherited from ``tuple``.
    def __lt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.sort_key() >= other.sort_key()

    def sort_key(self) -> tuple:
        return (self[0].sort_key(), self[1].sort_key(), self[2].sort_key())

    def n3(self) -> str:
        """Return the N-Triples serialisation of this triple (without newline)."""
        return f"{self[0].n3()} {self[1].n3()} {self[2].n3()} ."

    def __str__(self) -> str:
        return self.n3()

    def replace(
        self,
        subject: Optional[SubjectTerm] = None,
        predicate: Optional[IRI] = None,
        object: Optional[ObjectTerm] = None,
    ) -> "Triple":
        """Return a copy of this triple with some positions replaced."""
        return Triple(
            subject if subject is not None else self[0],
            predicate if predicate is not None else self[1],
            object if object is not None else self[2],
        )


def unchecked_triple(subject: SubjectTerm, predicate: IRI,
                     obj: ObjectTerm) -> Triple:
    """Build a :class:`Triple` from positions already known to be valid.

    The dictionary-encoded store rebuilds triples from ids whose per-kind
    ranges (see :mod:`repro.rdf.dictionary`) already guarantee the
    vocabulary constraints of Section 2, so the constructor's ``isinstance``
    checks are pure overhead on its scan paths.  Only use this with
    positions that went through validation once before.
    """
    return tuple.__new__(Triple, (subject, predicate, obj))
