"""Turtle (Terse RDF Triple Language) parser and serialiser.

The examples in the paper (Example 2) and the workloads in this repository
are written in Turtle, so the substrate ships a reasonably complete Turtle
implementation:

* ``@prefix`` / ``@base`` and SPARQL-style ``PREFIX`` / ``BASE`` directives,
* prefixed names and the ``a`` keyword,
* predicate–object lists (``;``) and object lists (``,``),
* numeric, boolean, plain, language-tagged and datatyped literals,
* long (triple-quoted) strings,
* anonymous blank nodes ``[ ... ]`` and RDF collections ``( ... )``.

The parser is a hand-written tokenizer plus recursive-descent parser; it is
deliberately explicit rather than clever so that error messages carry line and
column information.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .errors import ParseError
from .graph import Graph
from .namespaces import RDF, XSD, NamespaceManager
from .ntriples import escape_string, unescape_string
from .terms import BNode, IRI, Literal, ObjectTerm, SubjectTerm, Triple

__all__ = ["parse_turtle", "serialize_turtle", "TurtleParser", "TurtleSerializer"]


# --------------------------------------------------------------------------- tokens
_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("PREFIX_DIR", r"@prefix\b|PREFIX\b(?=[ \t])"),
    ("BASE_DIR", r"@base\b|BASE\b(?=[ \t])"),
    ("IRIREF", r"<[^\x00-\x20<>\"{}|^`\\]*>"),
    ("LONG_STRING", r'"""(?:[^"\\]|\\.|"(?!""))*"""' + r"|'''(?:[^'\\]|\\.|'(?!''))*'''"),
    ("STRING", r'"(?:[^"\\\n\r]|\\.)*"' + r"|'(?:[^'\\\n\r]|\\.)*'"),
    ("LANGTAG", r"@[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*"),
    ("DOUBLE_CARET", r"\^\^"),
    ("DOUBLE", r"[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+)"),
    ("DECIMAL", r"[+-]?\d*\.\d+"),
    ("INTEGER", r"[+-]?\d+"),
    ("BNODE_LABEL", r"_:[A-Za-z0-9][A-Za-z0-9_.-]*"),
    ("PNAME", r"(?:[A-Za-z][\w.-]*)?:[\w.-]*(?<!\.)|(?:[A-Za-z][\w.-]*)?:"),
    ("KEYWORD_A", r"a(?=[ \t\r\n<\[])"),
    ("BOOLEAN", r"\b(?:true|false)\b"),
    ("DOT", r"\."),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_Token({self.kind}, {self.value!r}, line={self.line})"


def _tokenize(data: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    pos = 0
    length = len(data)
    while pos < length:
        match = _TOKEN_RE.match(data, pos)
        if not match:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {data[pos]!r}", line, column)
        kind = match.lastgroup
        value = match.group()
        column = pos - line_start + 1
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, value, line, column))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()
    tokens.append(_Token("EOF", "", line, pos - line_start + 1))
    return tokens


# --------------------------------------------------------------------------- parser
class TurtleParser:
    """Recursive-descent Turtle parser producing a :class:`Graph`."""

    def __init__(self, data: str, base: Optional[str] = None):
        self._tokens = _tokenize(data)
        self._index = 0
        self._base = base or ""
        self._graph = Graph(namespaces=NamespaceManager(bind_defaults=False))
        self._bnode_counter = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} ({token.value!r})",
                token.line, token.column,
            )
        return self._next()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message + f" (found {token.value!r})", token.line, token.column)

    def _fresh_bnode(self) -> BNode:
        self._bnode_counter += 1
        return BNode(f"genid{self._bnode_counter}")

    # -- grammar -------------------------------------------------------------
    def parse(self) -> Graph:
        """Parse the whole document and return the resulting graph."""
        # one batch for the whole document: the load coalesces into one
        # journal record per subject instead of one per triple.
        with self._graph.batch():
            while self._peek().kind != "EOF":
                token = self._peek()
                if token.kind == "PREFIX_DIR":
                    self._parse_prefix()
                elif token.kind == "BASE_DIR":
                    self._parse_base()
                else:
                    self._parse_triples_block()
        return self._graph

    def _parse_prefix(self) -> None:
        directive = self._next()
        prefix_token = self._expect("PNAME")
        if not prefix_token.value.endswith(":"):
            raise ParseError("prefix declaration must end with ':'",
                             prefix_token.line, prefix_token.column)
        prefix = prefix_token.value[:-1]
        iri_token = self._expect("IRIREF")
        iri_value = self._resolve_iri(iri_token.value[1:-1])
        self._graph.namespaces.bind(prefix, iri_value)
        if directive.value.startswith("@"):
            self._expect("DOT")
        elif self._peek().kind == "DOT":
            self._next()

    def _parse_base(self) -> None:
        directive = self._next()
        iri_token = self._expect("IRIREF")
        self._base = self._resolve_iri(iri_token.value[1:-1])
        if directive.value.startswith("@"):
            self._expect("DOT")
        elif self._peek().kind == "DOT":
            self._next()

    def _parse_triples_block(self) -> None:
        token = self._peek()
        if token.kind == "LBRACKET":
            subject = self._parse_blank_node_property_list()
            if self._peek().kind != "DOT":
                self._parse_predicate_object_list(subject)
        else:
            subject = self._parse_subject()
            self._parse_predicate_object_list(subject)
        self._expect("DOT")

    def _parse_subject(self) -> SubjectTerm:
        token = self._peek()
        if token.kind == "IRIREF":
            return self._parse_iriref()
        if token.kind == "PNAME":
            return self._parse_pname()
        if token.kind == "BNODE_LABEL":
            self._next()
            return BNode(token.value[2:])
        if token.kind == "LPAREN":
            return self._parse_collection()
        raise self._error("expected subject (IRI, prefixed name or blank node)")

    def _parse_predicate(self) -> IRI:
        token = self._peek()
        if token.kind == "KEYWORD_A":
            self._next()
            return RDF.type
        if token.kind == "IRIREF":
            return self._parse_iriref()
        if token.kind == "PNAME":
            return self._parse_pname()
        raise self._error("expected predicate (IRI, prefixed name or 'a')")

    def _parse_predicate_object_list(self, subject: SubjectTerm) -> None:
        while True:
            predicate = self._parse_predicate()
            self._parse_object_list(subject, predicate)
            if self._peek().kind == "SEMICOLON":
                while self._peek().kind == "SEMICOLON":
                    self._next()
                if self._peek().kind in ("DOT", "RBRACKET"):
                    return
                continue
            return

    def _parse_object_list(self, subject: SubjectTerm, predicate: IRI) -> None:
        while True:
            obj = self._parse_object()
            self._graph.add(Triple(subject, predicate, obj))
            if self._peek().kind == "COMMA":
                self._next()
                continue
            return

    def _parse_object(self) -> ObjectTerm:
        token = self._peek()
        if token.kind == "IRIREF":
            return self._parse_iriref()
        if token.kind == "PNAME":
            return self._parse_pname()
        if token.kind == "BNODE_LABEL":
            self._next()
            return BNode(token.value[2:])
        if token.kind == "LBRACKET":
            return self._parse_blank_node_property_list()
        if token.kind == "LPAREN":
            return self._parse_collection()
        if token.kind in ("STRING", "LONG_STRING"):
            return self._parse_string_literal()
        if token.kind == "INTEGER":
            self._next()
            return Literal(token.value, datatype=XSD.integer)
        if token.kind == "DECIMAL":
            self._next()
            return Literal(token.value, datatype=XSD.decimal)
        if token.kind == "DOUBLE":
            self._next()
            return Literal(token.value, datatype=XSD.double)
        if token.kind == "BOOLEAN":
            self._next()
            return Literal(token.value, datatype=XSD.boolean)
        if token.kind == "KEYWORD_A":
            # 'a' in object position is just a prefixless name error
            raise self._error("'a' is only allowed in predicate position")
        raise self._error("expected object")

    def _parse_string_literal(self) -> Literal:
        token = self._next()
        raw = token.value
        if token.kind == "LONG_STRING":
            lexical = unescape_string(raw[3:-3])
        else:
            lexical = unescape_string(raw[1:-1])
        nxt = self._peek()
        if nxt.kind == "LANGTAG":
            self._next()
            return Literal(lexical, lang=nxt.value[1:])
        if nxt.kind == "DOUBLE_CARET":
            self._next()
            dt_token = self._peek()
            if dt_token.kind == "IRIREF":
                datatype = self._parse_iriref()
            elif dt_token.kind == "PNAME":
                datatype = self._parse_pname()
            else:
                raise self._error("expected datatype IRI after '^^'")
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _parse_blank_node_property_list(self) -> BNode:
        self._expect("LBRACKET")
        node = self._fresh_bnode()
        if self._peek().kind != "RBRACKET":
            self._parse_predicate_object_list(node)
        self._expect("RBRACKET")
        return node

    def _parse_collection(self) -> SubjectTerm:
        self._expect("LPAREN")
        items: List[ObjectTerm] = []
        while self._peek().kind != "RPAREN":
            items.append(self._parse_object())
        self._expect("RPAREN")
        if not items:
            return RDF.nil
        head = self._fresh_bnode()
        current = head
        for index, item in enumerate(items):
            self._graph.add(Triple(current, RDF.first, item))
            if index == len(items) - 1:
                self._graph.add(Triple(current, RDF.rest, RDF.nil))
            else:
                nxt = self._fresh_bnode()
                self._graph.add(Triple(current, RDF.rest, nxt))
                current = nxt
        return head

    def _parse_iriref(self) -> IRI:
        token = self._next()
        return IRI(self._resolve_iri(unescape_string(token.value[1:-1])))

    def _parse_pname(self) -> IRI:
        token = self._next()
        prefix, _, local = token.value.partition(":")
        try:
            namespace = self._graph.namespaces.namespace(prefix)
        except Exception:
            raise ParseError(f"unknown prefix {prefix!r}", token.line, token.column) from None
        return IRI(namespace.base + local)

    def _resolve_iri(self, value: str) -> str:
        if not self._base:
            return value
        if re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", value):
            return value
        if value.startswith("#") or not value:
            return self._base.split("#")[0] + value
        if value.startswith("/"):
            match = re.match(r"^([A-Za-z][A-Za-z0-9+.-]*://[^/]*)", self._base)
            root = match.group(1) if match else self._base
            return root + value
        return self._base.rsplit("/", 1)[0] + "/" + value


def parse_turtle(data: str, base: Optional[str] = None) -> Graph:
    """Parse Turtle text into a graph."""
    return TurtleParser(data, base=base).parse()


# ----------------------------------------------------------------------- serialiser
class TurtleSerializer:
    """Serialise a :class:`Graph` as compact, deterministic Turtle."""

    def __init__(self, graph: Graph):
        self._graph = graph

    def serialize(self) -> str:
        lines: List[str] = []
        used_prefixes = self._used_prefixes()
        for prefix, base in sorted(used_prefixes):
            lines.append(f"@prefix {prefix}: <{base}> .")
        if used_prefixes:
            lines.append("")
        by_subject: dict[SubjectTerm, List[Triple]] = {}
        for triple in self._graph.sorted_triples():
            by_subject.setdefault(triple.subject, []).append(triple)
        for subject in sorted(by_subject, key=lambda term: term.sort_key()):
            lines.extend(self._subject_block(subject, by_subject[subject]))
            lines.append("")
        return "\n".join(lines).rstrip("\n") + "\n" if lines else ""

    def _used_prefixes(self) -> List[Tuple[str, str]]:
        used: set[Tuple[str, str]] = set()
        for triple in self._graph:
            for term in triple:
                if isinstance(term, IRI):
                    compact = self._graph.namespaces.compact(term)
                    if compact:
                        prefix = compact.split(":", 1)[0]
                        used.add((prefix, self._graph.namespaces.namespace(prefix).base))
                elif isinstance(term, Literal):
                    compact = self._graph.namespaces.compact(term.datatype)
                    if compact and not term.is_plain and not term.lang:
                        prefix = compact.split(":", 1)[0]
                        used.add((prefix, self._graph.namespaces.namespace(prefix).base))
        return sorted(used)

    def _subject_block(self, subject: SubjectTerm, triples: List[Triple]) -> List[str]:
        by_predicate: dict[IRI, List[ObjectTerm]] = {}
        for triple in triples:
            by_predicate.setdefault(triple.predicate, []).append(triple.object)
        predicate_lines: List[str] = []
        predicates = sorted(by_predicate, key=lambda term: term.sort_key())
        for index, predicate in enumerate(predicates):
            objects = ", ".join(
                self._term(obj) for obj in sorted(by_predicate[predicate],
                                                  key=lambda term: term.sort_key())
            )
            terminator = " ;" if index < len(predicates) - 1 else " ."
            predicate_lines.append(f"    {self._predicate(predicate)} {objects}{terminator}")
        return [self._term(subject)] + predicate_lines

    def _predicate(self, predicate: IRI) -> str:
        if predicate == RDF.type:
            return "a"
        return self._term(predicate)

    def _term(self, term: ObjectTerm) -> str:
        if isinstance(term, IRI):
            compact = self._graph.namespaces.compact(term)
            return compact if compact else term.n3()
        if isinstance(term, BNode):
            return term.n3()
        if isinstance(term, Literal):
            return self._literal(term)
        raise TypeError(f"cannot serialise {term!r}")  # pragma: no cover

    def _literal(self, literal: Literal) -> str:
        if literal.lang:
            return f'"{escape_string(literal.lexical)}"@{literal.lang}'
        if literal.datatype == XSD.integer and re.fullmatch(r"[+-]?\d+", literal.lexical):
            return literal.lexical
        if literal.datatype == XSD.boolean and literal.lexical in ("true", "false"):
            return literal.lexical
        if literal.datatype == XSD.decimal and re.fullmatch(r"[+-]?\d*\.\d+", literal.lexical):
            return literal.lexical
        if literal.is_plain:
            return f'"{escape_string(literal.lexical)}"'
        compact = self._graph.namespaces.compact(literal.datatype)
        datatype = compact if compact else literal.datatype.n3()
        return f'"{escape_string(literal.lexical)}"^^{datatype}'


def serialize_turtle(graph: Graph) -> str:
    """Serialise ``graph`` as Turtle text."""
    return TurtleSerializer(graph).serialize()
