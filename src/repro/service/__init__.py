"""Validation as a service: session facade, HTTP server, caching client.

One request/response contract (:mod:`repro.service.api`) shared by the CLI,
the in-process :class:`ValidationSession` facade, the ``repro serve`` HTTP
server and the :class:`ServiceClient`.  See ``docs/architecture.md``,
"Validation as a service".
"""

from .api import (
    API_VERSION,
    DeltaRequest,
    DeltaResponse,
    ServiceError,
    ServiceStats,
    ValidationRequest,
    VerdictResponse,
)
from .client import ServiceClient, VerdictCache
from .fleet import ShardFleet
from .server import ReproServer, ValidationService, serve
from .session import ValidationSession
from .sharding import ShardedValidator, shard_of

__all__ = [
    "API_VERSION",
    "DeltaRequest",
    "DeltaResponse",
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "ServiceStats",
    "ShardFleet",
    "ShardedValidator",
    "ValidationRequest",
    "ValidationService",
    "ValidationSession",
    "VerdictCache",
    "serve",
    "shard_of",
]
