"""Validation as a service: session facade, HTTP server, caching client.

One request/response contract (:mod:`repro.service.api`) shared by the CLI,
the in-process :class:`ValidationSession` facade, the ``repro serve`` HTTP
server and the :class:`ServiceClient`.  See ``docs/architecture.md``,
"Validation as a service".
"""

from .api import (
    API_VERSION,
    DeltaRequest,
    DeltaResponse,
    ServiceError,
    ServiceStats,
    ValidationRequest,
    VerdictResponse,
)
from .client import RetryPolicy, ServiceClient, VerdictCache
from .faults import FAULT_POINTS, FaultInjector, FaultPlan, FaultSpec
from .fleet import ShardFleet
from .server import ReproServer, ValidationService, serve
from .session import ValidationSession
from .sharding import ShardedValidator, shard_of

__all__ = [
    "API_VERSION",
    "DeltaRequest",
    "DeltaResponse",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ReproServer",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceStats",
    "ShardFleet",
    "ShardedValidator",
    "ValidationRequest",
    "ValidationService",
    "ValidationSession",
    "VerdictCache",
    "serve",
    "shard_of",
]
