"""The service API: one typed request/response contract for every surface.

The CLI, the HTTP server (:mod:`repro.service.server`) and the python client
(:mod:`repro.service.client`) all speak these types — a request built in
process is byte-for-byte the request that travels over the wire, and the
stats the CLI prints under ``--cache-stats`` are the stats ``GET /stats``
serves.

Every dataclass carries a versioned JSON codec: ``to_json()`` returns a
plain-dict payload stamped with :data:`API_VERSION`, and the matching
``from_json`` classmethod rebuilds an equal object
(``from_json(to_json(x)) == x``, property-tested).  Malformed or
wrong-version payloads raise :class:`ServiceError` with a stable ``code`` —
the same error type the server maps to non-200 HTTP statuses — so parsing a
request body and rejecting it are one code path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "API_VERSION",
    "ServiceError",
    "ValidationRequest",
    "DeltaRequest",
    "VerdictResponse",
    "DeltaResponse",
    "ServiceStats",
]

#: version stamp carried by every payload; bumped on incompatible changes.
API_VERSION = 1


@dataclass
class ServiceError(Exception):
    """A typed service failure with a stable machine-readable ``code``.

    Codes are part of the API contract (clients branch on them, tests pin
    them):

    ==================== ====== =============================================
    code                 status meaning
    ==================== ====== =============================================
    ``bad-request``      400    malformed payload / missing parameter
    ``parse-error``      400    RDF data or an N-Triples term failed to parse
    ``schema-error``     400    ShExC schema failed to parse / resolve
    ``graph-not-found``  404    unknown graph id
    ``verdict-not-found`` 404   (node, shape) outside the maintained baseline
    ``no-baseline``      409    verdict/delta before any full validation run
    ``stale-baseline``   409    graph mutated behind the maintained typing
    ``stale-snapshot``   409    graph mutated during parallel scheduling
    ``journal-overflow`` 409    change journal overflowed; the delta was
                                applied but incremental revalidation refused
                                the unbounded rebuild (retry with
                                ``allow_full_rebuild``)
    ``request-timeout``  408    the client stalled mid-request-body
    ``payload-too-large`` 413   request body exceeds the server's bound
    ``shutdown-timeout`` 500    the serve thread outlived its shutdown
                                deadline; the listener socket was force-closed
    ``generation-conflict`` 409 the delta's ``expected_generation`` does not
                                match the graph (another writer got there
                                first, or a retried delta fell out of the
                                bounded ledger); re-read and re-derive the
                                delta before retrying
    ``session-closed``   409    the graph's session was closed/dropped while
                                the request was in flight
    ``fleet-closed``     409    spawn/respawn attempted on a shut-down fleet
    ``fleet-worker-died`` 503   a resident shard worker died or went
                                unresponsive mid-request; it is respawned and
                                warm-loaded on the next fleet operation
    ``verdict-unavailable`` 503 a degraded read could not serve the pair from
                                any live shard or the coordinator's stale
                                baseline
    ``connection-failed`` 503   client could not reach the server at all
    ``retries-exhausted`` 503   client retry policy ran out of attempts or
                                budget; the last underlying error is chained
    ``offline-cache-miss`` 503  offline client had no cached verdict
    ==================== ====== =============================================
    """

    code: str = "internal"
    message: str = ""
    http_status: int = 500

    def __post_init__(self):
        # populate BaseException.args so str()/traceback rendering work;
        # BaseException.__init__ writes through a C slot, not __setattr__.
        Exception.__init__(self, self.message)

    def to_json(self) -> Dict[str, Any]:
        return {"version": API_VERSION, "error": self.code,
                "message": self.message, "http_status": self.http_status}

    @classmethod
    def from_json(cls, payload: Union[str, Mapping[str, Any]]) -> "ServiceError":
        data = _load(payload)
        _check_version(data)
        return cls(code=_get(data, "error", str),
                   message=_get(data, "message", str, ""),
                   http_status=_get(data, "http_status", int, 500))


def _load(payload: Union[str, Mapping[str, Any]]) -> Mapping[str, Any]:
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except ValueError as error:
            raise ServiceError("bad-request", f"invalid JSON: {error}", 400) \
                from None
    if not isinstance(payload, Mapping):
        raise ServiceError("bad-request",
                           f"expected a JSON object, got {type(payload).__name__}",
                           400)
    return payload


def _check_version(data: Mapping[str, Any]) -> None:
    version = data.get("version", API_VERSION)
    if version != API_VERSION:
        raise ServiceError(
            "bad-request",
            f"unsupported api version {version!r} (this build speaks "
            f"{API_VERSION})", 400)


_MISSING = object()


def _get(data: Mapping[str, Any], key: str, kind, default=_MISSING):
    value = data.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ServiceError("bad-request", f"missing field {key!r}", 400)
        return default
    # bool is an int subclass; keep the two distinct in the contract
    if kind is int and isinstance(value, bool):
        raise ServiceError("bad-request", f"field {key!r} must be an integer", 400)
    if not isinstance(value, kind):
        wanted = kind.__name__ if isinstance(kind, type) else "/".join(
            k.__name__ for k in kind)
        raise ServiceError("bad-request",
                           f"field {key!r} must be {wanted}, "
                           f"got {type(value).__name__}", 400)
    return value


def _opt_labels(data: Mapping[str, Any]) -> Optional[Tuple[str, ...]]:
    raw = data.get("labels")
    if raw is None:
        return None
    if not isinstance(raw, (list, tuple)) \
            or not all(isinstance(item, str) for item in raw):
        raise ServiceError("bad-request",
                           "field 'labels' must be a list of strings", 400)
    return tuple(raw)


def _opt_int(data: Mapping[str, Any], key: str) -> Optional[int]:
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError("bad-request",
                           f"field {key!r} must be an integer or null", 400)
    return value


@dataclass(frozen=True)
class ValidationRequest:
    """Load a graph and run the initial full validation (``POST /graphs``).

    ``data`` is the RDF payload itself (the wire carries content, not
    paths); ``schema`` is ShExC text, empty to use the server's preloaded
    schema.  ``labels`` restricts validation to the named shapes (default:
    every shape).  ``jobs``/``shards`` of ``None`` defer to the server's
    configuration; explicit values override it per graph.
    """

    data: str = ""
    data_format: str = "turtle"
    schema: str = ""
    store: str = "dict"
    labels: Optional[Tuple[str, ...]] = None
    jobs: Optional[int] = None
    shards: Optional[int] = None

    def __post_init__(self):
        if self.data_format not in ("turtle", "ntriples"):
            raise ServiceError("bad-request",
                               f"unknown data_format {self.data_format!r}", 400)
        if self.store not in ("dict", "columnar"):
            raise ServiceError("bad-request",
                               f"unknown store {self.store!r}", 400)

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "version": API_VERSION,
            "data": self.data,
            "data_format": self.data_format,
            "schema": self.schema,
            "store": self.store,
        }
        if self.labels is not None:
            payload["labels"] = list(self.labels)
        if self.jobs is not None:
            payload["jobs"] = self.jobs
        if self.shards is not None:
            payload["shards"] = self.shards
        return payload

    @classmethod
    def from_json(cls, payload: Union[str, Mapping[str, Any]]
                  ) -> "ValidationRequest":
        data = _load(payload)
        _check_version(data)
        return cls(data=_get(data, "data", str, ""),
                   data_format=_get(data, "data_format", str, "turtle"),
                   schema=_get(data, "schema", str, ""),
                   store=_get(data, "store", str, "dict"),
                   labels=_opt_labels(data),
                   jobs=_opt_int(data, "jobs"),
                   shards=_opt_int(data, "shards"))


@dataclass(frozen=True)
class DeltaRequest:
    """A batched graph mutation (``POST /graphs/{id}/delta``).

    ``add``/``remove`` are N-Triples text blocks; the whole edit lands as
    one batch in the graph's change journal, then incremental revalidation
    runs.  ``allow_full_rebuild`` opts into the unbounded full re-run the
    service otherwise refuses with a ``journal-overflow``/``no-baseline``
    error when the change set is unknowable.

    ``delta_id`` is an idempotency key: the session remembers applied ids
    in a bounded ledger, and a retried delta with a seen id replays the
    original :class:`DeltaResponse` instead of re-applying the triples —
    this is what makes retrying a dropped response safe.
    ``expected_generation``, when set, is an optimistic-concurrency guard:
    the delta only applies if the graph is still at that generation
    (``generation-conflict`` 409 otherwise).  The client stamps both
    automatically.
    """

    add: str = ""
    remove: str = ""
    labels: Optional[Tuple[str, ...]] = None
    allow_full_rebuild: bool = False
    delta_id: Optional[str] = None
    expected_generation: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "version": API_VERSION,
            "add": self.add,
            "remove": self.remove,
            "allow_full_rebuild": self.allow_full_rebuild,
        }
        if self.labels is not None:
            payload["labels"] = list(self.labels)
        if self.delta_id is not None:
            payload["delta_id"] = self.delta_id
        if self.expected_generation is not None:
            payload["expected_generation"] = self.expected_generation
        return payload

    @classmethod
    def from_json(cls, payload: Union[str, Mapping[str, Any]]) -> "DeltaRequest":
        data = _load(payload)
        _check_version(data)
        delta_id = data.get("delta_id")
        if delta_id is not None and not isinstance(delta_id, str):
            raise ServiceError("bad-request",
                               "field 'delta_id' must be a string or null",
                               400)
        return cls(add=_get(data, "add", str, ""),
                   remove=_get(data, "remove", str, ""),
                   labels=_opt_labels(data),
                   allow_full_rebuild=_get(data, "allow_full_rebuild",
                                           bool, False),
                   delta_id=delta_id,
                   expected_generation=_opt_int(data, "expected_generation"))


@dataclass(frozen=True)
class VerdictResponse:
    """One ``(node, shape)`` verdict served from the maintained typing.

    ``node`` is the N-Triples rendering of the term, ``shape`` the label
    name, ``generation`` the graph generation the verdict describes —
    clients key their caches on it and invalidate when it moves.

    ``reason`` is ``None`` unless explicitly requested: failure-message
    wording is processing-order-dependent across the serial, parallel and
    sharded schedulers (a documented caveat since the parallel scheduler
    landed), so the *default* response is byte-identical across modes and
    the explanatory text is opt-in (``?reason=1``).

    ``degraded``/``missing_shards`` are set only on degraded reads
    (``?allow_degraded=1`` during a shard outage): the verdict was served
    from a live shard replica or the coordinator's stale baseline while the
    dead shards heal, and ``missing_shards`` names the shard indices that
    could not answer.  Both are omitted from JSON at their defaults, so a
    healthy response stays byte-identical to pre-degraded builds.
    """

    node: str
    shape: str
    conforms: bool
    generation: int
    reason: Optional[str] = None
    degraded: bool = False
    missing_shards: Tuple[int, ...] = ()

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "version": API_VERSION,
            "node": self.node,
            "shape": self.shape,
            "conforms": self.conforms,
            "generation": self.generation,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.degraded:
            payload["degraded"] = True
            payload["missing_shards"] = list(self.missing_shards)
        return payload

    @classmethod
    def from_json(cls, payload: Union[str, Mapping[str, Any]]
                  ) -> "VerdictResponse":
        data = _load(payload)
        _check_version(data)
        reason = data.get("reason")
        if reason is not None and not isinstance(reason, str):
            raise ServiceError("bad-request",
                               "field 'reason' must be a string or null", 400)
        missing = data.get("missing_shards", [])
        if not isinstance(missing, (list, tuple)) \
                or not all(isinstance(item, int) and not isinstance(item, bool)
                           for item in missing):
            raise ServiceError("bad-request",
                               "field 'missing_shards' must be a list of "
                               "integers", 400)
        return cls(node=_get(data, "node", str),
                   shape=_get(data, "shape", str),
                   conforms=_get(data, "conforms", bool),
                   generation=_get(data, "generation", int),
                   reason=reason,
                   degraded=_get(data, "degraded", bool, False),
                   missing_shards=tuple(missing))


@dataclass(frozen=True)
class DeltaResponse:
    """The outcome of one delta round: journal/closure/rebuild counters.

    ``generation`` is the graph generation *after* the batch — every client
    cache entry stamped with an older generation is invalid from here on.
    """

    generation: int
    added: int = 0
    removed: int = 0
    dirty_subjects: int = 0
    affected_nodes: int = 0
    revalidated_pairs: int = 0
    reused_pairs: int = 0
    retracted_verdicts: int = 0
    full_rebuild: bool = False
    conforms: bool = True

    def to_json(self) -> Dict[str, Any]:
        payload = {"version": API_VERSION}
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload

    @classmethod
    def from_json(cls, payload: Union[str, Mapping[str, Any]]) -> "DeltaResponse":
        data = _load(payload)
        _check_version(data)
        kwargs: Dict[str, Any] = {"generation": _get(data, "generation", int)}
        for name in ("added", "removed", "dirty_subjects", "affected_nodes",
                     "revalidated_pairs", "reused_pairs", "retracted_verdicts"):
            kwargs[name] = _get(data, name, int, 0)
        kwargs["full_rebuild"] = _get(data, "full_rebuild", bool, False)
        kwargs["conforms"] = _get(data, "conforms", bool, True)
        return cls(**kwargs)


def _counter_dict(data: Mapping[str, Any], key: str) -> Dict[str, Any]:
    value = data.get(key, {})
    if not isinstance(value, Mapping):
        raise ServiceError("bad-request",
                           f"field {key!r} must be an object", 400)
    return dict(value)


@dataclass(frozen=True)
class ServiceStats:
    """Every observability counter the system keeps, as one typed object.

    One structure serves all surfaces: ``GET /stats`` returns its JSON,
    ``--cache-stats`` prints :meth:`format_text` (the same prefixed
    ``key=value`` stderr lines the CLI has always emitted), and
    ``--cache-stats=json`` prints the JSON.  The groups mirror the
    subsystems: ``store`` (storage backend, with a nested ``dictionary``
    group for columnar stores), ``journal`` (change journal), ``prefilter``
    (compiled-schema counters, empty when precompilation is off), ``cache``
    (derivative cache, empty when no global cache is active), ``signature``
    (neighbourhood-signature verdict cache, empty when dedupe is off),
    ``profile`` (per-phase hot-path wall-clock counters from
    :class:`~repro.shex.results.MatchStats`, empty until a run recorded
    any), ``verdicts`` (settled/provisional context counts + maintained
    baseline size), ``session`` (request counters of the owning session)
    and ``fleet`` (resident shard fleet health: worker liveness, respawns,
    per-shard replica counters — empty for unsharded sessions).
    """

    generation: int = 0
    store: Dict[str, Any] = field(default_factory=dict)
    journal: Dict[str, Any] = field(default_factory=dict)
    prefilter: Dict[str, Any] = field(default_factory=dict)
    cache: Dict[str, Any] = field(default_factory=dict)
    signature: Dict[str, Any] = field(default_factory=dict)
    profile: Dict[str, Any] = field(default_factory=dict)
    verdicts: Dict[str, Any] = field(default_factory=dict)
    session: Dict[str, Any] = field(default_factory=dict)
    fleet: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": API_VERSION,
            "generation": self.generation,
            "store": dict(self.store),
            "journal": dict(self.journal),
            "prefilter": dict(self.prefilter),
            "cache": dict(self.cache),
            "signature": dict(self.signature),
            "profile": dict(self.profile),
            "verdicts": dict(self.verdicts),
            "session": dict(self.session),
            "fleet": dict(self.fleet),
        }

    @classmethod
    def from_json(cls, payload: Union[str, Mapping[str, Any]]) -> "ServiceStats":
        data = _load(payload)
        _check_version(data)
        return cls(generation=_get(data, "generation", int, 0),
                   store=_counter_dict(data, "store"),
                   journal=_counter_dict(data, "journal"),
                   prefilter=_counter_dict(data, "prefilter"),
                   cache=_counter_dict(data, "cache"),
                   signature=_counter_dict(data, "signature"),
                   profile=_counter_dict(data, "profile"),
                   verdicts=_counter_dict(data, "verdicts"),
                   session=_counter_dict(data, "session"),
                   fleet=_counter_dict(data, "fleet"))

    def format_text(self) -> str:
        """Render the classic ``--cache-stats`` stderr block.

        Line prefixes and key names are stable (tests and scripts grep for
        them): ``store-stats:``, ``dictionary-stats:``, ``journal-stats:``,
        ``prefilter-stats:``, ``cache-stats:``.
        """
        lines: List[str] = []
        store = dict(self.store)
        dictionary = store.pop("dictionary", None)
        if store:
            rendered = " ".join(f"{key}={value}" for key, value in store.items())
            lines.append(f"store-stats: {rendered}")
        if dictionary:
            rendered = " ".join(f"{key}={value}"
                                for key, value in dictionary.items())
            lines.append(f"dictionary-stats: {rendered}")
        if self.journal:
            journal = self.journal
            lines.append("journal-stats: "
                         f"tracked_subjects={journal.get('tracked_subjects', 0)} "
                         f"records={journal.get('records', 0)} "
                         f"overflows={journal.get('overflows', 0)} "
                         f"max_entries={journal.get('max_entries', 0)}")
        if self.prefilter:
            prefilter = self.prefilter
            lines.append("prefilter-stats: "
                         f"accepts={prefilter.get('accepts', 0)} "
                         f"rejects={prefilter.get('rejects', 0)} "
                         f"reference_checks={prefilter.get('reference_checks', 0)} "
                         f"schema={prefilter.get('schema', {})}")
        else:
            lines.append("prefilter-stats: disabled "
                         "(--no-precompile or no schema)")
        if self.cache:
            cache = self.cache
            bound = cache.get("max_entries") or "unbounded"
            hit_rate = cache.get("hit_rate", 0.0)
            lines.append("cache-stats: "
                         f"hits={cache.get('hits', 0)} "
                         f"misses={cache.get('misses', 0)} "
                         f"evictions={cache.get('evictions', 0)} "
                         f"derivatives={cache.get('derivatives', 0)} "
                         f"constraint_verdicts={cache.get('constraint_verdicts', 0)} "
                         f"max_entries={bound} "
                         f"hit_rate={hit_rate:.1%}")
        else:
            lines.append("cache-stats: no derivative cache active")
        if self.signature:
            signature = self.signature
            bound = signature.get("max_entries") or "unbounded"
            hit_rate = signature.get("hit_rate", 0.0)
            lines.append("signature-stats: "
                         f"hits={signature.get('hits', 0)} "
                         f"misses={signature.get('misses', 0)} "
                         f"dedupes={signature.get('dedupes', 0)} "
                         f"evictions={signature.get('evictions', 0)} "
                         f"signatures={signature.get('signatures', 0)} "
                         f"max_entries={bound} "
                         f"hit_rate={hit_rate:.1%}")
        else:
            lines.append("signature-stats: no signature cache active")
        if self.profile:
            profile = self.profile
            rendered = " ".join(
                f"{key}={value:.4f}" if isinstance(value, float)
                else f"{key}={value}"
                for key, value in profile.items())
            lines.append(f"profile-stats: {rendered}")
        if self.fleet.get("started"):
            fleet = self.fleet
            lines.append("fleet-stats: "
                         f"shards={fleet.get('shards', 0)} "
                         f"resident={fleet.get('resident', False)} "
                         f"workers_alive={fleet.get('workers_alive', 0)} "
                         f"workers_loaded={fleet.get('workers_loaded', 0)} "
                         f"respawns={fleet.get('respawns', 0)}")
        if self.session.get("jobs", 1) and self.session.get("jobs", 1) > 1:
            lines.append("cache-stats: note: with --jobs > 1 derivative caches "
                         "are worker-local; the counters above cover only the "
                         "coordinating process")
        return "\n".join(lines)
