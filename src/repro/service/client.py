"""A thin blocking client with a generation-invalidated verdict cache.

Modelled on the GerryDB client (profile-based sessions whose persistent
client-side cache is a first-class object): :class:`VerdictCache` can be
constructed, inspected, shared between clients and handed back in — it is
not an anonymous dict hidden in the transport.

The invalidation contract is the graph ``generation`` every server response
carries: a cached verdict is served only while its generation equals the
latest generation the client has seen for that graph; the moment a delta
response (or any response) reports a newer generation, older entries stop
being answers.  ``offline=True`` flips the client into cache-only mode —
hits are served locally, misses raise ``offline-cache-miss`` (HTTP never
happens), so a warmed client keeps answering point queries through server
downtime, at the freshness of its last contact.

Transport (since the resilience PR):

* **one persistent connection**, reconnected on error, instead of a fresh
  TCP handshake per request;
* a :class:`RetryPolicy` (exponential backoff + deterministic jitter,
  bounded attempt count *and* wall-clock budget, honors ``Retry-After``)
  drives retries of transport failures and 503/408 responses; exhaustion is
  a typed ``retries-exhausted`` error chaining the last underlying failure;
* retry *safety* is classified per failure: a request that provably never
  reached the server (connect refused, stale keep-alive) is always
  retryable, while an after-send failure (response dropped mid-air) is
  retried only for idempotent requests — and deltas are made idempotent by
  construction, because :meth:`ServiceClient.apply_delta` stamps each one
  with a fresh ``delta_id`` + the cache's ``expected_generation`` so the
  server's applied-delta ledger replays instead of re-applying.
"""

from __future__ import annotations

import json
import random
import time
import uuid
from dataclasses import dataclass, replace
from http.client import HTTPConnection, HTTPException, RemoteDisconnected
from typing import Any, Dict, Optional, Tuple, Union

from .api import (
    DeltaRequest,
    DeltaResponse,
    ServiceError,
    ServiceStats,
    ValidationRequest,
    VerdictResponse,
)

__all__ = ["VerdictCache", "RetryPolicy", "ServiceClient"]


class VerdictCache:
    """A first-class local verdict store keyed ``(graph_id, node, shape)``.

    Entries remember the generation they describe.  :meth:`get` answers only
    when the entry's generation equals the requested one; :meth:`observe`
    advances a graph's high-water generation and drops every entry the
    advance invalidated.  Counters (hits / misses / invalidations) make the
    cache's behaviour testable and benchmarkable.
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, str, str], VerdictResponse] = {}
        self._generations: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def latest_generation(self, graph_id: str) -> Optional[int]:
        return self._generations.get(graph_id)

    def observe(self, graph_id: str, generation: int) -> None:
        """Record that ``graph_id`` is now at ``generation``; invalidate."""
        known = self._generations.get(graph_id)
        if known is not None and generation <= known:
            return
        self._generations[graph_id] = generation
        stale = [key for key, verdict in self._entries.items()
                 if key[0] == graph_id and verdict.generation != generation]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)

    def get(self, graph_id: str, node: str, shape: str,
            generation: Optional[int] = None) -> Optional[VerdictResponse]:
        wanted = generation if generation is not None \
            else self._generations.get(graph_id)
        verdict = self._entries.get((graph_id, node, shape))
        if verdict is not None and (wanted is None
                                    or verdict.generation == wanted):
            self.hits += 1
            return verdict
        self.misses += 1
        return None

    def put(self, graph_id: str, verdict: VerdictResponse,
            shape_key: Optional[str] = None) -> None:
        """Store ``verdict``; ``shape_key`` overrides the cache key's shape
        component (the client uses ``""`` for default-shape queries so the
        next default-shape lookup hits)."""
        self.observe(graph_id, verdict.generation)
        if verdict.generation == self._generations.get(graph_id):
            key_shape = verdict.shape if shape_key is None else shape_key
            self._entries[(graph_id, verdict.node, key_shape)] = verdict

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "invalidations": self.invalidations}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a hard budget.

    ``delay(attempt)`` grows ``base_delay * multiplier**attempt`` capped at
    ``max_delay``, stretched by up to ``jitter`` (a fraction) of itself —
    the jitter stream comes from ``random.Random(seed)``, so a seeded
    policy replays the exact same backoff sequence (chaos tests depend on
    it).  ``budget`` bounds the *total* wall-clock time spent sleeping
    between attempts; whichever of ``max_attempts``/``budget`` runs out
    first ends the retry loop with a typed ``retries-exhausted`` error.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    budget: float = 15.0
    seed: Optional[int] = None

    def delay(self, attempt: int, rng: Optional[random.Random]) -> float:
        value = min(self.base_delay * (self.multiplier ** attempt),
                    self.max_delay)
        if self.jitter and rng is not None:
            value *= 1.0 + self.jitter * rng.random()
        return min(value, self.max_delay)


class _TransportFailure(Exception):
    """Internal: one failed send/receive, tagged with retry safety."""

    def __init__(self, message: str, *, retryable: bool,
                 cause: Optional[BaseException]):
        super().__init__(message)
        self.retryable = retryable
        self.cause = cause


class ServiceClient:
    """Blocking HTTP client for a ``repro serve`` endpoint.

    Parameters
    ----------
    host, port:
        the server address.
    cache:
        a :class:`VerdictCache` to use (default: a private fresh one);
        passing one in shares or persists it across clients, GerryDB-style.
    offline:
        answer verdict queries from the cache only and never touch the
        network; a miss raises ``offline-cache-miss`` (503).
    retry:
        the :class:`RetryPolicy` for transport failures and 503/408
        responses (default: a stock policy); ``None`` disables retries
        entirely — every failure surfaces raw and typed on first strike.
    faults:
        an optional :class:`~repro.service.faults.FaultInjector` whose
        ``client.*`` points fire after a request has been fully sent
        (``client.send-then-die``, ``client.timeout``) — deterministic
        stand-ins for the network eating a response.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 80, *,
                 cache: Optional[VerdictCache] = None,
                 offline: bool = False, timeout: float = 60.0,
                 retry: Optional[RetryPolicy] = RetryPolicy(),
                 faults=None):
        self.host = host
        self.port = port
        self.offline = offline
        self.timeout = timeout
        self.cache = cache if cache is not None else VerdictCache()
        self.retry = retry
        self.faults = faults
        self._conn: Optional[HTTPConnection] = None
        self._retry_rng = (random.Random(retry.seed)
                           if retry is not None else None)

    # -- transport -----------------------------------------------------------------
    def _close_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def close(self) -> None:
        """Release the persistent connection (the client stays usable)."""
        self._close_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send_once(self, method: str, path: str, body: Optional[bytes],
                   headers: Dict[str, str], idempotent: bool,
                   ) -> Tuple[int, str, Optional[str]]:
        """One attempt on the persistent connection.

        Returns ``(status, body_text, retry_after)``.  Transport failures
        raise :class:`_TransportFailure` with ``retryable`` already
        classified: a failure *before* the request was sent can always be
        retried; a stale keep-alive (the server closed our idle reused
        connection before this request arrived — ``RemoteDisconnected``
        with nothing read) likewise; any *after-send* failure means the
        server may have processed the request, so it is retried only when
        the request is idempotent.  Every failure drops the connection so
        the next attempt reconnects fresh.
        """
        conn = self._conn
        reused = conn is not None
        if conn is None:
            conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._conn = conn
        sent = False
        try:
            conn.request(method, path, body=body, headers=headers)
            sent = True
            if self.faults is not None:
                if self.faults.fire("client.send-then-die") is not None:
                    self._close_connection()
                    raise _TransportFailure(
                        "connection dropped after the request was fully "
                        "sent (injected fault)",
                        retryable=idempotent, cause=None)
                if self.faults.fire("client.timeout") is not None:
                    self._close_connection()
                    raise _TransportFailure(
                        "timed out waiting for the response (injected "
                        "fault)", retryable=idempotent, cause=None)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            retry_after = response.getheader("Retry-After")
            if response.will_close:
                self._close_connection()
            return response.status, text, retry_after
        except RemoteDisconnected as error:
            self._close_connection()
            if sent and reused:
                # stale keep-alive: the server closed the idle connection
                # before this request arrived, so it was never processed —
                # always safe to retry, idempotent or not.
                raise _TransportFailure(str(error), retryable=True,
                                        cause=error) from error
            raise _TransportFailure(str(error),
                                    retryable=(not sent) or idempotent,
                                    cause=error) from error
        except (HTTPException, OSError) as error:
            self._close_connection()
            raise _TransportFailure(str(error),
                                    retryable=(not sent) or idempotent,
                                    cause=error) from error

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 idempotent: bool = True) -> Dict[str, Any]:
        if self.offline:
            raise ServiceError("offline-cache-miss",
                               f"client is offline; cannot {method} {path}",
                               503)
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        policy = self.retry
        deadline = (time.monotonic() + policy.budget
                    if policy is not None else None)
        attempt = 0
        last_failure: Optional[BaseException] = None
        while True:
            delay: Optional[float] = None
            try:
                status, text, retry_after = self._send_once(
                    method, path, body, headers, idempotent)
            except _TransportFailure as failure:
                if policy is None or not failure.retryable:
                    raise ServiceError(
                        "connection-failed",
                        f"cannot reach {self.host}:{self.port}: {failure}",
                        503) from failure.cause
                last_failure = failure
                delay = policy.delay(attempt, self._retry_rng)
            else:
                if status < 400:
                    data = json.loads(text)
                    generation = data.get("generation")
                    graph_id = data.get("graph_id")
                    if isinstance(generation, int) \
                            and isinstance(graph_id, str):
                        self.cache.observe(graph_id, generation)
                    return data
                error = ServiceError.from_json(text)
                if policy is None or status not in (503, 408):
                    raise error
                last_failure = error
                delay = policy.delay(attempt, self._retry_rng)
                if retry_after is not None:
                    try:
                        delay = max(delay, min(float(retry_after),
                                               policy.max_delay))
                    except ValueError:
                        pass
            attempt += 1
            if attempt >= policy.max_attempts \
                    or (deadline is not None
                        and time.monotonic() + delay > deadline):
                raise ServiceError(
                    "retries-exhausted",
                    f"{method} {path} failed after {attempt} attempt(s): "
                    f"{last_failure}", 503) from last_failure
            time.sleep(delay)

    # -- the lifecycle, client-side --------------------------------------------------
    def load_graph(self, request: ValidationRequest) -> Dict[str, Any]:
        """``POST /graphs``: load + initial full validation on the server.

        Not idempotent (a retried create could register the graph twice),
        so only before-send transport failures are retried.
        """
        data = self._request("POST", "/graphs", request.to_json(),
                             idempotent=False)
        graph_id = data.get("graph_id")
        generation = data.get("generation")
        if isinstance(graph_id, str) and isinstance(generation, int):
            self.cache.observe(graph_id, generation)
        return data

    def apply_delta(self, graph_id: str,
                    request: DeltaRequest) -> DeltaResponse:
        """``POST /graphs/{id}/delta``; the response generation invalidates
        every cached verdict the mutation may have changed.

        Unless the caller already stamped them, the request gets a fresh
        ``delta_id`` and the cache's last-seen generation as
        ``expected_generation`` — which makes the POST *idempotent by
        construction* (the server's ledger replays a retried id) and safe
        to retry even after the request was sent.
        """
        if request.delta_id is None:
            stamp: Dict[str, Any] = {"delta_id": uuid.uuid4().hex}
            if request.expected_generation is None:
                known = self.cache.latest_generation(graph_id)
                if known is not None:
                    stamp["expected_generation"] = known
            request = replace(request, **stamp)
        data = self._request("POST", f"/graphs/{graph_id}/delta",
                             request.to_json(), idempotent=True)
        response = DeltaResponse.from_json(data)
        self.cache.observe(graph_id, response.generation)
        return response

    def verdict(self, graph_id: str, node: str,
                shape: Optional[str] = None,
                include_reason: bool = False,
                allow_degraded: bool = False) -> VerdictResponse:
        """One ``(node, shape)`` verdict, cache first.

        A cache hit never touches the network.  A miss fetches, stores and
        returns; in offline mode a miss raises ``offline-cache-miss``.

        ``allow_degraded=True`` bypasses the cache in both directions: the
        query always reaches the server (a locally cached verdict could
        mask the very staleness being asked about) and a degraded response
        is never cached (it describes a moment mid-outage, not a
        generation the cache can key on).
        """
        shape_key = shape or ""
        if not allow_degraded:
            cached = self.cache.get(graph_id, node, shape_key)
            if cached is not None and (include_reason is False
                                       or cached.reason is not None):
                return cached
        if self.offline:
            raise ServiceError(
                "offline-cache-miss",
                f"offline client has no cached verdict for ({node!r}, "
                f"{shape or '<start>'!r}) at the current generation", 503)
        query = f"node={_quote(node)}"
        if shape:
            query += f"&shape={_quote(shape)}"
        if include_reason:
            query += "&reason=1"
        if allow_degraded:
            query += "&allow_degraded=1"
        data = self._request("GET", f"/graphs/{graph_id}/verdicts?{query}")
        verdict = VerdictResponse.from_json(data)
        if not verdict.degraded:
            self.cache.put(graph_id, verdict, shape_key=shape_key)
            if shape is not None:
                self.cache.put(graph_id, verdict)
        return verdict

    def graph_stats(self, graph_id: str) -> ServiceStats:
        data = self._request("GET", f"/graphs/{graph_id}/stats")
        return ServiceStats.from_json(data)

    def server_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``: liveness + per-graph fleet health."""
        return self._request("GET", "/healthz")

    def drop_graph(self, graph_id: str) -> None:
        """``DELETE /graphs/{id}``.

        A retried drop whose first response was dropped would see
        ``graph-not-found``, so only before-send failures are retried.
        """
        self._request("DELETE", f"/graphs/{graph_id}", idempotent=False)


def _quote(value: str) -> str:
    from urllib.parse import quote

    return quote(value, safe="")
