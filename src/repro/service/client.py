"""A thin blocking client with a generation-invalidated verdict cache.

Modelled on the GerryDB client (profile-based sessions whose persistent
client-side cache is a first-class object): :class:`VerdictCache` can be
constructed, inspected, shared between clients and handed back in — it is
not an anonymous dict hidden in the transport.

The invalidation contract is the graph ``generation`` every server response
carries: a cached verdict is served only while its generation equals the
latest generation the client has seen for that graph; the moment a delta
response (or any response) reports a newer generation, older entries stop
being answers.  ``offline=True`` flips the client into cache-only mode —
hits are served locally, misses raise ``offline-cache-miss`` (HTTP never
happens), so a warmed client keeps answering point queries through server
downtime, at the freshness of its last contact.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Dict, Optional, Tuple, Union

from .api import (
    DeltaRequest,
    DeltaResponse,
    ServiceError,
    ServiceStats,
    ValidationRequest,
    VerdictResponse,
)

__all__ = ["VerdictCache", "ServiceClient"]


class VerdictCache:
    """A first-class local verdict store keyed ``(graph_id, node, shape)``.

    Entries remember the generation they describe.  :meth:`get` answers only
    when the entry's generation equals the requested one; :meth:`observe`
    advances a graph's high-water generation and drops every entry the
    advance invalidated.  Counters (hits / misses / invalidations) make the
    cache's behaviour testable and benchmarkable.
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, str, str], VerdictResponse] = {}
        self._generations: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def latest_generation(self, graph_id: str) -> Optional[int]:
        return self._generations.get(graph_id)

    def observe(self, graph_id: str, generation: int) -> None:
        """Record that ``graph_id`` is now at ``generation``; invalidate."""
        known = self._generations.get(graph_id)
        if known is not None and generation <= known:
            return
        self._generations[graph_id] = generation
        stale = [key for key, verdict in self._entries.items()
                 if key[0] == graph_id and verdict.generation != generation]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)

    def get(self, graph_id: str, node: str, shape: str,
            generation: Optional[int] = None) -> Optional[VerdictResponse]:
        wanted = generation if generation is not None \
            else self._generations.get(graph_id)
        verdict = self._entries.get((graph_id, node, shape))
        if verdict is not None and (wanted is None
                                    or verdict.generation == wanted):
            self.hits += 1
            return verdict
        self.misses += 1
        return None

    def put(self, graph_id: str, verdict: VerdictResponse,
            shape_key: Optional[str] = None) -> None:
        """Store ``verdict``; ``shape_key`` overrides the cache key's shape
        component (the client uses ``""`` for default-shape queries so the
        next default-shape lookup hits)."""
        self.observe(graph_id, verdict.generation)
        if verdict.generation == self._generations.get(graph_id):
            key_shape = verdict.shape if shape_key is None else shape_key
            self._entries[(graph_id, verdict.node, key_shape)] = verdict

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "invalidations": self.invalidations}


class ServiceClient:
    """Blocking HTTP client for a ``repro serve`` endpoint.

    Parameters
    ----------
    host, port:
        the server address.
    cache:
        a :class:`VerdictCache` to use (default: a private fresh one);
        passing one in shares or persists it across clients, GerryDB-style.
    offline:
        answer verdict queries from the cache only and never touch the
        network; a miss raises ``offline-cache-miss`` (503).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 80, *,
                 cache: Optional[VerdictCache] = None,
                 offline: bool = False, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.offline = offline
        self.timeout = timeout
        self.cache = cache if cache is not None else VerdictCache()

    # -- transport -----------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        if self.offline:
            raise ServiceError("offline-cache-miss",
                               f"client is offline; cannot {method} {path}",
                               503)
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") \
                if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServiceError.from_json(text)
            data = json.loads(text)
        except (ConnectionError, OSError) as error:
            raise ServiceError("connection-failed",
                               f"cannot reach {self.host}:{self.port}: {error}",
                               503) from error
        finally:
            connection.close()
        generation = data.get("generation")
        graph_id = data.get("graph_id")
        if isinstance(generation, int) and isinstance(graph_id, str):
            self.cache.observe(graph_id, generation)
        return data

    # -- the lifecycle, client-side --------------------------------------------------
    def load_graph(self, request: ValidationRequest) -> Dict[str, Any]:
        """``POST /graphs``: load + initial full validation on the server."""
        data = self._request("POST", "/graphs", request.to_json())
        graph_id = data.get("graph_id")
        generation = data.get("generation")
        if isinstance(graph_id, str) and isinstance(generation, int):
            self.cache.observe(graph_id, generation)
        return data

    def apply_delta(self, graph_id: str,
                    request: DeltaRequest) -> DeltaResponse:
        """``POST /graphs/{id}/delta``; the response generation invalidates
        every cached verdict the mutation may have changed."""
        data = self._request("POST", f"/graphs/{graph_id}/delta",
                             request.to_json())
        response = DeltaResponse.from_json(data)
        self.cache.observe(graph_id, response.generation)
        return response

    def verdict(self, graph_id: str, node: str,
                shape: Optional[str] = None,
                include_reason: bool = False) -> VerdictResponse:
        """One ``(node, shape)`` verdict, cache first.

        A cache hit never touches the network.  A miss fetches, stores and
        returns; in offline mode a miss raises ``offline-cache-miss``.
        """
        shape_key = shape or ""
        cached = self.cache.get(graph_id, node, shape_key)
        if cached is not None and (include_reason is False
                                   or cached.reason is not None):
            return cached
        if self.offline:
            raise ServiceError(
                "offline-cache-miss",
                f"offline client has no cached verdict for ({node!r}, "
                f"{shape or '<start>'!r}) at the current generation", 503)
        query = f"node={_quote(node)}"
        if shape:
            query += f"&shape={_quote(shape)}"
        if include_reason:
            query += "&reason=1"
        data = self._request("GET", f"/graphs/{graph_id}/verdicts?{query}")
        verdict = VerdictResponse.from_json(data)
        self.cache.put(graph_id, verdict, shape_key=shape_key)
        if shape is not None:
            self.cache.put(graph_id, verdict)
        return verdict

    def graph_stats(self, graph_id: str) -> ServiceStats:
        data = self._request("GET", f"/graphs/{graph_id}/stats")
        return ServiceStats.from_json(data)

    def server_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def drop_graph(self, graph_id: str) -> None:
        self._request("DELETE", f"/graphs/{graph_id}")


def _quote(value: str) -> str:
    from urllib.parse import quote

    return quote(value, safe="")
