"""Deterministic fault injection for the validation service.

Every failure mode the service's resilience machinery handles — worker
crashes around a delta, dropped queue responses, stalled workers, reset
connections, truncated or delayed HTTP responses, clients that die after
sending — is reachable *on demand* through a named **injection point**.  A
:class:`FaultPlan` is a small, picklable, JSON-serialisable schedule that
says *which* points fire on *which* occurrence; a :class:`FaultInjector`
evaluates the plan at runtime, counting consultations per point, so the
same seed replays the same failure sequence every run.  Chaos tests
(``tests/test_chaos.py``) draw seeds, generate plans with
:meth:`FaultPlan.random`, and assert the service converges to verdicts
byte-identical to a fault-free run; the CI ``chaos-smoke`` job replays one
fixed seed on every push and uploads the schedule on failure.

The injection-point catalogue (:data:`FAULT_POINTS`):

==============================  ===============================================
point                           effect at the site
==============================  ===============================================
``fleet.crash-before-apply``    shard worker ``os._exit``\\ s before applying a
                                staged delta to its replica
``fleet.crash-after-apply``     worker applies the delta, then dies before
                                responding (the classic "did it commit?" case)
``fleet.crash-before-revalidate``  worker dies before running its incremental
                                round (no baseline has moved)
``fleet.crash-after-revalidate``   worker advances its shard-local baseline,
                                then dies before reporting (partial round)
``fleet.drop-response``         worker computes a response but never enqueues
                                it; the coordinator times out and marks the
                                worker failed
``fleet.stall``                 worker sleeps ``delay`` seconds before
                                responding (a slow, not dead, shard)
``server.connection-reset``     HTTP server closes the connection without
                                sending any response (dropped response)
``server.delay-response``       HTTP server sleeps ``delay`` seconds before
                                writing the response
``server.truncate-response``    HTTP server declares the full Content-Length
                                but sends only half the body, then closes
``client.send-then-die``        client drops its connection after the request
                                was fully sent, before reading the response
``client.timeout``              client raises a timeout after sending, as if
                                the response never arrived
==============================  ===============================================

Worker processes rebuild their own injector from the shipped plan
(counters are per process, so occurrence indices are deterministic per
shard); the HTTP server and the client consult in-process injectors.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["FAULT_POINTS", "FaultSpec", "FaultPlan", "FaultInjector"]

#: the full injection-point catalogue (see the module docstring table).
FAULT_POINTS: Tuple[str, ...] = (
    "fleet.crash-before-apply",
    "fleet.crash-after-apply",
    "fleet.crash-before-revalidate",
    "fleet.crash-after-revalidate",
    "fleet.drop-response",
    "fleet.stall",
    "server.connection-reset",
    "server.delay-response",
    "server.truncate-response",
    "client.send-then-die",
    "client.timeout",
)

#: points whose effect is a delay rather than a death; ``random`` plans give
#: these a small non-zero ``delay``.
_DELAY_POINTS = frozenset({"fleet.stall", "server.delay-response"})

#: points evaluated inside shard worker processes; only these take a
#: ``shard`` restriction.
_FLEET_POINTS = tuple(point for point in FAULT_POINTS
                      if point.startswith("fleet."))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``point`` on the listed occurrence indices.

    ``hits`` are 0-based consultation counts *of that point* in the process
    evaluating the plan (each worker, the server and the client count
    independently).  ``shard`` restricts a fleet point to one worker;
    ``None`` matches every shard.  ``delay`` parameterises the stall/delay
    points (seconds).
    """

    point: str
    hits: Tuple[int, ...] = (0,)
    shard: Optional[int] = None
    delay: float = 0.0

    def __post_init__(self):
        if self.point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {self.point!r} "
                             f"(catalogue: {', '.join(FAULT_POINTS)})")
        object.__setattr__(self, "hits", tuple(sorted(set(self.hits))))

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"point": self.point,
                                   "hits": list(self.hits)}
        if self.shard is not None:
            payload["shard"] = self.shard
        if self.delay:
            payload["delay"] = self.delay
        return payload

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(point=data["point"],
                   hits=tuple(data.get("hits", (0,))),
                   shard=data.get("shard"),
                   delay=data.get("delay", 0.0))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule: a tuple of :class:`FaultSpec`.

    Plans are frozen, picklable (they ship to shard workers at spawn) and
    JSON round-trippable (the chaos CI job uploads the schedule that failed
    so the exact run can be replayed locally with the same seed).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "specs": [spec.to_json() for spec in self.specs]}
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec.from_json(item)
                               for item in data.get("specs", ())),
                   seed=data.get("seed"))

    @classmethod
    def random(cls, seed: int, *,
               points: Sequence[str] = _FLEET_POINTS,
               shards: int = 2,
               slots: int = 3,
               rate: float = 0.5,
               max_hit: int = 2,
               delay: float = 0.2) -> "FaultPlan":
        """A seeded random schedule over ``points``.

        Each of ``slots`` independent draws adds one fault with probability
        ``rate``: a random point, a random target shard (fleet points
        only), and a random occurrence index in ``[0, max_hit)``.  The same
        seed always yields the same plan — chaos tests log only the seed.
        """
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for _ in range(slots):
            if rng.random() >= rate:
                continue
            point = points[rng.randrange(len(points))]
            shard = (rng.randrange(shards)
                     if point.startswith("fleet.") else None)
            specs.append(FaultSpec(
                point=point,
                hits=(rng.randrange(max_hit),),
                shard=shard,
                delay=delay if point in _DELAY_POINTS else 0.0))
        return cls(specs=tuple(specs), seed=seed)


@dataclass
class FaultInjector:
    """Runtime evaluator of a :class:`FaultPlan` for one process/scope.

    ``fire(point)`` increments the point's consultation counter and returns
    the matching :class:`FaultSpec` when the plan schedules a fault at that
    occurrence (else ``None``); the *site* implements the effect, so a
    point with no injector (or no match) costs one dict lookup.  Fired
    events are recorded in :attr:`fired` for assertions and artifacts.
    Thread-safe: the HTTP server consults one injector from many handler
    threads.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    shard: Optional[int] = None

    def __post_init__(self):
        if self.plan is None:
            self.plan = FaultPlan()
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.fired: List[Dict[str, Any]] = []

    def fire(self, point: str, shard: Optional[int] = None
             ) -> Optional[FaultSpec]:
        """Consult ``point``; return the scheduled spec if it fires now."""
        scope_shard = self.shard if shard is None else shard
        with self._lock:
            occurrence = self._counts.get(point, 0)
            self._counts[point] = occurrence + 1
            for spec in self.plan.specs:
                if spec.point != point:
                    continue
                if spec.shard is not None and scope_shard is not None \
                        and spec.shard != scope_shard:
                    continue
                if occurrence in spec.hits:
                    self.fired.append({"point": point,
                                       "occurrence": occurrence,
                                       "shard": scope_shard})
                    return spec
        return None

    def counts(self) -> Dict[str, int]:
        """Consultation counters per point (a copy)."""
        with self._lock:
            return dict(self._counts)
