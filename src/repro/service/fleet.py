"""Resident shard fleet: persistent worker processes with shard-local state.

PR 7's ``--shards N`` re-forked a process pool on every run and shipped a
fresh neighbourhood snapshot each time.  This module keeps the shard workers
**resident** for the lifetime of a session, the way a serving fleet keeps
model replicas warm:

* each worker owns a full **shard-local graph replica** with its own bounded
  :class:`~repro.rdf.journal.ChangeJournal`,
* each worker runs a :class:`~repro.shex.validator.Validator` restricted (via
  ``subject_filter``) to the subjects its shard owns by
  :func:`shard_of` — so the worker maintains a shard-local incremental
  baseline and runs the PR 5 revalidate loop locally,
* deltas are **broadcast** to every replica (replicas must stay whole so
  cross-shard reference targets keep deriving from shard-local state), while
  the revalidation *work* is hash-partitioned by subject ownership,
* only **settled** verdicts ever travel back to the coordinator, under the
  same merge protocol as the SCC scheduler and the re-fork shard path.

The coordinator talks to each worker over an explicit request/response queue
pair.  Commands: ``load`` (replica + warm full run), ``apply`` (one delta
batch), ``check`` (can a restricted round be answered without mutating?),
``revalidate`` (the shard-local incremental round), ``run`` (full owned
re-run on the resident replica), ``verdicts`` (baseline lookups), ``stats``
and ``shutdown``.  ``check`` before ``revalidate`` makes the round
two-phase: a journal overflow on *one* shard surfaces as a typed fallback
before *any* shard has advanced its baseline, so sibling shards are never
corrupted by a partial round.

Worker death is detected by polling liveness while waiting for a response
and surfaces as a typed 503 (``fleet-worker-died``); the next fleet
operation respawns and warm-loads the dead worker from the coordinator's
current graph.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import sys
import time
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..rdf.graph import Graph
from ..shex.cache import DerivativeCache
from ..shex.validator import (
    IncrementalFallback,
    Validator,
    get_engine,
)
from .api import ServiceError
from .faults import FaultInjector, FaultPlan

__all__ = ["ShardFleet", "shard_of"]


def shard_of(node, shards: int) -> int:
    """The shard owning ``node``: ``crc32`` of its N-Triples rendering.

    Deterministic across processes and interpreter runs (unlike python's
    salted ``hash``), so a client, the coordinator and every worker agree on
    the partition without coordination.
    """
    return zlib.crc32(node.n3().encode("utf-8")) % shards


class _OwnedBy:
    """Picklable-by-construction ownership predicate for one shard."""

    __slots__ = ("shards", "shard_index")

    def __init__(self, shards: int, shard_index: int):
        self.shards = shards
        self.shard_index = shard_index

    def __call__(self, node) -> bool:
        return shard_of(node, self.shards) == self.shard_index


class _ShardReplica:
    """Worker-side state: the shard-local graph, journal and validator."""

    def __init__(self, shard_index: int, shards: int, schema, engine_spec,
                 compiled, triples, max_recursion_depth: int,
                 recursion_limit: int, journal_max_entries: int):
        if recursion_limit > sys.getrecursionlimit():
            sys.setrecursionlimit(recursion_limit)
        self.shard_index = shard_index
        self.shards = shards
        self.graph = Graph(journal_max_entries=journal_max_entries)
        with self.graph.batch():
            self.graph.add_all(triples)
        name, options, cache_bound = engine_spec
        options = dict(options)
        if options.get("cache") is True and cache_bound is not None:
            options["cache"] = DerivativeCache(max_entries=cache_bound)
        engine = get_engine(name, **options)
        self.validator = Validator(
            self.graph, schema, engine=engine, shared_context=True, jobs=1,
            precompile=compiled is not None, compiled=compiled,
            max_recursion_depth=max_recursion_depth,
            subject_filter=_OwnedBy(shards, shard_index),
        )
        self.rounds = 0
        self.full_runs = 0

    # -- commands -------------------------------------------------------------
    def run(self, labels) -> Tuple[list, list, list]:
        """Full owned validation; returns (entries, confirmed, failed)."""
        report = self.validator.validate_graph(labels=list(labels) or None)
        self.full_runs += 1
        context = self.validator._bulk_context()
        confirmed, failed = context.settled_verdicts()
        return list(report.entries), list(confirmed), list(failed)

    def apply(self, add, remove) -> int:
        """Apply one delta batch to the replica; returns the generation."""
        with self.graph.batch():
            if add:
                self.graph.add_all(add)
            if remove:
                self.graph.remove_all(remove)
        return self.graph.generation

    def check(self, labels) -> Optional[Tuple[str, str]]:
        """Phase 1 of a restricted round: answerable without mutating?

        Returns ``None`` when the shard-local baseline and journal can
        answer an incremental round, else the ``(reason, message)`` the
        coordinator should raise as :class:`IncrementalFallback` — *before*
        any shard's baseline has moved.
        """
        validator = self.validator
        label_tuple = tuple(labels) if labels \
            else tuple(validator.schema.labels())
        if not validator._incremental_baseline_valid(label_tuple):
            return ("no-baseline",
                    f"shard {self.shard_index} has no usable incremental "
                    "baseline; a full run is required")
        if self.graph.changes_since(validator._incremental_generation) is None:
            return ("journal-overflow",
                    f"shard {self.shard_index}'s change journal overflowed "
                    "since its baseline; the change set is unknowable and a "
                    "full run is required")
        return None

    def revalidate(self, labels) -> Tuple[list, list, list, dict]:
        """The shard-local PR 5 loop; returns only the affected delta.

        ``(delta_entries, confirmed, failed, stats)`` where the settled
        lists are restricted to the round's affected closure — the verdicts
        this round actually (re-)derived.  Unaffected baseline verdicts
        never re-cross the process boundary.
        """
        result = self.validator.revalidate(labels=list(labels) or None,
                                           allow_full_rebuild=False)
        self.rounds += 1
        context = self.validator._bulk_context()
        confirmed, failed = context.settled_verdicts()
        affected = result.affected
        new_confirmed = [pair for pair in confirmed if pair[0] in affected]
        new_failed = [pair for pair in failed if pair[0] in affected]
        return (list(result.delta.entries), new_confirmed, new_failed,
                result.stats())

    def verdicts(self, pairs) -> list:
        """Baseline entries for ``pairs`` (``None`` → the whole baseline)."""
        table = self.validator._incremental_entries or {}
        if pairs is None:
            return list(table.values())
        return [table.get(tuple(pair)) for pair in pairs]

    def baseline(self, pairs) -> Tuple[Optional[int], list]:
        """Like :meth:`verdicts`, plus the shard-local baseline generation.

        Degraded reads need both: a live shard's replica may be *ahead of or
        behind* the coordinator's baseline after a partial round, and the
        caller must report the generation each served verdict describes.
        """
        return self.validator._incremental_generation, self.verdicts(pairs)

    def stats(self) -> Dict[str, Any]:
        return {
            "shard": self.shard_index,
            "triples": len(self.graph),
            "generation": self.graph.generation,
            "rounds": self.rounds,
            "full_runs": self.full_runs,
            "maintained_pairs": len(self.validator._incremental_entries or ()),
            "journal": dict(self.graph.journal.stats()),
        }


def _maybe_crash(injector: Optional[FaultInjector], point: str) -> None:
    """Die like a real crash if ``point`` fires: no cleanup, no response.

    ``os._exit`` (not ``sys.exit``) so no ``finally`` blocks, atexit hooks
    or queue feeder threads get to flush — exactly what a SIGKILL'd or
    OOM-killed worker looks like to the coordinator.
    """
    if injector is not None and injector.fire(point) is not None:
        os._exit(1)


def _respond(responses: multiprocessing.Queue,
             injector: Optional[FaultInjector], message) -> None:
    """Enqueue one response, subject to the stall/drop injection points."""
    if injector is not None:
        spec = injector.fire("fleet.stall")
        if spec is not None and spec.delay > 0:
            time.sleep(spec.delay)
        if injector.fire("fleet.drop-response") is not None:
            return
    responses.put(message)


def _fleet_worker_main(shard_index: int, shards: int,
                       requests: multiprocessing.Queue,
                       responses: multiprocessing.Queue,
                       fault_plan: Optional[FaultPlan] = None) -> None:
    """One resident worker: a command loop over the shard replica.

    Every response is tagged: ``("ok", payload)``, ``("fallback",
    (reason, message))`` for a declared incremental fallback, or
    ``("error", message)`` for anything else — the worker never dies on a
    request-level failure, only on queue breakage or ``shutdown``.

    When a :class:`FaultPlan` was shipped at spawn, the worker rebuilds its
    own :class:`FaultInjector` scoped to its shard index; the crash points
    straddle the ``apply`` and ``revalidate`` commands and every response
    passes the stall/drop points.  Occurrence counters are per process, so
    a respawned worker starts counting from zero — deterministic given the
    command sequence it sees.
    """
    injector = (FaultInjector(fault_plan, shard=shard_index)
                if fault_plan else None)
    replica: Optional[_ShardReplica] = None
    while True:
        try:
            command, payload = requests.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        try:
            if command == "shutdown":
                responses.put(("ok", None))
                break
            if command == "load":
                (schema, engine_spec, compiled, triples, labels,
                 max_recursion_depth, recursion_limit,
                 journal_max_entries) = payload
                replica = _ShardReplica(
                    shard_index, shards, schema, engine_spec, compiled,
                    triples, max_recursion_depth, recursion_limit,
                    journal_max_entries)
                _respond(responses, injector, ("ok", replica.run(labels)))
            elif command == "stats":
                _respond(responses, injector,
                         ("ok", replica.stats() if replica is not None
                          else {"shard": shard_index, "loaded": False}))
            elif replica is None:
                _respond(responses, injector,
                         ("error",
                          f"shard {shard_index} received {command!r} "
                          "before 'load'"))
            elif command == "run":
                _respond(responses, injector, ("ok", replica.run(payload)))
            elif command == "apply":
                _maybe_crash(injector, "fleet.crash-before-apply")
                generation = replica.apply(*payload)
                _maybe_crash(injector, "fleet.crash-after-apply")
                _respond(responses, injector, ("ok", generation))
            elif command == "check":
                _respond(responses, injector, ("ok", replica.check(payload)))
            elif command == "revalidate":
                _maybe_crash(injector, "fleet.crash-before-revalidate")
                outcome = replica.revalidate(payload)
                _maybe_crash(injector, "fleet.crash-after-revalidate")
                _respond(responses, injector, ("ok", outcome))
            elif command == "verdicts":
                _respond(responses, injector,
                         ("ok", replica.verdicts(payload)))
            elif command == "baseline":
                _respond(responses, injector,
                         ("ok", replica.baseline(payload)))
            else:
                _respond(responses, injector,
                         ("error", f"unknown fleet command {command!r}"))
        except IncrementalFallback as error:
            _respond(responses, injector,
                     ("fallback", (error.reason, str(error))))
        except Exception as error:  # noqa: BLE001 — report, don't die
            _respond(responses, injector,
                     ("error", f"{type(error).__name__}: {error}"))


class _FleetWorker:
    """Coordinator-side handle on one resident worker process."""

    __slots__ = ("index", "process", "requests", "responses", "loaded",
                 "failed")

    def __init__(self, index: int, process, requests, responses):
        self.index = index
        self.process = process
        self.requests = requests
        self.responses = responses
        self.loaded = False
        self.failed = False


class ShardFleet:
    """The coordinator's handle on a set of resident shard workers.

    Owns process lifecycle (spawn, liveness, respawn accounting, shutdown)
    and the request/response plumbing; the *scheduling* (what to broadcast,
    how to merge) lives in :class:`~repro.service.sharding.ShardedValidator`.
    """

    def __init__(self, shards: int, *, response_timeout: float = 120.0,
                 journal_limits: Optional[Sequence[Optional[int]]] = None,
                 fault_plan: Optional[FaultPlan] = None):
        if shards < 2:
            raise ValueError("a shard fleet needs at least 2 shards")
        self.shards = shards
        self.response_timeout = response_timeout
        #: optional per-shard journal-bound overrides (test hook); ``None``
        #: entries fall back to the coordinator graph's bound.
        self.journal_limits = list(journal_limits) if journal_limits else None
        #: deterministic fault schedule shipped to every worker at spawn;
        #: each worker scopes its own injector to its shard index.
        self.fault_plan = fault_plan if fault_plan else None
        self.workers: List[_FleetWorker] = []
        self.respawns = 0
        self._ctx = multiprocessing.get_context()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self._check_open()
        if self.workers:
            return
        self.workers = [self._spawn(index) for index in range(self.shards)]

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError(
                "fleet-closed",
                "the shard fleet has been shut down; spawning workers on a "
                "closed fleet is not allowed — create a new session instead",
                409)

    def _spawn(self, index: int) -> _FleetWorker:
        requests = self._ctx.Queue()
        responses = self._ctx.Queue()
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(index, self.shards, requests, responses, self.fault_plan),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        return _FleetWorker(index, process, requests, responses)

    def respawn(self, worker: _FleetWorker) -> _FleetWorker:
        """Replace a dead worker with a fresh (unloaded) process."""
        self._check_open()
        if worker.process is not None and worker.process.is_alive():
            worker.process.terminate()
        fresh = self._spawn(worker.index)
        self.workers[worker.index] = fresh
        self.respawns += 1
        return fresh

    def shutdown(self, *, force: bool = False) -> None:
        """Stop every worker: graceful ``shutdown`` command, then terminate."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            process = worker.process
            if process is None or not process.is_alive():
                continue
            try:
                if force:
                    process.terminate()
                else:
                    worker.requests.put(("shutdown", None))
            except (ValueError, OSError):  # queue already closed
                process.terminate()
        for worker in self.workers:
            process = worker.process
            if process is None:
                continue
            process.join(timeout=2 if not force else 0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1)
        self.workers = []

    def __del__(self):
        # GC safety net: a leaked fleet must not strand daemon processes.
        try:
            self.shutdown(force=True)
        except Exception:
            pass

    # -- request plumbing -----------------------------------------------------
    def send(self, worker: _FleetWorker, command: str, payload=None) -> None:
        worker.requests.put((command, payload))

    def collect(self, worker: _FleetWorker):
        """One response from ``worker``; typed 503 on death or timeout.

        Returns the tagged ``(kind, payload)`` tuple the worker produced.
        """
        deadline = time.monotonic() + self.response_timeout
        while True:
            try:
                return worker.responses.get(timeout=0.2)
            except queue.Empty:
                if worker.process is None or not worker.process.is_alive():
                    worker.failed = True
                    worker.loaded = False
                    raise ServiceError(
                        "fleet-worker-died",
                        f"shard {worker.index}'s resident worker died "
                        "mid-request; it will be respawned and warm-loaded "
                        "on the next fleet operation",
                        503) from None
                if time.monotonic() > deadline:
                    worker.failed = True
                    worker.loaded = False
                    raise ServiceError(
                        "fleet-worker-died",
                        f"shard {worker.index}'s resident worker is "
                        f"unresponsive (no reply in {self.response_timeout}s)",
                        503) from None

    def request(self, worker: _FleetWorker, command: str, payload=None):
        """Send one command and unwrap its ``ok`` response.

        Raises :class:`IncrementalFallback` on a declared fallback,
        :class:`ServiceError` on worker death/timeouts, ``RuntimeError`` on
        a worker-side exception.
        """
        self.send(worker, command, payload)
        kind, value = self.collect(worker)
        if kind == "ok":
            return value
        if kind == "fallback":
            reason, message = value
            raise IncrementalFallback(reason, message)
        raise RuntimeError(f"shard {worker.index} worker error: {value}")

    def broadcast(self, command: str, payloads, *, per_worker: bool = False,
                  tolerate_death: bool = False) -> List[Any]:
        """Send to every live worker first, then collect — true parallelism.

        ``payloads`` is one shared payload, or (``per_worker=True``) a list
        indexed by shard.  Responses are unwrapped like :meth:`request`; the
        first fallback or error wins, but every outstanding response is
        drained first so the queues stay aligned with the command stream.
        With ``tolerate_death=True`` a worker dying mid-broadcast is only
        *marked* failed (for later respawn) instead of failing the call —
        used when staging deltas, where the surviving replicas must keep up
        regardless.
        """
        targets = [worker for worker in self.workers if not worker.failed]
        if not targets:
            raise ServiceError(
                "fleet-worker-died",
                "no live shard workers remain; the fleet must be reloaded",
                503)
        for worker in targets:
            self.send(worker, command,
                      payloads[worker.index] if per_worker else payloads)
        outcomes: List[Any] = []
        first_error: Optional[BaseException] = None
        for worker in targets:
            try:
                kind, value = self.collect(worker)
            except ServiceError as error:
                if not tolerate_death and first_error is None:
                    first_error = error
                continue
            if kind == "ok":
                outcomes.append(value)
            elif kind == "fallback" and first_error is None:
                reason, message = value
                first_error = IncrementalFallback(reason, message)
            elif kind == "error" and first_error is None:
                first_error = RuntimeError(
                    f"shard {worker.index} worker error: {value}")
        if first_error is not None:
            raise first_error
        return outcomes

    # -- introspection --------------------------------------------------------
    @property
    def live_workers(self) -> int:
        return sum(1 for worker in self.workers
                   if not worker.failed and worker.process is not None
                   and worker.process.is_alive())

    def health(self) -> Dict[str, Any]:
        """Cheap coordinator-side fleet health (no worker round-trips)."""
        return {
            "shards": self.shards,
            "workers_alive": self.live_workers,
            "workers_loaded": sum(1 for w in self.workers if w.loaded),
            "respawns": self.respawns,
            "pids": [worker.process.pid if worker.process is not None else None
                     for worker in self.workers],
        }
