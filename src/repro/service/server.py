"""``repro serve``: validation-as-a-service over stdlib HTTP.

The server loads a schema once, keeps each graph's
:class:`~repro.service.session.ValidationSession` warm (shared context,
compiled schema, global derivative cache, maintained baseline) and answers:

========  ==============================  =======================================
method    path                            body / query → response
========  ==============================  =======================================
POST      ``/graphs``                     :class:`ValidationRequest` → graph id,
                                          generation, conforms (runs the initial
                                          full validation)
POST      ``/graphs/{id}/delta``          :class:`DeltaRequest` →
                                          :class:`DeltaResponse` (journal →
                                          closure → retract → re-run)
GET       ``/graphs/{id}/verdicts``       ``?node=&shape=&reason=`` →
                                          :class:`VerdictResponse`, served from
                                          the maintained typing — never a fresh
                                          run
GET       ``/graphs/{id}/stats``          :class:`ServiceStats`
GET       ``/stats``                      server-wide stats (per-graph blocks)
========  ==============================  =======================================

Transport is ``http.server.ThreadingHTTPServer`` — one OS thread per
connection, no new runtime dependencies; per-graph mutual exclusion lives in
the session lock, so concurrent delta posts serialize and verdict reads
never observe a half-retracted baseline.  :class:`ServiceError` maps to its
``http_status`` with the error JSON as the body; every success response
carries the graph ``generation`` for client-side cache invalidation.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..shex.schema import Schema
from .api import (
    API_VERSION,
    DeltaRequest,
    ServiceError,
    ValidationRequest,
)
from .session import ValidationSession

__all__ = ["ValidationService", "ReproServer", "serve"]

_GRAPH_PATH = re.compile(r"^/graphs/([A-Za-z0-9_.-]+)(?:/([a-z]+))?$")


class ValidationService:
    """The transport-independent core: a registry of warm sessions.

    The HTTP handler (and tests, directly) call these methods; every
    failure is a :class:`ServiceError`, never a bare exception.
    """

    def __init__(self, schema: Optional[Schema] = None, *,
                 jobs: int = 1, shards: int = 0,
                 precompile: bool = True,
                 cache_max_entries: Optional[int] = None):
        self.schema = schema
        self.jobs = jobs
        self.shards = shards
        self.precompile = precompile
        self.cache_max_entries = cache_max_entries
        self._sessions: Dict[str, ValidationSession] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def create_graph(self, request: ValidationRequest) -> Dict[str, Any]:
        """Load a graph, run the initial full validation, register it."""
        session = ValidationSession.from_request(
            request, default_schema=self.schema,
            default_jobs=self.jobs, default_shards=self.shards,
            precompile=self.precompile,
            cache_max_entries=self.cache_max_entries)
        report = session.validate(labels=request.labels)
        with self._lock:
            graph_id = f"g{next(self._ids)}"
            self._sessions[graph_id] = session
        return {
            "version": API_VERSION,
            "graph_id": graph_id,
            "generation": session.generation,
            "conforms": report.conforms,
            "triples": len(session.graph),
            "pairs": len(report),
        }

    def register(self, session: ValidationSession) -> str:
        """Adopt an already-built session (the CLI's ``--data`` preload)."""
        with self._lock:
            graph_id = f"g{next(self._ids)}"
            self._sessions[graph_id] = session
        return graph_id

    def session(self, graph_id: str) -> ValidationSession:
        with self._lock:
            session = self._sessions.get(graph_id)
        if session is None:
            raise ServiceError("graph-not-found",
                               f"no graph {graph_id!r} on this server", 404)
        return session

    def drop_graph(self, graph_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(graph_id, None)
        if session is None:
            raise ServiceError("graph-not-found",
                               f"no graph {graph_id!r} on this server", 404)
        session.close()

    def stats(self) -> Dict[str, Any]:
        """Server-wide stats: one :class:`ServiceStats` block per graph."""
        with self._lock:
            sessions = dict(self._sessions)
        return {
            "version": API_VERSION,
            "graphs": {graph_id: session.stats().to_json()
                       for graph_id, session in sorted(sessions.items())},
        }


def _make_handler(service: ValidationService):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        # -- plumbing -----------------------------------------------------------
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging stays out of stderr (tests, benchmarks)

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> str:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length).decode("utf-8") if length else ""

        def _dispatch(self, method: str) -> None:
            try:
                status, payload = self._route(method)
            except ServiceError as error:
                status, payload = error.http_status, error.to_json()
            except Exception as error:  # noqa: BLE001 - the service boundary
                status = 500
                payload = ServiceError(
                    "internal", f"{type(error).__name__}: {error}",
                    500).to_json()
            self._send_json(status, payload)

        # -- routing ------------------------------------------------------------
        def _route(self, method: str) -> Tuple[int, Dict[str, Any]]:
            split = urlsplit(self.path)
            path = split.path.rstrip("/") or "/"
            query = parse_qs(split.query)
            if method == "GET" and path == "/stats":
                return 200, service.stats()
            if method == "POST" and path == "/graphs":
                request = ValidationRequest.from_json(self._read_body())
                return 201, service.create_graph(request)
            match = _GRAPH_PATH.match(path)
            if not match:
                raise ServiceError("not-found",
                                   f"no route {method} {path}", 404)
            graph_id, tail = match.group(1), match.group(2)
            session = service.session(graph_id)
            if method == "POST" and tail == "delta":
                request = DeltaRequest.from_json(self._read_body())
                response = session.apply_delta(request)
                return 200, response.to_json()
            if method == "GET" and tail == "verdicts":
                node = (query.get("node") or [None])[0]
                if not node:
                    raise ServiceError("bad-request",
                                       "query parameter 'node' is required",
                                       400)
                shape = (query.get("shape") or [None])[0]
                reason = (query.get("reason") or ["0"])[0]
                verdict = session.verdict(
                    node, shape, include_reason=reason in ("1", "true", "yes"))
                return 200, verdict.to_json()
            if method == "GET" and tail == "stats":
                return 200, session.stats().to_json()
            if method == "DELETE" and tail is None:
                service.drop_graph(graph_id)
                return 200, {"version": API_VERSION, "graph_id": graph_id,
                             "dropped": True}
            raise ServiceError("not-found", f"no route {method} {path}", 404)

        def do_GET(self):  # noqa: N802 - stdlib naming
            self._dispatch("GET")

        def do_POST(self):  # noqa: N802
            self._dispatch("POST")

        def do_DELETE(self):  # noqa: N802
            self._dispatch("DELETE")

    return _Handler


class ReproServer:
    """The HTTP front: bind, serve (foreground or background), shut down.

    ``port=0`` binds an ephemeral port (tests, benchmarks); read it back
    from :attr:`port` after construction.
    """

    def __init__(self, service: ValidationService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(service))
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start_background(self) -> "ReproServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(schema: Optional[Schema] = None, *, host: str = "127.0.0.1",
          port: int = 0, jobs: int = 1, shards: int = 0,
          precompile: bool = True,
          cache_max_entries: Optional[int] = None) -> ReproServer:
    """Build a ready-to-start server (the CLI and tests both enter here)."""
    service = ValidationService(schema, jobs=jobs, shards=shards,
                                precompile=precompile,
                                cache_max_entries=cache_max_entries)
    return ReproServer(service, host=host, port=port)
