"""``repro serve``: validation-as-a-service over stdlib HTTP.

The server loads a schema once, keeps each graph's
:class:`~repro.service.session.ValidationSession` warm (shared context,
compiled schema, global derivative cache, maintained baseline) and answers:

========  ==============================  =======================================
method    path                            body / query → response
========  ==============================  =======================================
POST      ``/graphs``                     :class:`ValidationRequest` → graph id,
                                          generation, conforms (runs the initial
                                          full validation)
POST      ``/graphs/{id}/delta``          :class:`DeltaRequest` →
                                          :class:`DeltaResponse` (journal →
                                          closure → retract → re-run)
GET       ``/graphs/{id}/verdicts``       ``?node=&shape=&reason=&allow_degraded=``
                                          → :class:`VerdictResponse`, served
                                          from the maintained typing — never a
                                          fresh run.  ``allow_degraded=1`` lets
                                          a stale-baseline read fall back to
                                          live shard replicas (response carries
                                          ``degraded``/``missing_shards``)
GET       ``/graphs/{id}/stats``          :class:`ServiceStats`
GET       ``/stats``                      server-wide stats (per-graph blocks)
GET       ``/healthz``                    liveness + per-graph fleet health;
                                          always 200, never takes a session
                                          lock (liveness ≠ readiness)
========  ==============================  =======================================

Transport is a hardened ``http.server.ThreadingHTTPServer`` — one OS thread
per connection, no new runtime dependencies, but the connection path is
bounded and timeout-guarded so hostile or unlucky clients cannot pin the
server:

* every connection carries a **socket timeout** (``connection_timeout``): a
  client that connects and never sends is dropped cleanly instead of pinning
  a handler thread forever;
* request bodies are read in a **loop until Content-Length bytes arrive** —
  a slow client's short reads no longer truncate the payload into a
  confusing parse error; a stall mid-body maps to a typed 408, a premature
  EOF to a typed 400, and bodies over ``max_body_bytes`` to a typed 413;
* concurrent connections are **bounded** (``max_connections``): past the
  bound the accept loop blocks, so a connection flood degrades into queueing
  at the listener instead of unbounded thread growth;
* ``shutdown`` detects a serve thread that outlives its deadline,
  force-closes the listener socket and raises a structured
  ``shutdown-timeout`` error instead of silently leaking the listener.

Per-graph mutual exclusion lives in the session lock, so concurrent delta
posts serialize and verdict reads never observe a half-retracted baseline.
:class:`ServiceError` maps to its ``http_status`` with the error JSON as the
body; every success response carries the graph ``generation`` for
client-side cache invalidation.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..shex.schema import Schema
from .api import (
    API_VERSION,
    DeltaRequest,
    ServiceError,
    ValidationRequest,
)
from .session import ValidationSession

__all__ = ["ValidationService", "ReproServer", "serve"]

_GRAPH_PATH = re.compile(r"^/graphs/([A-Za-z0-9_.-]+)(?:/([a-z]+))?$")

#: default cap on request bodies (64 MiB): far above any sane delta, far
#: below what would let one request exhaust the process.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


class ValidationService:
    """The transport-independent core: a registry of warm sessions.

    The HTTP handler (and tests, directly) call these methods; every
    failure is a :class:`ServiceError`, never a bare exception.
    """

    def __init__(self, schema: Optional[Schema] = None, *,
                 jobs: int = 1, shards: int = 0,
                 resident: bool = True,
                 precompile: bool = True,
                 cache_max_entries: Optional[int] = None,
                 fleet_response_timeout: float = 120.0,
                 fault_plan=None,
                 delta_ledger_size: int = 256):
        self.schema = schema
        self.jobs = jobs
        self.shards = shards
        self.resident = resident
        self.precompile = precompile
        self.cache_max_entries = cache_max_entries
        self.fleet_response_timeout = fleet_response_timeout
        self.fault_plan = fault_plan
        self.delta_ledger_size = delta_ledger_size
        self._sessions: Dict[str, ValidationSession] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def create_graph(self, request: ValidationRequest) -> Dict[str, Any]:
        """Load a graph, run the initial full validation, register it."""
        session = ValidationSession.from_request(
            request, default_schema=self.schema,
            default_jobs=self.jobs, default_shards=self.shards,
            default_resident=self.resident,
            precompile=self.precompile,
            cache_max_entries=self.cache_max_entries,
            fleet_response_timeout=self.fleet_response_timeout,
            fault_plan=self.fault_plan,
            delta_ledger_size=self.delta_ledger_size)
        report = session.validate(labels=request.labels)
        with self._lock:
            graph_id = f"g{next(self._ids)}"
            self._sessions[graph_id] = session
        return {
            "version": API_VERSION,
            "graph_id": graph_id,
            "generation": session.generation,
            "conforms": report.conforms,
            "triples": len(session.graph),
            "pairs": len(report),
        }

    def register(self, session: ValidationSession) -> str:
        """Adopt an already-built session (the CLI's ``--data`` preload)."""
        with self._lock:
            graph_id = f"g{next(self._ids)}"
            self._sessions[graph_id] = session
        return graph_id

    def session(self, graph_id: str) -> ValidationSession:
        with self._lock:
            session = self._sessions.get(graph_id)
        if session is None:
            raise ServiceError("graph-not-found",
                               f"no graph {graph_id!r} on this server", 404)
        return session

    def drop_graph(self, graph_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(graph_id, None)
        if session is None:
            raise ServiceError("graph-not-found",
                               f"no graph {graph_id!r} on this server", 404)
        session.close()

    def close(self) -> None:
        """Close every session (releases resident shard fleets)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def stats(self) -> Dict[str, Any]:
        """Server-wide stats: one :class:`ServiceStats` block per graph."""
        with self._lock:
            sessions = dict(self._sessions)
        return {
            "version": API_VERSION,
            "graphs": {graph_id: session.stats().to_json()
                       for graph_id, session in sorted(sessions.items())},
        }

    def healthz(self) -> Dict[str, Any]:
        """Liveness + coarse per-graph fleet health.

        Deliberately takes **no session lock** (the registry lock guards one
        dict copy): a probe must answer even while a long delta holds every
        session busy.  Always served as HTTP 200 — ``status`` says ``ok`` or
        ``degraded`` (some fleet worker down); *liveness* is the fact the
        response arrived at all, readiness is the caller's judgement.
        """
        with self._lock:
            sessions = dict(self._sessions)
        status = "ok"
        graphs: Dict[str, Any] = {}
        for graph_id, session in sorted(sessions.items()):
            info = session.health()
            fleet = info.get("fleet")
            if fleet and fleet.get("workers_alive", 0) < fleet.get("shards", 0):
                status = "degraded"
            graphs[graph_id] = info
        return {"version": API_VERSION, "status": status,
                "graphs": graphs}


def _make_handler(service: ValidationService):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        # -- plumbing -----------------------------------------------------------
        def setup(self):
            # StreamRequestHandler applies self.timeout as the connection's
            # socket timeout; a client that connects and never sends (or
            # stalls mid-request-line) trips it and the stdlib request loop
            # closes the connection instead of pinning this thread forever.
            self.timeout = getattr(self.server, "connection_timeout", None)
            super().setup()

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging stays out of stderr (tests, benchmarks)

        def _drop_connection(self) -> None:
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            truncate = False
            injector = getattr(self.server, "fault_injector", None)
            if injector is not None:
                if injector.fire("server.connection-reset") is not None:
                    # hard-close before a single response byte: the client
                    # sees a reset/EOF with the request's fate unknown.
                    self._drop_connection()
                    return
                spec = injector.fire("server.delay-response")
                if spec is not None and spec.delay > 0:
                    time.sleep(spec.delay)
                truncate = injector.fire("server.truncate-response") is not None
            body = json.dumps(payload).encode("utf-8")
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                if status == 503:
                    # overload/outage responses tell retrying clients when
                    # to come back instead of letting them hammer the server
                    self.send_header("Retry-After", "1")
                self.end_headers()
                if truncate:
                    # declare the full length but deliver half: the client's
                    # read fails mid-body, exercising its reconnect path.
                    self.wfile.write(body[:len(body) // 2])
                    self.wfile.flush()
                    self._drop_connection()
                    return
                self.wfile.write(body)
            except (TimeoutError, OSError):
                # the client is gone (or too slow to take the response);
                # drop the connection rather than crash the handler thread.
                self.close_connection = True

        def _read_body(self) -> str:
            """Read exactly Content-Length bytes, or fail with a typed error.

            A single ``rfile.read(length)`` silently hands a *truncated*
            body to the JSON codec when the client disconnects mid-body —
            the resulting parse error points at the payload instead of the
            transport.  Reading in a loop attributes each failure mode
            precisely: premature EOF → 400 (with byte counts), a stall that
            trips the socket timeout → 408, an oversized declaration → 413
            before a single body byte is read.
            """
            raw_length = self.headers.get("Content-Length")
            if raw_length is None:
                return ""
            try:
                length = int(raw_length)
            except ValueError:
                raise ServiceError(
                    "bad-request",
                    f"invalid Content-Length {raw_length!r}", 400) from None
            if length <= 0:
                return ""
            max_bytes = getattr(self.server, "max_body_bytes", None)
            if max_bytes is not None and length > max_bytes:
                self.close_connection = True
                raise ServiceError(
                    "payload-too-large",
                    f"request body of {length} bytes exceeds this server's "
                    f"{max_bytes}-byte bound", 413)
            chunks = []
            remaining = length
            try:
                while remaining:
                    chunk = self.rfile.read(min(remaining, 65536))
                    if not chunk:
                        self.close_connection = True
                        raise ServiceError(
                            "bad-request",
                            f"request body truncated: Content-Length "
                            f"promised {length} bytes but the connection "
                            f"closed after {length - remaining}", 400)
                    chunks.append(chunk)
                    remaining -= len(chunk)
            except TimeoutError as error:  # socket.timeout alias (3.10+)
                self.close_connection = True
                raise ServiceError(
                    "request-timeout",
                    f"client stalled mid-body: received "
                    f"{length - remaining} of {length} bytes before the "
                    "connection timeout", 408) from error
            try:
                return b"".join(chunks).decode("utf-8")
            except UnicodeDecodeError as error:
                raise ServiceError(
                    "bad-request",
                    f"request body is not valid UTF-8: {error}", 400) \
                    from None

        def _dispatch(self, method: str) -> None:
            try:
                status, payload = self._route(method)
            except ServiceError as error:
                status, payload = error.http_status, error.to_json()
            except Exception as error:  # noqa: BLE001 - the service boundary
                status = 500
                payload = ServiceError(
                    "internal", f"{type(error).__name__}: {error}",
                    500).to_json()
            self._send_json(status, payload)

        # -- routing ------------------------------------------------------------
        def _route(self, method: str) -> Tuple[int, Dict[str, Any]]:
            split = urlsplit(self.path)
            path = split.path.rstrip("/") or "/"
            query = parse_qs(split.query)
            if method == "GET" and path == "/stats":
                return 200, service.stats()
            if method == "GET" and path == "/healthz":
                return 200, service.healthz()
            if method == "POST" and path == "/graphs":
                request = ValidationRequest.from_json(self._read_body())
                return 201, service.create_graph(request)
            match = _GRAPH_PATH.match(path)
            if not match:
                raise ServiceError("not-found",
                                   f"no route {method} {path}", 404)
            graph_id, tail = match.group(1), match.group(2)
            session = service.session(graph_id)
            if method == "POST" and tail == "delta":
                request = DeltaRequest.from_json(self._read_body())
                response = session.apply_delta(request)
                return 200, response.to_json()
            if method == "GET" and tail == "verdicts":
                node = (query.get("node") or [None])[0]
                if not node:
                    raise ServiceError("bad-request",
                                       "query parameter 'node' is required",
                                       400)
                shape = (query.get("shape") or [None])[0]
                reason = (query.get("reason") or ["0"])[0]
                degraded = (query.get("allow_degraded") or ["0"])[0]
                verdict = session.verdict(
                    node, shape,
                    include_reason=reason in ("1", "true", "yes"),
                    allow_degraded=degraded in ("1", "true", "yes"))
                return 200, verdict.to_json()
            if method == "GET" and tail == "stats":
                return 200, session.stats().to_json()
            if method == "DELETE" and tail is None:
                service.drop_graph(graph_id)
                return 200, {"version": API_VERSION, "graph_id": graph_id,
                             "dropped": True}
            raise ServiceError("not-found", f"no route {method} {path}", 404)

        def do_GET(self):  # noqa: N802 - stdlib naming
            self._dispatch("GET")

        def do_POST(self):  # noqa: N802
            self._dispatch("POST")

        def do_DELETE(self):  # noqa: N802
            self._dispatch("DELETE")

    return _Handler


class _HardenedHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection, but bounded and timeout-guarded.

    A :class:`~threading.BoundedSemaphore` caps the number of in-flight
    connections: past ``max_connections`` the accept loop blocks until a
    handler finishes, so a connection flood queues at the listener backlog
    instead of growing threads without bound.  ``connection_timeout`` and
    ``max_body_bytes`` are read by the handler (see ``_make_handler``).
    """

    daemon_threads = True
    request_queue_size = 128

    def __init__(self, server_address, handler_class, *,
                 connection_timeout: Optional[float] = None,
                 max_connections: Optional[int] = None,
                 max_body_bytes: Optional[int] = DEFAULT_MAX_BODY_BYTES,
                 fault_injector=None):
        self.connection_timeout = connection_timeout
        self.max_body_bytes = max_body_bytes
        #: shared across handler threads (the injector is thread-safe);
        #: ``None`` keeps the fault hooks to one attribute lookup.
        self.fault_injector = fault_injector
        self._connection_slots = (
            threading.BoundedSemaphore(max_connections)
            if max_connections else None)
        super().__init__(server_address, handler_class)

    def process_request(self, request, client_address):
        if self._connection_slots is not None:
            self._connection_slots.acquire()
        try:
            super().process_request(request, client_address)
        except BaseException:
            if self._connection_slots is not None:
                self._connection_slots.release()
            raise

    def process_request_thread(self, request, client_address):
        try:
            super().process_request_thread(request, client_address)
        finally:
            if self._connection_slots is not None:
                self._connection_slots.release()


class ReproServer:
    """The HTTP front: bind, serve (foreground or background), shut down.

    ``port=0`` binds an ephemeral port (tests, benchmarks); read it back
    from :attr:`port` after construction.
    """

    def __init__(self, service: ValidationService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 connection_timeout: Optional[float] = 30.0,
                 max_connections: Optional[int] = 64,
                 max_body_bytes: Optional[int] = DEFAULT_MAX_BODY_BYTES,
                 shutdown_timeout: float = 5.0,
                 faults=None):
        self.service = service
        self.shutdown_timeout = shutdown_timeout
        self.faults = faults
        self._httpd = _HardenedHTTPServer(
            (host, port), _make_handler(service),
            connection_timeout=connection_timeout,
            max_connections=max_connections,
            max_body_bytes=max_body_bytes,
            fault_injector=faults)
        self._thread: Optional[threading.Thread] = None
        self._serving = threading.Event()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def serve_forever(self) -> None:
        self._serving.set()
        self._httpd.serve_forever()

    def start_background(self) -> "ReproServer":
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving, close the listener, release every session.

        ``BaseServer.shutdown()`` blocks until the serve loop acknowledges —
        *forever*, if the loop is stuck (or was never entered).  It therefore
        runs on a disposable thread bounded by ``shutdown_timeout``; a serve
        thread that outlives the deadline is reported as a structured
        ``shutdown-timeout`` error **after** the listener socket has been
        force-closed and the sessions released, so nothing leaks even on the
        failure path.
        """
        stuck = False
        if self._serving.is_set():
            closer = threading.Thread(target=self._httpd.shutdown,
                                      name="repro-serve-closer", daemon=True)
            closer.start()
            closer.join(timeout=self.shutdown_timeout)
            stuck = closer.is_alive()
            if not stuck and self._thread is not None:
                self._thread.join(timeout=self.shutdown_timeout)
                stuck = self._thread.is_alive()
        try:
            self._httpd.server_close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._thread = None
        self.service.close()
        if stuck:
            raise ServiceError(
                "shutdown-timeout",
                f"the serve thread survived shutdown for "
                f"{self.shutdown_timeout}s; the listener socket was "
                "force-closed and every session released, but the thread "
                "may still hold a stuck in-flight request", 500)

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(schema: Optional[Schema] = None, *, host: str = "127.0.0.1",
          port: int = 0, jobs: int = 1, shards: int = 0,
          resident: bool = True,
          precompile: bool = True,
          cache_max_entries: Optional[int] = None,
          connection_timeout: Optional[float] = 30.0,
          max_connections: Optional[int] = 64,
          max_body_bytes: Optional[int] = DEFAULT_MAX_BODY_BYTES,
          shutdown_timeout: float = 5.0,
          fleet_response_timeout: float = 120.0,
          faults=None) -> ReproServer:
    """Build a ready-to-start server (the CLI and tests both enter here).

    ``faults`` is an optional :class:`~repro.service.faults.FaultInjector`:
    its ``server.*`` points hook the HTTP response path in-process, and its
    plan is shipped to every resident shard worker (the ``fleet.*`` points).
    """
    service = ValidationService(
        schema, jobs=jobs, shards=shards,
        resident=resident, precompile=precompile,
        cache_max_entries=cache_max_entries,
        fleet_response_timeout=fleet_response_timeout,
        fault_plan=faults.plan if faults is not None else None)
    return ReproServer(service, host=host, port=port,
                       connection_timeout=connection_timeout,
                       max_connections=max_connections,
                       max_body_bytes=max_body_bytes,
                       shutdown_timeout=shutdown_timeout,
                       faults=faults)
