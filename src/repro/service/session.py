"""The :class:`ValidationSession` facade: one lifecycle for every surface.

A session owns a graph, a warm :class:`~repro.shex.validator.Validator`
(shared context, compiled schema, global derivative cache) and a lock, and
exposes the service lifecycle the CLI, the HTTP server and in-process
callers all share:

``validate()``
    the initial (or explicit) full run — records the maintained baseline.
``apply_changes()`` / ``apply_delta()``
    a batched mutation routed through the change journal → closure →
    retraction → re-run loop; serialized by the session lock so two deltas
    can never interleave ``retract_nodes`` with a running validation.
``verdict()``
    a point query answered **from the maintained typing** — no engine, no
    fresh run, ever.  If the baseline cannot answer, the session raises a
    typed :class:`~repro.service.api.ServiceError`; it never silently falls
    back to validating.
``stats()``
    the unified :class:`~repro.service.api.ServiceStats` counters.

Failures surface as :class:`ServiceError` with stable codes (see
``api.py``), which the HTTP layer maps to non-200 statuses verbatim.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..rdf import ColumnarGraph, Graph, ParseError, TripleStore
from ..rdf.errors import GraphError, StaleSnapshotError
from ..rdf.ntriples import iter_ntriples, parse_term
from ..rdf.terms import ObjectTerm, Triple
from ..shex.results import MatchStats
from ..shex.schema import Schema, SchemaError
from ..shex.typing import ShapeLabel
from ..shex.validator import (
    IncrementalFallback,
    RevalidationResult,
    ValidationReport,
    Validator,
)
from .api import (
    DeltaRequest,
    DeltaResponse,
    ServiceStats,
    ValidationRequest,
    VerdictResponse,
)
from .api import ServiceError
from .sharding import ShardedValidator

__all__ = ["ValidationSession", "collect_stats"]

LabelArg = Union[ShapeLabel, str, None]


def collect_stats(validator: Validator, totals: MatchStats,
                  session_info: Optional[dict] = None) -> ServiceStats:
    """Snapshot a validator's subsystem counters into one :class:`ServiceStats`.

    The single source of the unified stats structure: sessions build theirs
    here, and the CLI's non-session paths (``--per-node``) reuse it so
    ``--cache-stats`` output is one format everywhere.
    """
    graph = validator.graph
    try:
        store = dict(graph.store_stats())
    except GraphError:  # pragma: no cover - defensive
        store = {}
    journal = dict(graph.journal.stats()) if hasattr(graph, "journal") else {}
    compiled = validator.compiled
    if compiled is None:
        prefilter = {}
    else:
        prefilter = {
            "accepts": totals.prefilter_accepts,
            "rejects": totals.prefilter_rejects,
            "reference_checks": totals.reference_checks,
            "schema": dict(compiled.stats()),
        }
    cache_obj = getattr(validator.engine, "cache", None)
    if cache_obj is None:
        cache = {}
    else:
        cache = dict(cache_obj.stats())
        cache["hit_rate"] = round(cache_obj.hit_rate, 4)
    signature_obj = getattr(validator, "signature_cache", None)
    if signature_obj is None:
        signature = {}
    else:
        signature = dict(signature_obj.stats())
        signature["hit_rate"] = round(signature_obj.hit_rate, 4)
    context = getattr(validator, "_context", None)
    # the shared context's cumulative stats include the probe/store work that
    # happens *between* per-entry snapshot windows (signature misses, build
    # time); the per-entry totals are the fallback for fresh-context modes.
    profiled = context.stats if context is not None else totals
    profile = {
        "signature_hits": profiled.signature_hits,
        "signature_misses": profiled.signature_misses,
        "signature_dedupes": profiled.signature_dedupes,
        "signature_time": round(profiled.signature_time, 6),
        "prefilter_time": round(profiled.prefilter_time, 6),
        "dispatch_time": round(profiled.dispatch_time, 6),
        "backtrack_time": round(profiled.backtrack_time, 6),
        "cache_time": round(profiled.cache_time, 6),
    }
    if not any(profile.values()):
        profile = {}
    verdicts = dict(context.settled_counts()) if context is not None else {}
    entries = getattr(validator, "_incremental_entries", None)
    verdicts["maintained_pairs"] = len(entries) if entries else 0
    fleet_stats = getattr(validator, "fleet_stats", None)
    fleet = fleet_stats() if callable(fleet_stats) else {}
    return ServiceStats(
        generation=getattr(graph, "generation", 0),
        store=store, journal=journal, prefilter=prefilter,
        cache=cache, signature=signature, profile=profile,
        verdicts=verdicts,
        session=dict(session_info or {}),
        fleet=fleet)


class ValidationSession:
    """A warm, lock-serialized validation lifecycle around one graph.

    Parameters mirror the :class:`Validator` knobs a service exposes:
    ``jobs`` picks the SCC-parallel scheduler, ``shards`` the hash-sharded
    one (``shards > 1`` wins; both ``1`` means serial), ``precompile`` the
    compiled-schema fast paths, ``use_cache``/``cache_max_entries`` the
    global derivative cache, ``use_signature_cache`` the
    neighbourhood-signature verdict dedupe (on by default; CLI
    ``--no-signature-cache``).  The session takes ownership of ``graph``:
    mutate it only through :meth:`apply_changes`, or the maintained baseline
    goes stale and verdict queries start failing with ``stale-baseline``.
    """

    def __init__(self, graph: TripleStore, schema: Schema, *,
                 engine: Union[str, object, None] = None,
                 jobs: int = 1, shards: int = 0,
                 resident: bool = True,
                 precompile: bool = True,
                 use_cache: bool = True,
                 cache_max_entries: Optional[int] = None,
                 use_signature_cache: bool = True,
                 max_recursion_depth: int = 500,
                 fleet_response_timeout: float = 120.0,
                 fault_plan=None,
                 delta_ledger_size: int = 256):
        engine_options = {}
        engine_name = engine if isinstance(engine, str) else None
        if use_cache and engine_name in (None, "derivatives"):
            from ..shex.cache import DerivativeCache

            engine_options["cache"] = DerivativeCache(
                max_entries=cache_max_entries)
        self.graph = graph
        self.schema = schema
        self.jobs = max(jobs, 1)
        self.shards = max(shards, 0)
        if self.shards > 1:
            self.validator: Validator = ShardedValidator(
                graph, schema, engine=engine, shards=self.shards,
                resident=resident, precompile=precompile,
                max_recursion_depth=max_recursion_depth,
                fleet_response_timeout=fleet_response_timeout,
                fault_plan=fault_plan, **engine_options)
        else:
            self.validator = Validator(
                graph, schema, engine=engine, jobs=self.jobs,
                precompile=precompile,
                signature_cache=None if use_signature_cache else False,
                max_recursion_depth=max_recursion_depth, **engine_options)
        self._lock = threading.RLock()
        self._totals = MatchStats()
        self._full_runs = 0
        self._delta_rounds = 0
        self._verdict_queries = 0
        self._closed = False
        #: bounded applied-delta ledger: delta_id → record.  A record exists
        #: from the moment the delta's triples land in the graph, so a retry
        #: after *any* later failure (dropped response, crashed shard) finds
        #: it and never re-applies.  Eviction is FIFO — the ledger size is
        #: the retry window, and a retry older than the window surfaces as
        #: ``generation-conflict`` via ``expected_generation`` instead of
        #: silently double-applying.
        self._ledger: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._ledger_size = max(delta_ledger_size, 1)
        self._replayed_deltas = 0

    # -- construction from the wire ------------------------------------------------
    @classmethod
    def from_request(cls, request: ValidationRequest, *,
                     default_schema: Optional[Schema] = None,
                     default_jobs: int = 1,
                     default_shards: int = 0,
                     default_resident: bool = True,
                     precompile: bool = True,
                     cache_max_entries: Optional[int] = None,
                     use_signature_cache: bool = True,
                     fleet_response_timeout: float = 120.0,
                     fault_plan=None,
                     delta_ledger_size: int = 256,
                     ) -> "ValidationSession":
        """Build a session from a :class:`ValidationRequest` payload.

        Parse failures become typed errors: ``schema-error`` for the ShExC
        text, ``parse-error`` for the RDF payload — the codes the server
        returns as HTTP 400.
        """
        if request.schema:
            try:
                schema = Schema.from_shexc(request.schema)
            except (ParseError, SchemaError) as error:
                raise ServiceError("schema-error", str(error), 400) from error
        elif default_schema is not None:
            schema = default_schema
        else:
            raise ServiceError("schema-error",
                               "no schema in the request and the server has "
                               "no preloaded schema", 400)
        try:
            if request.store == "columnar":
                graph: TripleStore = ColumnarGraph.parse(
                    request.data, format=request.data_format)
            else:
                graph = Graph.parse(request.data, format=request.data_format)
        except ParseError as error:
            raise ServiceError("parse-error", str(error), 400) from error
        jobs = request.jobs if request.jobs is not None else default_jobs
        shards = request.shards if request.shards is not None else default_shards
        if jobs < 1 or shards < 0:
            raise ServiceError("bad-request",
                               "jobs must be >= 1 and shards >= 0", 400)
        return cls(graph, schema, jobs=jobs, shards=shards,
                   resident=default_resident, precompile=precompile,
                   cache_max_entries=cache_max_entries,
                   use_signature_cache=use_signature_cache,
                   fleet_response_timeout=fleet_response_timeout,
                   fault_plan=fault_plan,
                   delta_ledger_size=delta_ledger_size)

    # -- lifecycle -----------------------------------------------------------------
    def validate(self, labels: Optional[Sequence[LabelArg]] = None,
                 jobs: Optional[int] = None) -> ValidationReport:
        """Run (or re-run) the full validation and refresh the baseline."""
        with self._lock:
            self._check_open()
            try:
                report = self.validator.validate_graph(labels=labels, jobs=jobs)
            except StaleSnapshotError as error:
                raise ServiceError("stale-snapshot", str(error), 409) from error
            self._full_runs += 1
            self._totals = report.total_stats()
            return report

    def apply_changes(self, add: Iterable[Triple] = (),
                      remove: Iterable[Triple] = (),
                      labels: Optional[Sequence[LabelArg]] = None,
                      allow_full_rebuild: bool = False,
                      ) -> Tuple[DeltaResponse, RevalidationResult]:
        """Apply one batched mutation and revalidate incrementally.

        The whole edit lands as a single change-journal batch; the
        incremental pass re-runs only the affected closure.  When the
        journal cannot answer (overflow) or no baseline exists, the delta
        *is applied* but revalidation raises ``journal-overflow`` /
        ``no-baseline`` (HTTP 409) unless ``allow_full_rebuild`` opts into
        the unbounded full re-run.  Recovery after the error: send an empty
        delta with ``allow_full_rebuild=True`` (or call :meth:`validate`).
        """
        with self._lock:
            self._check_open()
            return self._apply_and_revalidate(
                list(add), list(remove), labels, allow_full_rebuild)

    def _apply_and_revalidate(self, add: List[Triple], remove: List[Triple],
                              labels, allow_full_rebuild: bool,
                              ledger_record: Optional[Dict[str, Any]] = None,
                              skip_mutation: bool = False,
                              ) -> Tuple[DeltaResponse, RevalidationResult]:
        """The delta core (caller holds the lock): mutate, stage, revalidate.

        With ``skip_mutation=True`` (a ledgered retry whose triples already
        landed) the mutation and fleet staging are skipped and the recorded
        added/removed counts are reused; only the revalidation re-runs —
        the journal still holds the dirty records, so the round converges
        to the same baseline the un-dropped original would have reached.
        """
        graph = self.graph
        if skip_mutation:
            added = ledger_record["added"]
            removed = ledger_record["removed"]
        else:
            added = removed = 0
            with graph.batch():
                if add:
                    before = len(graph)
                    graph.add_all(add)
                    added = len(graph) - before
                if remove:
                    before = len(graph)
                    graph.remove_all(remove)
                    removed = before - len(graph)
            if ledger_record is not None:
                # the point of no return: from here a retry must not
                # re-apply, whatever happens to staging or revalidation.
                ledger_record["applied"] = True
                ledger_record["added"] = added
                ledger_record["removed"] = removed
            # keep resident shard replicas mirroring the coordinator graph:
            # the same delta is broadcast to the fleet before revalidation so
            # each shard's local journal → closure → re-run round sees it.
            stage = getattr(self.validator, "stage_fleet_delta", None)
            if stage is not None:
                stage(add, remove)
        try:
            result = self.validator.revalidate(
                labels=labels, allow_full_rebuild=allow_full_rebuild)
        except IncrementalFallback as error:
            raise ServiceError(error.reason,
                               f"delta applied (+{added}/-{removed}) but "
                               f"not revalidated: {error}", 409) from error
        except StaleSnapshotError as error:
            raise ServiceError("stale-snapshot", str(error), 409) from error
        self._delta_rounds += 1
        self._totals = self._totals.merge(result.delta.total_stats())
        stats = result.stats()
        response = DeltaResponse(
            generation=self.validator.maintained_generation or 0,
            added=added, removed=removed,
            dirty_subjects=stats["dirty_subjects"],
            affected_nodes=stats["affected_nodes"],
            revalidated_pairs=stats["revalidated_pairs"],
            reused_pairs=stats["reused_pairs"],
            retracted_verdicts=stats["retracted_verdicts"],
            full_rebuild=result.full_rebuild,
            conforms=result.report.conforms,
        )
        return response, result

    def apply_delta(self, request: DeltaRequest) -> DeltaResponse:
        """The wire-level delta entry point: N-Triples text in, counters out.

        This is where the exactly-once contract lives.  A request carrying a
        ``delta_id`` is recorded in the bounded per-session ledger *before*
        anything can fail after the mutation; a retry with the same id

        * replays the original :class:`DeltaResponse` verbatim when the
          first attempt completed (the response was dropped on the wire),
        * skips the mutation and re-runs only the revalidation when the
          first attempt applied the triples but died before producing a
          response (a crashed shard mid-round),
        * re-applies from scratch only when the first attempt never reached
          the graph at all.

        ``expected_generation`` (when set) is checked before any new apply:
        a mismatch is a typed ``generation-conflict`` 409 — the guard that
        catches retries old enough to have fallen out of the ledger.
        """
        try:
            add = list(iter_ntriples(request.add)) if request.add else []
            remove = list(iter_ntriples(request.remove)) if request.remove else []
        except ParseError as error:
            raise ServiceError("parse-error", str(error), 400) from error
        fingerprint = (request.add, request.remove, request.labels,
                       request.allow_full_rebuild)
        with self._lock:
            self._check_open()
            delta_id = request.delta_id
            record = self._ledger.get(delta_id) if delta_id else None
            if record is not None:
                if record["fingerprint"] != fingerprint:
                    raise ServiceError(
                        "bad-request",
                        f"delta_id {delta_id!r} was already used for a "
                        "different delta; idempotency keys must be unique "
                        "per edit", 400)
                self._ledger.move_to_end(delta_id)
                if record["response"] is not None:
                    self._replayed_deltas += 1
                    return record["response"]
                if record["applied"]:
                    # triples landed but the original round never produced a
                    # response: finish the revalidation without re-applying.
                    self._replayed_deltas += 1
                    response, _ = self._apply_and_revalidate(
                        add, remove, request.labels,
                        request.allow_full_rebuild,
                        ledger_record=record, skip_mutation=True)
                    record["response"] = response
                    return response
                # the first attempt never mutated the graph — fall through
                # to a fresh apply under the same ledger record.
            if request.expected_generation is not None \
                    and request.expected_generation != self.generation:
                raise ServiceError(
                    "generation-conflict",
                    f"delta expected generation "
                    f"{request.expected_generation} but the graph is at "
                    f"{self.generation}; re-read and re-derive the delta "
                    "before retrying", 409)
            if record is None and delta_id:
                record = {"fingerprint": fingerprint, "applied": False,
                          "added": 0, "removed": 0, "response": None}
                self._ledger[delta_id] = record
                while len(self._ledger) > self._ledger_size:
                    self._ledger.popitem(last=False)
            response, _ = self._apply_and_revalidate(
                add, remove, request.labels, request.allow_full_rebuild,
                ledger_record=record)
            if record is not None:
                record["response"] = response
            return response

    def verdict(self, node: Union[ObjectTerm, str],
                shape: LabelArg = None,
                include_reason: bool = False,
                allow_degraded: bool = False) -> VerdictResponse:
        """Serve one verdict from the maintained typing — never a fresh run.

        ``node`` may be a term or its N-Triples rendering; ``shape`` a label
        or name (default: the schema's start shape).  The response's
        ``generation`` is the baseline generation, which this method
        guarantees equals the graph's current generation — otherwise it
        raises ``stale-baseline`` instead of serving outdated state.

        ``allow_degraded=True`` relaxes exactly that guarantee, explicitly:
        while the baseline is stale (a delta's revalidation died mid-round
        and the fleet has not healed yet), the verdict is served from the
        pair's owning *live* shard replica when possible (whose shard-local
        baseline may already include the delta), else from the
        coordinator's last complete baseline.  Degraded responses carry
        ``degraded=True`` and the ``missing_shards`` that could not answer;
        a fresh baseline makes ``allow_degraded`` a no-op, so healthy reads
        stay byte-identical.
        """
        with self._lock:
            self._check_open()
            self._verdict_queries += 1
            generation = self.validator.maintained_generation
            if generation is None:
                raise ServiceError(
                    "no-baseline",
                    "no maintained baseline; run a full validation first", 409)
            stale = generation != getattr(self.graph, "generation", generation)
            if stale and not allow_degraded:
                raise ServiceError(
                    "stale-baseline",
                    "the graph mutated outside the session; re-run "
                    "validation to refresh the baseline", 409)
            if isinstance(node, str):
                try:
                    term = parse_term(node)
                except ParseError as error:
                    raise ServiceError("parse-error",
                                       f"bad node term: {error}", 400) from error
            else:
                term = node
            try:
                label = self.validator._resolve_label(shape)
            except SchemaError as error:
                raise ServiceError("bad-request", str(error), 400) from error
            if stale:
                return self._degraded_verdict(term, label, generation,
                                              include_reason)
            entry = self.validator.maintained_entry(term, label)
            if entry is None:
                raise ServiceError(
                    "verdict-not-found",
                    f"({term.n3()}, {label.name}) is outside the maintained "
                    f"baseline", 404)
            reason: Optional[str] = None
            if include_reason and entry.reason:
                reason = entry.reason
            return VerdictResponse(node=term.n3(), shape=label.name,
                                   conforms=entry.conforms,
                                   generation=generation, reason=reason)

    def _degraded_verdict(self, term: ObjectTerm, label: ShapeLabel,
                          baseline_generation: int,
                          include_reason: bool) -> VerdictResponse:
        """Best-effort verdict while the coordinator baseline is stale.

        Preference order: the owning live shard's replica baseline (may be
        fresher than the coordinator after a partial round), then the
        coordinator's last complete baseline.  Never heals the fleet —
        degraded reads must stay cheap while the dead shard waits for the
        next write to respawn it.
        """
        missing: Tuple[int, ...] = ()
        degraded_entry = getattr(self.validator, "degraded_entry", None)
        if degraded_entry is not None:
            entry, shard_generation, owner_missing = degraded_entry(term,
                                                                    label)
            dead = getattr(self.validator, "dead_shards", lambda: ())()
            missing = tuple(sorted(set(owner_missing) | set(dead)))
            if entry is not None:
                reason = entry.reason if include_reason and entry.reason \
                    else None
                return VerdictResponse(
                    node=term.n3(), shape=label.name,
                    conforms=entry.conforms,
                    generation=(shard_generation
                                if shard_generation is not None
                                else baseline_generation),
                    reason=reason, degraded=True, missing_shards=missing)
        entry = self.validator.maintained_entry(term, label)
        if entry is None:
            raise ServiceError(
                "verdict-unavailable",
                f"({term.n3()}, {label.name}) cannot be served degraded: "
                "not in any live shard's baseline nor the coordinator's "
                "last complete baseline", 503)
        reason = entry.reason if include_reason and entry.reason else None
        return VerdictResponse(node=term.n3(), shape=label.name,
                               conforms=entry.conforms,
                               generation=baseline_generation,
                               reason=reason, degraded=True,
                               missing_shards=missing)

    # -- observability -------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Snapshot every subsystem counter into one :class:`ServiceStats`."""
        with self._lock:
            self._check_open()
            return collect_stats(self.validator, self._totals, {
                "full_runs": self._full_runs,
                "delta_rounds": self._delta_rounds,
                "verdict_queries": self._verdict_queries,
                "replayed_deltas": self._replayed_deltas,
                "ledger_entries": len(self._ledger),
                "jobs": self.jobs,
                "shards": self.shards,
            })

    def health(self) -> Dict[str, Any]:
        """Cheap liveness info — deliberately **lock-free**.

        ``/healthz`` must answer while a long delta holds the session lock,
        so this reads plain attributes only (python attribute reads are
        atomic enough for a health probe; a torn counter is acceptable, a
        blocked probe is not).  No worker round-trips either: fleet health
        comes from the coordinator-side bookkeeping.
        """
        info: Dict[str, Any] = {
            "closed": self._closed,
            "generation": getattr(self.graph, "generation", 0),
            "maintained_generation":
                getattr(self.validator, "maintained_generation", None),
            "full_runs": self._full_runs,
            "delta_rounds": self._delta_rounds,
            "replayed_deltas": self._replayed_deltas,
        }
        fleet = getattr(self.validator, "_fleet", None)
        if fleet is not None and fleet.workers:
            info["fleet"] = fleet.health()
        return info

    @property
    def generation(self) -> int:
        return getattr(self.graph, "generation", 0)

    def close(self) -> None:
        """Mark the session unusable and release its resident shard fleet."""
        with self._lock:
            self._closed = True
            close_fleet = getattr(self.validator, "close_fleet", None)
            if close_fleet is not None:
                close_fleet()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("session-closed",
                               "this validation session was closed", 409)
