"""The :class:`ValidationSession` facade: one lifecycle for every surface.

A session owns a graph, a warm :class:`~repro.shex.validator.Validator`
(shared context, compiled schema, global derivative cache) and a lock, and
exposes the service lifecycle the CLI, the HTTP server and in-process
callers all share:

``validate()``
    the initial (or explicit) full run — records the maintained baseline.
``apply_changes()`` / ``apply_delta()``
    a batched mutation routed through the change journal → closure →
    retraction → re-run loop; serialized by the session lock so two deltas
    can never interleave ``retract_nodes`` with a running validation.
``verdict()``
    a point query answered **from the maintained typing** — no engine, no
    fresh run, ever.  If the baseline cannot answer, the session raises a
    typed :class:`~repro.service.api.ServiceError`; it never silently falls
    back to validating.
``stats()``
    the unified :class:`~repro.service.api.ServiceStats` counters.

Failures surface as :class:`ServiceError` with stable codes (see
``api.py``), which the HTTP layer maps to non-200 statuses verbatim.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, Tuple, Union

from ..rdf import ColumnarGraph, Graph, ParseError, TripleStore
from ..rdf.errors import GraphError, StaleSnapshotError
from ..rdf.ntriples import iter_ntriples, parse_term
from ..rdf.terms import ObjectTerm, Triple
from ..shex.results import MatchStats
from ..shex.schema import Schema, SchemaError
from ..shex.typing import ShapeLabel
from ..shex.validator import (
    IncrementalFallback,
    RevalidationResult,
    ValidationReport,
    Validator,
)
from .api import (
    DeltaRequest,
    DeltaResponse,
    ServiceStats,
    ValidationRequest,
    VerdictResponse,
)
from .api import ServiceError
from .sharding import ShardedValidator

__all__ = ["ValidationSession", "collect_stats"]

LabelArg = Union[ShapeLabel, str, None]


def collect_stats(validator: Validator, totals: MatchStats,
                  session_info: Optional[dict] = None) -> ServiceStats:
    """Snapshot a validator's subsystem counters into one :class:`ServiceStats`.

    The single source of the unified stats structure: sessions build theirs
    here, and the CLI's non-session paths (``--per-node``) reuse it so
    ``--cache-stats`` output is one format everywhere.
    """
    graph = validator.graph
    try:
        store = dict(graph.store_stats())
    except GraphError:  # pragma: no cover - defensive
        store = {}
    journal = dict(graph.journal.stats()) if hasattr(graph, "journal") else {}
    compiled = validator.compiled
    if compiled is None:
        prefilter = {}
    else:
        prefilter = {
            "accepts": totals.prefilter_accepts,
            "rejects": totals.prefilter_rejects,
            "reference_checks": totals.reference_checks,
            "schema": dict(compiled.stats()),
        }
    cache_obj = getattr(validator.engine, "cache", None)
    if cache_obj is None:
        cache = {}
    else:
        cache = dict(cache_obj.stats())
        cache["hit_rate"] = round(cache_obj.hit_rate, 4)
    context = getattr(validator, "_context", None)
    verdicts = dict(context.settled_counts()) if context is not None else {}
    entries = getattr(validator, "_incremental_entries", None)
    verdicts["maintained_pairs"] = len(entries) if entries else 0
    fleet_stats = getattr(validator, "fleet_stats", None)
    fleet = fleet_stats() if callable(fleet_stats) else {}
    return ServiceStats(
        generation=getattr(graph, "generation", 0),
        store=store, journal=journal, prefilter=prefilter,
        cache=cache, verdicts=verdicts,
        session=dict(session_info or {}),
        fleet=fleet)


class ValidationSession:
    """A warm, lock-serialized validation lifecycle around one graph.

    Parameters mirror the :class:`Validator` knobs a service exposes:
    ``jobs`` picks the SCC-parallel scheduler, ``shards`` the hash-sharded
    one (``shards > 1`` wins; both ``1`` means serial), ``precompile`` the
    compiled-schema fast paths, ``use_cache``/``cache_max_entries`` the
    global derivative cache.  The session takes ownership of ``graph``:
    mutate it only through :meth:`apply_changes`, or the maintained baseline
    goes stale and verdict queries start failing with ``stale-baseline``.
    """

    def __init__(self, graph: TripleStore, schema: Schema, *,
                 engine: Union[str, object, None] = None,
                 jobs: int = 1, shards: int = 0,
                 resident: bool = True,
                 precompile: bool = True,
                 use_cache: bool = True,
                 cache_max_entries: Optional[int] = None,
                 max_recursion_depth: int = 500):
        engine_options = {}
        engine_name = engine if isinstance(engine, str) else None
        if use_cache and engine_name in (None, "derivatives"):
            from ..shex.cache import DerivativeCache

            engine_options["cache"] = DerivativeCache(
                max_entries=cache_max_entries)
        self.graph = graph
        self.schema = schema
        self.jobs = max(jobs, 1)
        self.shards = max(shards, 0)
        if self.shards > 1:
            self.validator: Validator = ShardedValidator(
                graph, schema, engine=engine, shards=self.shards,
                resident=resident, precompile=precompile,
                max_recursion_depth=max_recursion_depth, **engine_options)
        else:
            self.validator = Validator(
                graph, schema, engine=engine, jobs=self.jobs,
                precompile=precompile,
                max_recursion_depth=max_recursion_depth, **engine_options)
        self._lock = threading.RLock()
        self._totals = MatchStats()
        self._full_runs = 0
        self._delta_rounds = 0
        self._verdict_queries = 0
        self._closed = False

    # -- construction from the wire ------------------------------------------------
    @classmethod
    def from_request(cls, request: ValidationRequest, *,
                     default_schema: Optional[Schema] = None,
                     default_jobs: int = 1,
                     default_shards: int = 0,
                     default_resident: bool = True,
                     precompile: bool = True,
                     cache_max_entries: Optional[int] = None,
                     ) -> "ValidationSession":
        """Build a session from a :class:`ValidationRequest` payload.

        Parse failures become typed errors: ``schema-error`` for the ShExC
        text, ``parse-error`` for the RDF payload — the codes the server
        returns as HTTP 400.
        """
        if request.schema:
            try:
                schema = Schema.from_shexc(request.schema)
            except (ParseError, SchemaError) as error:
                raise ServiceError("schema-error", str(error), 400) from error
        elif default_schema is not None:
            schema = default_schema
        else:
            raise ServiceError("schema-error",
                               "no schema in the request and the server has "
                               "no preloaded schema", 400)
        try:
            if request.store == "columnar":
                graph: TripleStore = ColumnarGraph.parse(
                    request.data, format=request.data_format)
            else:
                graph = Graph.parse(request.data, format=request.data_format)
        except ParseError as error:
            raise ServiceError("parse-error", str(error), 400) from error
        jobs = request.jobs if request.jobs is not None else default_jobs
        shards = request.shards if request.shards is not None else default_shards
        if jobs < 1 or shards < 0:
            raise ServiceError("bad-request",
                               "jobs must be >= 1 and shards >= 0", 400)
        return cls(graph, schema, jobs=jobs, shards=shards,
                   resident=default_resident, precompile=precompile,
                   cache_max_entries=cache_max_entries)

    # -- lifecycle -----------------------------------------------------------------
    def validate(self, labels: Optional[Sequence[LabelArg]] = None,
                 jobs: Optional[int] = None) -> ValidationReport:
        """Run (or re-run) the full validation and refresh the baseline."""
        with self._lock:
            self._check_open()
            try:
                report = self.validator.validate_graph(labels=labels, jobs=jobs)
            except StaleSnapshotError as error:
                raise ServiceError("stale-snapshot", str(error), 409) from error
            self._full_runs += 1
            self._totals = report.total_stats()
            return report

    def apply_changes(self, add: Iterable[Triple] = (),
                      remove: Iterable[Triple] = (),
                      labels: Optional[Sequence[LabelArg]] = None,
                      allow_full_rebuild: bool = False,
                      ) -> Tuple[DeltaResponse, RevalidationResult]:
        """Apply one batched mutation and revalidate incrementally.

        The whole edit lands as a single change-journal batch; the
        incremental pass re-runs only the affected closure.  When the
        journal cannot answer (overflow) or no baseline exists, the delta
        *is applied* but revalidation raises ``journal-overflow`` /
        ``no-baseline`` (HTTP 409) unless ``allow_full_rebuild`` opts into
        the unbounded full re-run.  Recovery after the error: send an empty
        delta with ``allow_full_rebuild=True`` (or call :meth:`validate`).
        """
        with self._lock:
            self._check_open()
            graph = self.graph
            added = removed = 0
            add = list(add)
            remove = list(remove)
            with graph.batch():
                if add:
                    before = len(graph)
                    graph.add_all(add)
                    added = len(graph) - before
                if remove:
                    before = len(graph)
                    graph.remove_all(remove)
                    removed = before - len(graph)
            # keep resident shard replicas mirroring the coordinator graph:
            # the same delta is broadcast to the fleet before revalidation so
            # each shard's local journal → closure → re-run round sees it.
            stage = getattr(self.validator, "stage_fleet_delta", None)
            if stage is not None:
                stage(add, remove)
            try:
                result = self.validator.revalidate(
                    labels=labels, allow_full_rebuild=allow_full_rebuild)
            except IncrementalFallback as error:
                raise ServiceError(error.reason,
                                   f"delta applied (+{added}/-{removed}) but "
                                   f"not revalidated: {error}", 409) from error
            except StaleSnapshotError as error:
                raise ServiceError("stale-snapshot", str(error), 409) from error
            self._delta_rounds += 1
            self._totals = self._totals.merge(result.delta.total_stats())
            stats = result.stats()
            response = DeltaResponse(
                generation=self.validator.maintained_generation or 0,
                added=added, removed=removed,
                dirty_subjects=stats["dirty_subjects"],
                affected_nodes=stats["affected_nodes"],
                revalidated_pairs=stats["revalidated_pairs"],
                reused_pairs=stats["reused_pairs"],
                retracted_verdicts=stats["retracted_verdicts"],
                full_rebuild=result.full_rebuild,
                conforms=result.report.conforms,
            )
            return response, result

    def apply_delta(self, request: DeltaRequest) -> DeltaResponse:
        """The wire-level delta entry point: N-Triples text in, counters out."""
        try:
            add = list(iter_ntriples(request.add)) if request.add else []
            remove = list(iter_ntriples(request.remove)) if request.remove else []
        except ParseError as error:
            raise ServiceError("parse-error", str(error), 400) from error
        response, _ = self.apply_changes(
            add=add, remove=remove, labels=request.labels,
            allow_full_rebuild=request.allow_full_rebuild)
        return response

    def verdict(self, node: Union[ObjectTerm, str],
                shape: LabelArg = None,
                include_reason: bool = False) -> VerdictResponse:
        """Serve one verdict from the maintained typing — never a fresh run.

        ``node`` may be a term or its N-Triples rendering; ``shape`` a label
        or name (default: the schema's start shape).  The response's
        ``generation`` is the baseline generation, which this method
        guarantees equals the graph's current generation — otherwise it
        raises ``stale-baseline`` instead of serving outdated state.
        """
        with self._lock:
            self._check_open()
            self._verdict_queries += 1
            generation = self.validator.maintained_generation
            if generation is None:
                raise ServiceError(
                    "no-baseline",
                    "no maintained baseline; run a full validation first", 409)
            if generation != getattr(self.graph, "generation", generation):
                raise ServiceError(
                    "stale-baseline",
                    "the graph mutated outside the session; re-run "
                    "validation to refresh the baseline", 409)
            if isinstance(node, str):
                try:
                    term = parse_term(node)
                except ParseError as error:
                    raise ServiceError("parse-error",
                                       f"bad node term: {error}", 400) from error
            else:
                term = node
            try:
                label = self.validator._resolve_label(shape)
            except SchemaError as error:
                raise ServiceError("bad-request", str(error), 400) from error
            entry = self.validator.maintained_entry(term, label)
            if entry is None:
                raise ServiceError(
                    "verdict-not-found",
                    f"({term.n3()}, {label.name}) is outside the maintained "
                    f"baseline", 404)
            reason: Optional[str] = None
            if include_reason and entry.reason:
                reason = entry.reason
            return VerdictResponse(node=term.n3(), shape=label.name,
                                   conforms=entry.conforms,
                                   generation=generation, reason=reason)

    # -- observability -------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Snapshot every subsystem counter into one :class:`ServiceStats`."""
        with self._lock:
            self._check_open()
            return collect_stats(self.validator, self._totals, {
                "full_runs": self._full_runs,
                "delta_rounds": self._delta_rounds,
                "verdict_queries": self._verdict_queries,
                "jobs": self.jobs,
                "shards": self.shards,
            })

    @property
    def generation(self) -> int:
        return getattr(self.graph, "generation", 0)

    def close(self) -> None:
        """Mark the session unusable and release its resident shard fleet."""
        with self._lock:
            self._closed = True
            close_fleet = getattr(self.validator, "close_fleet", None)
            if close_fleet is not None:
                close_fleet()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("session-closed",
                               "this validation session was closed", 409)
