"""Hash-sharded bulk validation: the service's scale-out scheduler.

:class:`ShardedValidator` partitions the *subjects* (not the reference-graph
components) across worker processes by a deterministic hash of their
N-Triples rendering (:func:`shard_of`), so a graph whose reference structure
collapses into few big components — where the SCC scheduler degenerates to
serial — still spreads across ``shards`` workers.

Two scheduling backends share that partition:

* **Resident fleet** (``resident=True``, the default): shard processes live
  for the validator's lifetime (:class:`~repro.service.fleet.ShardFleet`).
  Each worker owns a full shard-local graph replica with its own bounded
  journal and a maintained baseline restricted to the subjects it owns;
  deltas are broadcast to the replicas and each worker runs the PR 5
  revalidate loop locally.  Warm rounds cost queue round-trips instead of
  process forks and snapshot pickling.
* **Re-fork pool** (``resident=False``): PR 7's behaviour — a fresh
  ``ProcessPoolExecutor`` plus a neighbourhood snapshot per run.  Kept as
  the escape hatch and as the benchmark baseline (``bench_fleet.py``).

Correctness rides entirely on the existing settled-verdict merge protocol
for both backends: each worker derives cross-shard reference targets locally
from shard-local state when they are not already settled, and only the
verdicts its context **settled** merge back into the coordinator's shared
context.  Provisional, hypothesis-dependent and budget-poisoned state never
crosses a process boundary, exactly as in the SCC scheduler — so verdicts
are identical to the serial path by the same argument
(``docs/architecture.md``, "settled-verdict merge rule").  Cross-shard
targets may be derived redundantly by several shards; redundant derivation
of a *settled* verdict is idempotent.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..rdf.errors import StaleSnapshotError
from ..rdf.terms import Literal, ObjectTerm
from ..shex.results import ValidationReportEntry
from ..shex.typing import ShapeLabel
from ..shex.validator import (
    IncrementalFallback,
    Validator,
    _parallel_worker_init,
    _parallel_worker_run,
)
from .api import ServiceError
from .fleet import ShardFleet, shard_of

__all__ = ["ShardedValidator", "shard_of"]


class ShardedValidator(Validator):
    """A :class:`Validator` whose parallel scheduler shards by subject hash.

    Both ``validate_graph`` and ``revalidate`` route through the overridden
    ``_run_parallel``, so full runs and incremental rounds shard the same
    way.  ``shards <= 1`` (or too little work) falls back to the inherited
    behaviour.  With ``resident=True`` (default) the shard workers are a
    persistent :class:`~repro.service.fleet.ShardFleet`; call
    :meth:`close_fleet` (or let the owning session's ``close`` do it) to
    release the processes.
    """

    def __init__(self, *args, shards: int = 2, resident: bool = True,
                 fleet_response_timeout: float = 120.0,
                 fleet_journal_limits: Optional[Sequence[Optional[int]]] = None,
                 fault_plan=None,
                 **kwargs):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        # the parallel entry points trigger on jobs > 1; one worker per shard
        kwargs.setdefault("jobs", shards if shards > 1 else 1)
        super().__init__(*args, **kwargs)
        self.shards = shards
        self.resident = resident
        self._fleet: Optional[ShardFleet] = None
        self._fleet_response_timeout = fleet_response_timeout
        #: deterministic fault schedule forwarded to the fleet (chaos tests).
        self._fault_plan = fault_plan
        #: per-shard journal-bound overrides (test hook); ``None`` entries
        #: inherit the coordinator graph's journal bound.
        self._fleet_journal_limits = fleet_journal_limits
        #: coordinator generation the replicas mirror (None = never loaded).
        self._fleet_generation: Optional[int] = None
        #: label tuple the replicas' baselines cover.
        self._fleet_labels: Optional[Tuple[ShapeLabel, ...]] = None

    # -- dispatch -------------------------------------------------------------
    def _run_parallel(self, label_list: Sequence[ShapeLabel], jobs: int,
                      restrict: Optional[FrozenSet[ObjectTerm]] = None,
                      ) -> Optional[Dict[Tuple[ObjectTerm, ShapeLabel],
                                         ValidationReportEntry]]:
        if self.shards <= 1:
            return super()._run_parallel(label_list, jobs, restrict)
        if not self.shared_context:
            raise ValueError(
                "sharded validation shares settled verdicts across shards "
                "and is incompatible with shared_context=False")
        if self._worker_engine_spec is None:
            raise ValueError(
                "sharded validation needs an engine constructible by name "
                "so worker processes can rebuild it")
        if not self.resident:
            return self._run_parallel_refork(label_list, restrict)
        if restrict is None:
            return self._fleet_full_run(label_list)
        return self._fleet_delta_run(label_list, restrict)

    # -- resident fleet: lifecycle --------------------------------------------
    def _ensure_fleet(self) -> ShardFleet:
        if self._fleet is None:
            self._fleet = ShardFleet(
                self.shards,
                response_timeout=self._fleet_response_timeout,
                journal_limits=self._fleet_journal_limits,
                fault_plan=self._fault_plan)
        self._fleet.start()
        return self._fleet

    def close_fleet(self) -> None:
        """Shut the resident workers down (idempotent)."""
        if self._fleet is not None:
            self._fleet.shutdown()
            self._fleet = None
        self._fleet_generation = None
        self._fleet_labels = None

    def _load_payload(self, labels: Tuple[ShapeLabel, ...], triples: list,
                      shard_index: int) -> tuple:
        bound = None
        if self._fleet_journal_limits is not None \
                and shard_index < len(self._fleet_journal_limits):
            bound = self._fleet_journal_limits[shard_index]
        if bound is None:
            bound = self.graph.journal.max_entries
        return (self.schema, self._worker_engine_spec, self.compiled,
                triples, list(labels), self.max_recursion_depth,
                sys.getrecursionlimit(), bound)

    def _fleet_load(self, fleet: ShardFleet,
                    labels: Tuple[ShapeLabel, ...]) -> List[tuple]:
        """(Re)load every replica from the coordinator's current graph.

        Respawns dead workers first, then ships the full triple list and a
        warm full owned run to each shard.  Returns the per-shard
        ``(entries, confirmed, failed)`` results.
        """
        for worker in list(fleet.workers):
            if worker.failed or worker.process is None \
                    or not worker.process.is_alive():
                fleet.respawn(worker)
        triples = list(self.graph)
        payloads = [self._load_payload(labels, triples, index)
                    for index in range(fleet.shards)]
        outcomes = fleet.broadcast("load", payloads, per_worker=True)
        for worker in fleet.workers:
            worker.loaded = True
        self._fleet_generation = self.graph.generation
        self._fleet_labels = labels
        return outcomes

    def _fleet_synced(self, fleet: ShardFleet,
                      labels: Tuple[ShapeLabel, ...]) -> bool:
        return (bool(fleet.workers)
                and all(worker.loaded and not worker.failed
                        and worker.process is not None
                        and worker.process.is_alive()
                        for worker in fleet.workers)
                and self._fleet_generation == self.graph.generation
                and self._fleet_labels == labels)

    # -- resident fleet: scheduling -------------------------------------------
    def _fleet_full_run(self, label_list: Sequence[ShapeLabel]
                        ) -> Optional[Dict[Tuple[ObjectTerm, ShapeLabel],
                                           ValidationReportEntry]]:
        subject_count = sum(1 for _ in self.graph.nodes())
        if subject_count <= 1:
            return None
        context = self._bulk_context()
        labels = tuple(label_list)
        fleet = self._ensure_fleet()
        if self._fleet_synced(fleet, labels):
            # warm replicas: a full owned re-run per shard, no reload.
            outcomes = fleet.broadcast("run", list(labels))
        else:
            outcomes = self._fleet_load(fleet, labels)
        return self._merge_outcomes(context, outcomes)

    def _fleet_delta_run(self, label_list: Sequence[ShapeLabel],
                         restrict: FrozenSet[ObjectTerm],
                         ) -> Optional[Dict[Tuple[ObjectTerm, ShapeLabel],
                                            ValidationReportEntry]]:
        """One resident incremental round: check, revalidate, merge.

        Two-phase: every shard first confirms (``check``) that its local
        journal and baseline can answer the round *without mutating
        anything*; only then does the ``revalidate`` broadcast run.  A
        journal overflow on one shard therefore surfaces as a typed
        :class:`IncrementalFallback` while every sibling's baseline is still
        intact.
        """
        fleet = self._fleet
        labels = tuple(label_list)
        if fleet is None or not fleet.workers:
            # no resident state yet (first run was serial/degenerate):
            # let the coordinator's serial path answer this round.
            return None
        if any(worker.failed or worker.process is None
               or not worker.process.is_alive() for worker in fleet.workers):
            # heal: respawn + warm-load dead workers from the coordinator's
            # current graph (the delta was already applied to it), leaving
            # healthy replicas warm.  The reloaded shard's round below is a
            # no-op delta; its verdicts are pulled from its fresh baseline.
            self._heal_workers(fleet, labels)
        if self._fleet_generation != self.graph.generation \
                or self._fleet_labels != labels:
            # the replicas missed a mutation (out-of-band edit between
            # rounds): resident state is stale, answer serially and let the
            # next full run reload the fleet.
            return None

        checks = fleet.broadcast("check", list(labels))
        for outcome in checks:
            if outcome is not None:
                raise IncrementalFallback(outcome[0], outcome[1])
        outcomes = fleet.broadcast("revalidate", list(labels))
        context = self._bulk_context()
        entries = self._merge_outcomes(
            context, [(delta, confirmed, failed)
                      for delta, confirmed, failed, _stats in outcomes])

        # coverage: the caller needs every (affected subject × label) pair.
        # A freshly healed shard reports an empty delta — pull the missing
        # pairs from its maintained baseline instead.
        subject_set = set(self.graph.nodes())
        wanted = [(node, label) for node in restrict if node in subject_set
                  for label in labels]
        missing = [pair for pair in wanted if pair not in entries]
        if missing:
            by_shard: Dict[int, List[tuple]] = {}
            for pair in missing:
                by_shard.setdefault(shard_of(pair[0], self.shards),
                                    []).append(pair)
            for shard_index, pairs in by_shard.items():
                worker = fleet.workers[shard_index]
                for pair, entry in zip(pairs,
                                       fleet.request(worker, "verdicts",
                                                     pairs)):
                    if entry is not None:
                        entries[pair] = entry
        still_missing = sorted({pair[0] for pair in wanted
                                if pair not in entries},
                               key=lambda term: term.sort_key())
        if still_missing:
            # safety net: derive the stragglers on the coordinator itself.
            for entry in self._validate_pairs_serial(context, list(labels),
                                                     still_missing):
                entries[(entry.node, entry.label)] = entry
        return entries

    def _heal_workers(self, fleet: ShardFleet,
                      labels: Tuple[ShapeLabel, ...]) -> None:
        """Respawn and warm-load dead workers only; keep live replicas warm."""
        triples = None
        for worker in list(fleet.workers):
            if not worker.failed and worker.process is not None \
                    and worker.process.is_alive():
                continue
            fresh = fleet.respawn(worker)
            if triples is None:
                triples = list(self.graph)
            fleet.request(fresh, "load",
                          self._load_payload(labels, triples, fresh.index))
            fresh.loaded = True

    def _merge_outcomes(self, context, outcomes
                        ) -> Dict[Tuple[ObjectTerm, ShapeLabel],
                                  ValidationReportEntry]:
        """Merge per-shard results under the settled-verdict protocol."""
        entries: Dict[Tuple[ObjectTerm, ShapeLabel], ValidationReportEntry] = {}
        new_confirmed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        new_failed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        seen: Set[Tuple[ObjectTerm, ShapeLabel]] = set()
        for worker_entries, confirmed, failed in outcomes:
            for entry in worker_entries:
                entries[(entry.node, entry.label)] = entry
            # two shards can settle the same cross-shard target; the
            # verdicts agree (determinism), keep the first occurrence
            for pair in confirmed:
                if pair not in seen:
                    seen.add(pair)
                    new_confirmed.append(pair)
            for pair in failed:
                if pair not in seen:
                    seen.add(pair)
                    new_failed.append(pair)
        context.seed_settled(new_confirmed, new_failed)
        return entries

    # -- resident fleet: session hooks ----------------------------------------
    def stage_fleet_delta(self, add, remove) -> None:
        """Broadcast an already-applied coordinator delta to the replicas.

        Called by the session *after* the coordinator graph's batch, before
        ``revalidate``.  Replicas receive the full delta (they must stay
        whole-graph mirrors so cross-shard targets keep deriving locally);
        only the revalidation *work* is partitioned by ownership.  A worker
        dying mid-stage is tolerated — it is respawned and warm-loaded on
        the next fleet operation; the survivors stay in sync.
        """
        fleet = self._fleet
        if not self.resident or self.shards <= 1 or fleet is None \
                or not any(worker.loaded for worker in fleet.workers):
            return
        add = list(add)
        remove = list(remove)
        if add or remove:
            fleet.broadcast("apply", (add, remove), tolerate_death=True)
        self._fleet_generation = self.graph.generation

    def dead_shards(self) -> Tuple[int, ...]:
        """Shard indices whose resident worker is currently down (no heal)."""
        fleet = self._fleet
        if not self.resident or self.shards <= 1 or fleet is None \
                or not fleet.workers:
            return ()
        return tuple(worker.index for worker in fleet.workers
                     if worker.failed or not worker.loaded
                     or worker.process is None
                     or not worker.process.is_alive())

    def degraded_entry(self, node, label):
        """Serve one pair from its owning live shard, without healing.

        Returns ``(entry, shard_generation, missing_shards)``.  ``entry`` is
        the owning replica's baseline entry (``None`` when that shard is
        dead, unloaded, or has never derived the pair);
        ``shard_generation`` is the replica's maintained generation (its
        baseline may be fresher than the coordinator's after a partial
        round).  This path must never respawn or warm-load — degraded reads
        are the *cheap* escape hatch while the next write heals the fleet —
        so a dead owner simply lands in ``missing_shards``.
        """
        fleet = self._fleet
        if not self.resident or self.shards <= 1 or fleet is None \
                or not fleet.workers:
            return None, None, ()
        shard_index = shard_of(node, self.shards)
        worker = fleet.workers[shard_index]
        if worker.failed or not worker.loaded or worker.process is None \
                or not worker.process.is_alive():
            return None, None, (shard_index,)
        try:
            generation, entries = fleet.request(worker, "baseline",
                                                [(node, label)])
        except (ServiceError, RuntimeError, IncrementalFallback):
            # the owner died under us (or errored): report, don't heal.
            return None, None, (shard_index,)
        return entries[0], generation, ()

    def fleet_stats(self, include_workers: bool = True) -> Dict[str, object]:
        """Fleet health for :class:`~repro.service.api.ServiceStats`."""
        info: Dict[str, object] = {"resident": self.resident,
                                   "shards": self.shards}
        fleet = self._fleet
        if fleet is None or not fleet.workers:
            info["started"] = False
            return info
        info["started"] = True
        info.update(fleet.health())
        if include_workers:
            try:
                info["workers"] = fleet.broadcast("stats", None,
                                                  tolerate_death=True)
            except Exception:  # noqa: BLE001 — stats must never take a server down
                info["workers"] = []
        return info

    # -- the PR 7 re-fork backend ---------------------------------------------
    def _run_parallel_refork(self, label_list: Sequence[ShapeLabel],
                             restrict: Optional[FrozenSet[ObjectTerm]] = None,
                             ) -> Optional[Dict[Tuple[ObjectTerm, ShapeLabel],
                                                ValidationReportEntry]]:
        """Per-run process pool + snapshot: the pre-fleet scheduler."""
        from concurrent.futures import ProcessPoolExecutor

        spec = self._worker_engine_spec
        compiled = self.compiled
        context = self._bulk_context()
        generation = getattr(self.graph, "generation", None)
        subject_set = set(self.graph.nodes())

        if restrict is not None:
            # incremental round: re-run exactly the affected closure.  The
            # snapshot covers the closure plus its demanded-but-unsettled
            # expansion (workers derive those chains in-context); everything
            # else the closure references is settled and travels as a seed.
            index = self._schema_reference_index()
            snapshot_nodes: Set[ObjectTerm] = set(
                self._restrict_scan_set(restrict, context, index))
            work_nodes = [node for node in restrict if node in subject_set]
        else:
            # full run: every subject gets work pairs; every non-literal
            # object must be snapshot-resolvable because any worker may
            # recurse into it while deriving a cross-shard reference.
            snapshot_nodes = set(subject_set)
            for triple in self.graph:
                if not isinstance(triple.object, Literal):
                    snapshot_nodes.add(triple.object)
            work_nodes = list(subject_set)
        if len(work_nodes) <= 1:
            return None

        buckets: List[List[ObjectTerm]] = [[] for _ in range(self.shards)]
        for node in sorted(work_nodes, key=lambda term: term.sort_key()):
            buckets[shard_of(node, self.shards)].append(node)

        seed_confirmed, seed_failed = context.settled_verdicts()
        snapshot = self.graph.snapshot(snapshot_nodes)
        if snapshot.generation != generation:
            raise StaleSnapshotError(
                f"graph mutated during sharded scheduling (generation "
                f"{generation} -> {snapshot.generation}); re-run validation")
        init_args = (self.schema, spec, snapshot, self.max_recursion_depth,
                     sys.getrecursionlimit(), compiled)

        entries: Dict[Tuple[ObjectTerm, ShapeLabel], ValidationReportEntry] = {}
        new_confirmed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        new_failed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        seen: Set[Tuple[ObjectTerm, ShapeLabel]] = set()
        with ProcessPoolExecutor(max_workers=self.shards,
                                 initializer=_parallel_worker_init,
                                 initargs=init_args) as pool:
            futures = []
            for bucket in buckets:
                pairs = [(node, label) for node in bucket
                         for label in label_list]
                if not pairs:
                    continue
                futures.append(pool.submit(
                    _parallel_worker_run, pairs, seed_confirmed, seed_failed))
            for future in futures:
                worker_entries, confirmed, failed, worker_stats = future.result()
                # per-phase profile counters accrued inside the shard worker
                # survive into the coordinator's context, as on --jobs runs
                context.stats = context.stats.merge(worker_stats)
                for entry in worker_entries:
                    entries[(entry.node, entry.label)] = entry
                # two shards can settle the same cross-shard target; the
                # verdicts agree (determinism), keep the first occurrence
                for pair in confirmed:
                    if pair not in seen:
                        seen.add(pair)
                        new_confirmed.append(pair)
                for pair in failed:
                    if pair not in seen:
                        seen.add(pair)
                        new_failed.append(pair)
        context.seed_settled(new_confirmed, new_failed)
        return entries
