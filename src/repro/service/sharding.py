"""Hash-sharded bulk validation: the service's first scale-out rung.

:class:`ShardedValidator` partitions the *subjects* (not the reference-graph
components) across worker processes by a deterministic hash of their
N-Triples rendering, so a graph whose reference structure collapses into few
big components — where the SCC scheduler degenerates to serial — still
spreads across ``shards`` workers.

Correctness rides entirely on the existing settled-verdict merge protocol:
each shard task gets the full neighbourhood snapshot plus *every* verdict the
shared context has settled (``seed_settled``), derives cross-shard reference
targets locally from the snapshot when they are not seeded, and reports back
only the verdicts its context settled (``settled_verdicts`` minus the
seeds).  Provisional, hypothesis-dependent and budget-poisoned state never
crosses a process boundary, exactly as in the SCC scheduler — so verdicts
are identical to the serial path by the same argument
(``docs/architecture.md``, "settled-verdict merge rule").  Cross-shard
targets may be derived redundantly by several shards; redundant derivation
of a *settled* verdict is idempotent.
"""

from __future__ import annotations

import sys
import zlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..rdf.errors import StaleSnapshotError
from ..rdf.terms import Literal, ObjectTerm
from ..shex.results import ValidationReportEntry
from ..shex.typing import ShapeLabel
from ..shex.validator import (
    Validator,
    _parallel_worker_init,
    _parallel_worker_run,
)

__all__ = ["ShardedValidator", "shard_of"]


def shard_of(node: ObjectTerm, shards: int) -> int:
    """The shard owning ``node``: ``crc32`` of its N-Triples rendering.

    Deterministic across processes and interpreter runs (unlike python's
    salted ``hash``), so a client, the scheduler and every worker agree on
    the partition without coordination.
    """
    return zlib.crc32(node.n3().encode("utf-8")) % shards


class ShardedValidator(Validator):
    """A :class:`Validator` whose parallel scheduler shards by subject hash.

    Both ``validate_graph`` and ``revalidate`` route through the overridden
    ``_run_parallel``, so full runs and incremental rounds shard the same
    way.  ``shards <= 1`` (or too little work) falls back to the inherited
    behaviour.
    """

    def __init__(self, *args, shards: int = 2, **kwargs):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        # the parallel entry points trigger on jobs > 1; one worker per shard
        kwargs.setdefault("jobs", shards if shards > 1 else 1)
        super().__init__(*args, **kwargs)
        self.shards = shards

    def _run_parallel(self, label_list: Sequence[ShapeLabel], jobs: int,
                      restrict: Optional[FrozenSet[ObjectTerm]] = None,
                      ) -> Optional[Dict[Tuple[ObjectTerm, ShapeLabel],
                                         ValidationReportEntry]]:
        if self.shards <= 1:
            return super()._run_parallel(label_list, jobs, restrict)
        from concurrent.futures import ProcessPoolExecutor

        if not self.shared_context:
            raise ValueError(
                "sharded validation shares settled verdicts across shards "
                "and is incompatible with shared_context=False")
        spec = self._worker_engine_spec
        if spec is None:
            raise ValueError(
                "sharded validation needs an engine constructible by name "
                "so worker processes can rebuild it")

        compiled = self.compiled
        context = self._bulk_context()
        generation = getattr(self.graph, "generation", None)
        subject_set = set(self.graph.nodes())

        if restrict is not None:
            # incremental round: re-run exactly the affected closure.  The
            # snapshot covers the closure plus its demanded-but-unsettled
            # expansion (workers derive those chains in-context); everything
            # else the closure references is settled and travels as a seed.
            index = self._schema_reference_index()
            snapshot_nodes: Set[ObjectTerm] = set(
                self._restrict_scan_set(restrict, context, index))
            work_nodes = [node for node in restrict if node in subject_set]
        else:
            # full run: every subject gets work pairs; every non-literal
            # object must be snapshot-resolvable because any worker may
            # recurse into it while deriving a cross-shard reference.
            snapshot_nodes = set(subject_set)
            for triple in self.graph:
                if not isinstance(triple.object, Literal):
                    snapshot_nodes.add(triple.object)
            work_nodes = list(subject_set)
        if len(work_nodes) <= 1:
            return None

        buckets: List[List[ObjectTerm]] = [[] for _ in range(self.shards)]
        for node in sorted(work_nodes, key=lambda term: term.sort_key()):
            buckets[shard_of(node, self.shards)].append(node)

        seed_confirmed, seed_failed = context.settled_verdicts()
        snapshot = self.graph.snapshot(snapshot_nodes)
        if snapshot.generation != generation:
            raise StaleSnapshotError(
                f"graph mutated during sharded scheduling (generation "
                f"{generation} -> {snapshot.generation}); re-run validation")
        init_args = (self.schema, spec, snapshot, self.max_recursion_depth,
                     sys.getrecursionlimit(), compiled)

        entries: Dict[Tuple[ObjectTerm, ShapeLabel], ValidationReportEntry] = {}
        new_confirmed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        new_failed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        seen: Set[Tuple[ObjectTerm, ShapeLabel]] = set()
        with ProcessPoolExecutor(max_workers=self.shards,
                                 initializer=_parallel_worker_init,
                                 initargs=init_args) as pool:
            futures = []
            for bucket in buckets:
                pairs = [(node, label) for node in bucket
                         for label in label_list]
                if not pairs:
                    continue
                futures.append(pool.submit(
                    _parallel_worker_run, pairs, seed_confirmed, seed_failed))
            for future in futures:
                worker_entries, confirmed, failed = future.result()
                for entry in worker_entries:
                    entries[(entry.node, entry.label)] = entry
                # two shards can settle the same cross-shard target; the
                # verdicts agree (determinism), keep the first occurrence
                for pair in confirmed:
                    if pair not in seen:
                        seen.add(pair)
                        new_confirmed.append(pair)
                for pair in failed:
                    if pair not in seen:
                        seen.add(pair)
                        new_failed.append(pair)
        context.seed_settled(new_confirmed, new_failed)
        return entries
