"""Shape Expressions: the paper's primary contribution.

The package implements Regular Shape Expressions (Section 4), their
declarative semantics (Section 4), the backtracking matcher derived from the
inference rules (Section 5), the derivative-based matcher (Sections 6–7),
labelled Shape Expression Schemas with recursive references (Section 8), the
ShEx compact syntax, a JSON interchange format and a compiler to SPARQL
(Section 3).

Typical usage::

    from repro.rdf import Graph
    from repro.shex import Schema, Validator

    schema = Schema.from_shexc('''
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
        <Person> {
          foaf:age   xsd:integer ,
          foaf:name  xsd:string + ,
          foaf:knows @<Person> *
        }
    ''')
    graph = Graph.parse(open("people.ttl").read())
    validator = Validator(graph, schema)           # derivative engine
    report = validator.validate_graph()

Engine and caching options
--------------------------

``Validator(graph, schema, engine=..., **engine_options)`` accepts:

* ``engine="derivatives"`` (default) — the paper's linear derivative
  matcher.  Options: ``simplify`` (apply the Section 4 rewrite rules,
  default True), ``order_by_predicate`` (sort neighbourhoods before
  consuming them, default True), ``memoize`` (per-neighbourhood
  ``(expression, triple)`` memo, default True) and ``cache`` — pass ``True``
  or a :class:`DerivativeCache` to enable the **global cross-node
  derivative cache**: derivative results are keyed by hash-consed
  expression structure plus constraint-verdict vectors, so they transfer
  between nodes, labels and whole validation runs.
* ``engine="backtracking"`` — the exponential inference-rule baseline;
  option ``budget`` caps rule applications.

``Validator(..., shared_context=True)`` (the default) threads one
:class:`ValidationContext` through the bulk operations (``validate_graph``,
``infer_typing``, ``validate_map``, ``conforming_nodes``) so confirmed and
refuted ``(node, label)`` verdicts propagate across the whole run; context
caching is sound under recursion because hypothesis-dependent verdicts stay
provisional until the hypothesis they rest on settles, and recursion-budget
failures are never cached.  ``shared_context=False`` restores the
paper-faithful fresh-context-per-node behaviour; the CLI exposes both as
``--bulk`` / ``--per-node``.

``Validator(..., precompile=True)`` (the default) builds a
:class:`CompiledSchema` — per-label nullability, first/required-predicate
sets, cardinality bounds, value screens and predicate-indexed atom tables,
computed once per schema — and consults its **static prefilter** before any
matching frame is constructed, so statically decidable ``(node, label)``
pairs never touch an engine.  Verdicts are identical either way;
``precompile=False`` (CLI ``--no-precompile``) is the measurement escape
hatch.
"""

from .backtracking import (
    BacktrackingBudgetExceeded,
    BacktrackingEngine,
    matches_backtracking,
)
from .cache import DerivativeCache
from .compiled import CompiledSchema, CompiledShape, PrefilterDecision
from .derivatives import (
    DerivativeEngine,
    derivative,
    derivative_graph,
    derivative_trace,
    matches,
    nullable,
)
from .expressions import (
    EMPTY,
    EPSILON,
    And,
    Arc,
    Empty,
    EmptyTriples,
    Or,
    ShapeExpr,
    Star,
    alternative,
    alternative_all,
    arc,
    clear_expression_caches,
    expression_cache_stats,
    expression_depth,
    expression_size,
    interleave,
    interleave_all,
    iter_subexpressions,
    optional,
    plus,
    referenced_labels,
    repeat,
    star,
)
from .language import LanguageEnumerationError, enumerate_language, language_size
from .node_constraints import (
    AnyValue,
    ConstraintAnd,
    ConstraintNot,
    ConstraintOr,
    DatatypeConstraint,
    Facets,
    IRIStem,
    LanguageTag,
    NodeConstraint,
    NodeKind,
    NodeKindConstraint,
    PredicateSet,
    ShapeRef,
    ValueSet,
    datatype,
    shape_ref,
    value_set,
)
from .reporting import (
    format_csv,
    format_text,
    report_to_dict,
    report_to_json,
    summarize,
)
from .hamt import HamtMap
from .results import MatchResult, MatchStats, ValidationReportEntry
from .schema import Schema, SchemaError, ValidationContext
from .shape_map import FixedEntry, QueryEntry, ShapeMap, parse_shape_map
from .shexc import parse_shexc, serialize_shexc
from .shexj import schema_from_dict, schema_to_dict
from .sparql_gen import SparqlEngine, shape_to_sparql_ask, shape_to_sparql_select
from .typing import ShapeLabel, ShapeTyping
from .validator import (
    ENGINES,
    RevalidationResult,
    ValidationReport,
    Validator,
    get_engine,
)

__all__ = [
    # expressions
    "ShapeExpr", "Empty", "EmptyTriples", "Arc", "Star", "And", "Or",
    "EMPTY", "EPSILON",
    "arc", "interleave", "alternative", "interleave_all", "alternative_all",
    "star", "plus", "optional", "repeat",
    "expression_size", "expression_depth", "iter_subexpressions", "referenced_labels",
    "clear_expression_caches", "expression_cache_stats",
    # node constraints
    "NodeConstraint", "AnyValue", "ValueSet", "DatatypeConstraint", "NodeKind",
    "NodeKindConstraint", "IRIStem", "LanguageTag", "Facets",
    "ConstraintAnd", "ConstraintOr", "ConstraintNot", "ShapeRef", "PredicateSet",
    "value_set", "datatype", "shape_ref",
    # semantics and engines
    "enumerate_language", "language_size", "LanguageEnumerationError",
    "nullable", "derivative", "derivative_graph", "derivative_trace", "matches",
    "DerivativeEngine", "DerivativeCache",
    "BacktrackingEngine", "BacktrackingBudgetExceeded", "matches_backtracking",
    # schema layer
    "Schema", "SchemaError", "ValidationContext",
    "CompiledSchema", "CompiledShape", "PrefilterDecision",
    "ShapeLabel", "ShapeTyping", "HamtMap",
    "MatchResult", "MatchStats", "ValidationReportEntry",
    "Validator", "ValidationReport", "RevalidationResult", "get_engine", "ENGINES",
    # syntaxes
    "parse_shexc", "serialize_shexc", "schema_to_dict", "schema_from_dict",
    # shape maps and reporting
    "ShapeMap", "FixedEntry", "QueryEntry", "parse_shape_map",
    "format_text", "format_csv", "report_to_dict", "report_to_json", "summarize",
    # SPARQL compilation
    "shape_to_sparql_ask", "shape_to_sparql_select", "SparqlEngine",
]
