"""Static analysis of shape expressions and schemas.

The paper's concluding discussion points at a line of future work: identify a
*subset of the language with better complexity results while being expressive
enough* — in particular the Single Occurrence Regular Bag Expressions (SORBE)
of Boneva et al., where every predicate occurs at most once in a shape.  This
module implements the analyses a validator or schema editor needs to act on
that observation without running any data through the matchers:

* :func:`is_empty` / :func:`is_universal` — does the expression accept
  nothing / only the empty neighbourhood?
* :func:`predicate_occurrences` and :func:`is_single_occurrence` — the SORBE
  membership test (the tractable fragment the paper recommends targeting),
* :func:`is_deterministic` — can every triple be attributed to at most one
  arc constraint without lookahead (no two overlapping arcs for the same
  predicate)?
* :func:`cardinality_bounds` — per-predicate (min, max) arc counts implied by
  the expression,
* :func:`schema_dependency_graph` and :func:`stratify_schema` — the reference
  structure between shapes, recursion detection and a bottom-up validation
  order for the non-recursive part.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from ..rdf.terms import IRI
from .expressions import (
    And,
    Arc,
    Empty,
    EmptyTriples,
    Or,
    ShapeExpr,
    Star,
    iter_subexpressions,
)
from .schema import Schema
from .typing import ShapeLabel

__all__ = [
    "is_empty",
    "is_universal",
    "predicate_occurrences",
    "is_single_occurrence",
    "is_deterministic",
    "CardinalityBound",
    "cardinality_bounds",
    "neighbourhood_cardinality_bounds",
    "first_predicates",
    "schema_dependency_graph",
    "recursive_labels",
    "stratify_schema",
    "analyze_schema",
    "SchemaReport",
]


# ----------------------------------------------------------------------- emptiness
def is_empty(expr: ShapeExpr) -> bool:
    """True if ``Sₙ[[expr]] = ∅`` (the expression accepts no graph at all).

    Computed structurally: ``∅`` is empty, ``ε`` and arcs are not, ``e*`` never
    is (it accepts ``{}``), ``e1 ‖ e2`` is empty if either operand is, and
    ``e1 | e2`` if both are.
    """
    if isinstance(expr, Empty):
        return True
    if isinstance(expr, (EmptyTriples, Arc, Star)):
        return False
    if isinstance(expr, And):
        return is_empty(expr.left) or is_empty(expr.right)
    if isinstance(expr, Or):
        return is_empty(expr.left) and is_empty(expr.right)
    raise TypeError(f"unknown shape expression: {expr!r}")


def is_universal(expr: ShapeExpr) -> bool:
    """True if the expression accepts exactly the empty neighbourhood only.

    Useful to flag shapes like ``<S> { }`` that reject every node carrying
    data — usually a schema-authoring mistake.
    """
    if isinstance(expr, EmptyTriples):
        return True
    if isinstance(expr, (Empty, Arc)):
        return False
    if isinstance(expr, Star):
        return is_universal(expr.expr) or is_empty(expr.expr)
    if isinstance(expr, And):
        return is_universal(expr.left) and is_universal(expr.right)
    if isinstance(expr, Or):
        branches = [branch for branch in (expr.left, expr.right) if not is_empty(branch)]
        return bool(branches) and all(is_universal(branch) for branch in branches)
    raise TypeError(f"unknown shape expression: {expr!r}")


# ------------------------------------------------------------------ SORBE membership
def predicate_occurrences(expr: ShapeExpr) -> Counter:
    """Count how many *syntactic* arc constraints mention each predicate."""
    occurrences: Counter = Counter()
    for sub in iter_subexpressions(expr):
        if isinstance(sub, Arc):
            sample = sub.predicate.sample()
            if sample is not None and not sub.predicate.any_predicate \
                    and sub.predicate.stem is None:
                for predicate in sub.predicate.predicates:
                    occurrences[predicate] += 1
            else:
                occurrences[None] += 1  # wildcard / stem predicates
    return occurrences


def is_single_occurrence(expr: ShapeExpr) -> bool:
    """True if every concrete predicate occurs in at most one arc constraint.

    This is the syntactic core of the SORBE fragment the paper's conclusion
    recommends: single-occurrence expressions admit much cheaper validation
    because a triple's predicate uniquely identifies the constraint it has to
    satisfy.

    Derived operators are expanded before this check, so ``E+`` (which
    duplicates ``E`` syntactically as ``E ‖ E*``) is normalised first: two
    occurrences of *identical* arcs are counted once.
    """
    seen: Dict[IRI, set] = {}
    for sub in iter_subexpressions(expr):
        if not isinstance(sub, Arc):
            continue
        if sub.predicate.any_predicate or sub.predicate.stem is not None:
            return False
        for predicate in sub.predicate.predicates:
            constraints = seen.setdefault(predicate, set())
            constraints.add(sub.object)
    return all(len(constraints) <= 1 for constraints in seen.values())


def is_deterministic(expr: ShapeExpr) -> bool:
    """True if no two *different* arc constraints can match the same triple.

    A slightly stronger property than :func:`is_single_occurrence`: it also
    rejects wildcard or stem predicate sets that overlap a concrete
    predicate.  Deterministic expressions give the derivative engine its best
    behaviour because each derivative step keeps exactly one alternative
    alive.
    """
    arcs = [sub for sub in iter_subexpressions(expr) if isinstance(sub, Arc)]
    for index, first in enumerate(arcs):
        for second in arcs[index + 1:]:
            if first == second:
                continue
            if _predicates_may_overlap(first, second):
                return False
    return True


def _predicates_may_overlap(first: Arc, second: Arc) -> bool:
    if first.predicate.any_predicate or second.predicate.any_predicate:
        return True
    if first.predicate.stem is not None or second.predicate.stem is not None:
        first_stem, second_stem = first.predicate.stem, second.predicate.stem
        if first_stem is not None and second_stem is not None:
            return first_stem.startswith(second_stem) or second_stem.startswith(first_stem)
        stem = first_stem if first_stem is not None else second_stem
        other = second if first_stem is not None else first
        return any(predicate.value.startswith(stem) for predicate in other.predicate.predicates)
    return bool(first.predicate.predicates & second.predicate.predicates)


# --------------------------------------------------------------------- cardinalities
@dataclass(frozen=True)
class CardinalityBound:
    """Per-predicate bounds on the number of arcs an accepted graph may carry."""

    minimum: int
    maximum: Optional[int]  # None = unbounded

    def render(self) -> str:
        upper = "∞" if self.maximum is None else str(self.maximum)
        return f"{{{self.minimum},{upper}}}"


def cardinality_bounds(expr: ShapeExpr) -> Dict[IRI, CardinalityBound]:
    """Compute, per predicate, how many arcs accepted neighbourhoods carry.

    The bounds are exact for the expression algebra (alternatives take the
    min/max across branches, interleaves add, stars multiply by [0, ∞)).
    Wildcard and stem predicates are ignored — the bounds only cover concrete
    predicates.
    """
    bounds = _bounds(expr)
    return {predicate: CardinalityBound(minimum, maximum)
            for predicate, (minimum, maximum) in bounds.items()}


_Bounds = Dict[IRI, Tuple[int, Optional[int]]]


def _bounds(expr: ShapeExpr) -> _Bounds:
    if isinstance(expr, (Empty, EmptyTriples)):
        return {}
    if isinstance(expr, Arc):
        result: _Bounds = {}
        if not expr.predicate.any_predicate and expr.predicate.stem is None:
            for predicate in expr.predicate.predicates:
                result[predicate] = (1, 1)
        return result
    if isinstance(expr, Star):
        return {predicate: (0, None) for predicate in _bounds(expr.expr)}
    if isinstance(expr, And):
        left, right = _bounds(expr.left), _bounds(expr.right)
        combined: _Bounds = {}
        for predicate in set(left) | set(right):
            left_min, left_max = left.get(predicate, (0, 0))
            right_min, right_max = right.get(predicate, (0, 0))
            maximum = None if left_max is None or right_max is None \
                else left_max + right_max
            combined[predicate] = (left_min + right_min, maximum)
        return combined
    if isinstance(expr, Or):
        left, right = _bounds(expr.left), _bounds(expr.right)
        combined = {}
        for predicate in set(left) | set(right):
            left_min, left_max = left.get(predicate, (0, 0))
            right_min, right_max = right.get(predicate, (0, 0))
            maximum = None if left_max is None or right_max is None \
                else max(left_max, right_max)
            combined[predicate] = (min(left_min, right_min), maximum)
        return combined
    raise TypeError(f"unknown shape expression: {expr!r}")


# --------------------------------------------------------- sound neighbourhood bounds
def neighbourhood_cardinality_bounds(expr: ShapeExpr) -> Dict[IRI, CardinalityBound]:
    """Per-predicate bounds on triple counts, **sound** for prefiltering.

    :func:`cardinality_bounds` treats every predicate of a multi-predicate
    arc as if the arc required one triple of *each* predicate, which
    over-states the minimum (an arc ``{p q} → vo`` consumes one triple whose
    predicate is ``p`` **or** ``q``).  This variant computes bounds a
    validator may reject on:

    * the **minimum** for predicate ``p`` counts only arcs whose predicate
      set is exactly ``{p}`` — every accepted neighbourhood provably carries
      at least that many ``p``-triples,
    * the **maximum** for ``p`` adds one per arc that *could* consume a
      ``p``-triple, and collapses to unbounded (``None``) as soon as a
      wildcard or matching stem arc could absorb extra ``p``-triples.

    A neighbourhood whose ``p``-count falls outside ``[minimum, maximum]``
    therefore cannot match, whatever the objects are.
    """
    bounds, _stems, _open = _sound_bounds(expr)
    return {predicate: CardinalityBound(minimum, maximum)
            for predicate, (minimum, maximum) in bounds.items()}


#: recursion result: (per-predicate bounds, stems seen, wildcard-arc seen).
_SoundBounds = Tuple[_Bounds, FrozenSet[str], bool]


def _covers(predicate: IRI, stems: FrozenSet[str], any_open: bool) -> bool:
    """True when a stem/wildcard arc on this side could consume ``predicate``."""
    return any_open or any(predicate.value.startswith(stem) for stem in stems)


def _sound_bounds(expr: ShapeExpr) -> _SoundBounds:
    if isinstance(expr, (Empty, EmptyTriples)):
        return {}, frozenset(), False
    if isinstance(expr, Arc):
        predicate_set = expr.predicate
        if predicate_set.any_predicate:
            return {}, frozenset(), True
        stems = frozenset((predicate_set.stem,)) if predicate_set.stem is not None \
            else frozenset()
        predicates = predicate_set.predicates
        if len(predicates) == 1 and not stems:
            (predicate,) = predicates
            return {predicate: (1, 1)}, stems, False
        # the arc consumes one triple with *some* admitted predicate: no
        # individual predicate is guaranteed, each gets at most one.
        return {predicate: (0, 1) for predicate in predicates}, stems, False
    if isinstance(expr, Star):
        inner, stems, any_open = _sound_bounds(expr.expr)
        return ({predicate: (0, None) for predicate in inner}, stems, any_open)
    if isinstance(expr, And):
        left, left_stems, left_open = _sound_bounds(expr.left)
        right, right_stems, right_open = _sound_bounds(expr.right)
        combined: _Bounds = {}
        for predicate in set(left) | set(right):
            left_min, left_max = left.get(
                predicate,
                (0, None if _covers(predicate, left_stems, left_open) else 0))
            right_min, right_max = right.get(
                predicate,
                (0, None if _covers(predicate, right_stems, right_open) else 0))
            maximum = None if left_max is None or right_max is None \
                else left_max + right_max
            combined[predicate] = (left_min + right_min, maximum)
        return combined, left_stems | right_stems, left_open or right_open
    if isinstance(expr, Or):
        left, left_stems, left_open = _sound_bounds(expr.left)
        right, right_stems, right_open = _sound_bounds(expr.right)
        combined = {}
        for predicate in set(left) | set(right):
            left_min, left_max = left.get(
                predicate,
                (0, None if _covers(predicate, left_stems, left_open) else 0))
            right_min, right_max = right.get(
                predicate,
                (0, None if _covers(predicate, right_stems, right_open) else 0))
            maximum = None if left_max is None or right_max is None \
                else max(left_max, right_max)
            combined[predicate] = (min(left_min, right_min), maximum)
        return combined, left_stems | right_stems, left_open or right_open
    raise TypeError(f"unknown shape expression: {expr!r}")


# ------------------------------------------------------------------ first predicates
def first_predicates(expr: ShapeExpr) -> Tuple[FrozenSet[IRI], bool]:
    """``(exact predicates, open)`` that can begin a match of ``expr``.

    Neighbourhood matching is order-free, so a predicate can "begin" a match
    exactly when some arc in a *live* position (not under a statically-empty
    subtree) admits it.  ``open`` is True when a stem or wildcard arc is
    live, in which case predicates outside the exact set may begin a match
    too.  For a non-nullable expression, a non-empty neighbourhood whose
    predicates avoid the first set entirely cannot match.
    """
    if isinstance(expr, (Empty, EmptyTriples)):
        return frozenset(), False
    if isinstance(expr, Arc):
        predicate_set = expr.predicate
        return (predicate_set.predicates,
                predicate_set.any_predicate or predicate_set.stem is not None)
    if isinstance(expr, Star):
        return first_predicates(expr.expr)
    if isinstance(expr, And):
        if is_empty(expr.left) or is_empty(expr.right):
            return frozenset(), False
        left, left_open = first_predicates(expr.left)
        right, right_open = first_predicates(expr.right)
        return left | right, left_open or right_open
    if isinstance(expr, Or):
        left, left_open = first_predicates(expr.left)
        right, right_open = first_predicates(expr.right)
        if is_empty(expr.left):
            left, left_open = frozenset(), False
        if is_empty(expr.right):
            right, right_open = frozenset(), False
        return left | right, left_open or right_open
    raise TypeError(f"unknown shape expression: {expr!r}")


# ------------------------------------------------------------------- schema structure
def schema_dependency_graph(schema: Schema) -> nx.DiGraph:
    """Return the directed graph of ``@label`` references between shapes."""
    graph = nx.DiGraph()
    for label, _ in schema.items():
        graph.add_node(label)
    for label, _ in schema.items():
        for referenced in schema.dependencies(label):
            graph.add_edge(label, referenced)
    return graph


def recursive_labels(schema: Schema) -> FrozenSet[ShapeLabel]:
    """Return the labels involved in at least one reference cycle."""
    graph = schema_dependency_graph(schema)
    recursive: set = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            recursive.update(component)
        else:
            (only,) = component
            if graph.has_edge(only, only):
                recursive.add(only)
    return frozenset(recursive)


def stratify_schema(schema: Schema) -> List[List[ShapeLabel]]:
    """Return shape labels grouped into strata validatable bottom-up.

    Each stratum is a strongly connected component of the dependency graph;
    strata are ordered so that every reference points into the same or an
    earlier stratum.  Non-recursive schemas therefore come back as singleton
    strata in reverse topological order — the order in which a cache-friendly
    validator would process them.
    """
    graph = schema_dependency_graph(schema)
    condensation = nx.condensation(graph)
    strata: List[List[ShapeLabel]] = []
    for component_index in reversed(list(nx.topological_sort(condensation))):
        members = sorted(condensation.nodes[component_index]["members"])
        strata.append(list(members))
    return strata


@dataclass
class SchemaReport:
    """The combined result of :func:`analyze_schema`."""

    shape_count: int
    recursive: FrozenSet[ShapeLabel]
    single_occurrence: Dict[ShapeLabel, bool]
    deterministic: Dict[ShapeLabel, bool]
    empty_shapes: List[ShapeLabel]
    cardinalities: Dict[ShapeLabel, Dict[IRI, CardinalityBound]]
    strata: List[List[ShapeLabel]]

    @property
    def is_sorbe(self) -> bool:
        """True when every shape is single-occurrence (the tractable fragment)."""
        return all(self.single_occurrence.values())

    def summary(self) -> str:
        """Return a short human-readable description of the schema."""
        lines = [
            f"{self.shape_count} shape(s), "
            f"{len(self.recursive)} recursive, "
            f"{'SORBE' if self.is_sorbe else 'not SORBE'}",
        ]
        for label, bounds in sorted(self.cardinalities.items()):
            rendered = ", ".join(
                f"{predicate.n3()} {bound.render()}"
                for predicate, bound in sorted(bounds.items(), key=lambda item: item[0].value)
            )
            lines.append(f"  <{label}>: {rendered if rendered else '(no concrete predicates)'}")
        return "\n".join(lines)


def analyze_schema(schema: Schema) -> SchemaReport:
    """Run every per-shape and whole-schema analysis and bundle the results."""
    single_occurrence = {}
    deterministic = {}
    empty_shapes = []
    cardinalities = {}
    for label, expr in schema.items():
        single_occurrence[label] = is_single_occurrence(expr)
        deterministic[label] = is_deterministic(expr)
        cardinalities[label] = cardinality_bounds(expr)
        if is_empty(expr):
            empty_shapes.append(label)
    return SchemaReport(
        shape_count=len(schema),
        recursive=recursive_labels(schema),
        single_occurrence=single_occurrence,
        deterministic=deterministic,
        empty_shapes=empty_shapes,
        cardinalities=cardinalities,
        strata=stratify_schema(schema),
    )
