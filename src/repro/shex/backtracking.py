"""Backtracking matcher: direct implementation of the inference rules.

Figure 1 of the paper gives an operational semantics for regular shape
expressions as inference rules::

    Or1    r1 ≃ g ⟹ r1|r2 ≃ g          Or2   r2 ≃ g ⟹ r1|r2 ≃ g
    And    r1 ≃ g1, r2 ≃ g2 ⟹ r1 ‖ r2 ≃ g1 ⊕ g2
    Empty  ε ≃ {}
    Star1  r* ≃ {}
    Star2  r ≃ g1, r* ≃ g2 ⟹ r* ≃ g1 ⊕ g2
    Arc    p ∈ vp, o ∈ vo ⟹ vp → vo ≃ ⟨s, p, o⟩

Executing the ``And`` and ``Star2`` rules requires guessing the decomposition
``g = g1 ⊕ g2``, so the naïve implementation enumerates all ``2ⁿ`` splits of
the candidate graph (Example 3) and backtracks — Section 5 shows the
resulting trace and notes the exponential blow-up.  This module implements
that algorithm faithfully (it *is* the paper's baseline), with two practical
additions: an optional step budget so benchmarks can cap runaway cases, and
statistics counters so the benchmarks can report how many decompositions were
explored.

Figure 4 extends the rules with shape typings; the ``Arcref`` rule is handled
by delegating to :meth:`ValidationContext.check_reference`, exactly as in the
derivative engine, so recursion behaves identically in both engines.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from ..rdf.graph import decompositions
from ..rdf.terms import Triple
from .expressions import (
    And,
    Arc,
    Empty,
    EmptyTriples,
    Or,
    ShapeExpr,
    Star,
)
from .node_constraints import ShapeRef
from .results import MatchResult, MatchStats
from .schema import ValidationContext
from .typing import typing_of

__all__ = ["BacktrackingEngine", "BacktrackingBudgetExceeded", "matches_backtracking"]


class BacktrackingBudgetExceeded(Exception):
    """Raised when the matcher exceeds its configured step budget.

    The benchmarks use this to stop hopeless runs (the whole point of the
    paper is that these runs explode) without hanging the harness.
    """

    def __init__(self, budget: int):
        self.budget = budget
        super().__init__(
            f"backtracking matcher exceeded its budget of {budget} rule applications"
        )


class BacktrackingEngine:
    """Matcher that executes the Figure 1 / Figure 4 inference rules directly.

    Parameters
    ----------
    budget:
        maximum number of rule applications before
        :class:`BacktrackingBudgetExceeded` is raised; ``None`` (default)
        means unlimited, which reproduces the paper's naïve implementation.
    """

    name = "backtracking"

    #: below this neighbourhood size the search runs on the caller's stack;
    #: the decomposition space is too small for stack placement to matter.
    _SEARCH_THREAD_MIN_TRIPLES = 6

    def __init__(self, budget: Optional[int] = None):
        self.budget = budget
        self._search_thread: Optional[threading.Thread] = None

    # -- public API -------------------------------------------------------------
    def match_neighbourhood(self, expr: ShapeExpr, triples: FrozenSet[Triple],
                            context: Optional[ValidationContext] = None) -> MatchResult:
        """Match a node neighbourhood against ``expr`` by backtracking search."""
        stats = MatchStats()
        triples = frozenset(triples)
        # per-phase profile: backtracking search time, accumulated into the
        # context's stats when one is present (mirroring dispatch_time in the
        # derivative engine), else into the local record.
        target = context.stats if context is not None else stats
        start = perf_counter()
        try:
            matched = self._search(expr, triples, context, stats)
        finally:
            target.backtrack_time += perf_counter() - start
        typing = typing_of(context)
        if matched:
            return MatchResult(True, typing, stats)
        return MatchResult(
            False, typing, stats,
            reason=f"no derivation tree found for {len(triples)} triples",
        )

    __call__ = match_neighbourhood

    # -- rule interpreter ---------------------------------------------------------
    def _search(self, expr: ShapeExpr, triples: FrozenSet[Triple],
                context: Optional[ValidationContext], stats: MatchStats) -> bool:
        """Run the exponential search from a deterministic stack depth.

        CPython 3.11 allocates the interpreter frame stack in fixed-size
        chunks; a recursion that oscillates across a chunk edge pays a page
        allocation and release per crossing, so the wall time of a deep
        backtracking search can swing an order of magnitude with the
        *caller's* stack depth.  Running the top-level search on a fresh
        thread pins the starting depth to a small constant, making the cost
        reproducible no matter how deeply the harness buried the call.
        Re-entries through ``check_reference`` already execute on the search
        thread and stay inline, as do small neighbourhoods where the search
        cannot go deep enough to care.
        """
        if (len(triples) < self._SEARCH_THREAD_MIN_TRIPLES
                or self._search_thread is threading.current_thread()):
            return self._match(expr, triples, context, stats)
        outcome = []

        def run() -> None:
            try:
                outcome.append((True, self._match(expr, triples, context, stats)))
            except BaseException as error:  # re-raised on the calling thread
                outcome.append((False, error))

        worker = threading.Thread(target=run, name="backtracking-search",
                                  daemon=True)
        self._search_thread = worker
        try:
            worker.start()
            worker.join()
        finally:
            self._search_thread = None
        ok, payload = outcome[0]
        if ok:
            return payload
        raise payload

    def _tick(self, stats: MatchStats) -> None:
        stats.rule_applications += 1
        if self.budget is not None and stats.rule_applications > self.budget:
            raise BacktrackingBudgetExceeded(self.budget)

    def _match(self, expr: ShapeExpr, triples: FrozenSet[Triple],
               context: Optional[ValidationContext], stats: MatchStats) -> bool:
        self._tick(stats)
        if isinstance(expr, Empty):
            # ∅ has no matching graph at all
            return False
        if isinstance(expr, EmptyTriples):
            # rule Empty: ε ≃ {}
            return not triples
        if isinstance(expr, Arc):
            # rule Arc / Arctype / Arcref: exactly one triple
            return self._match_arc(expr, triples, context, stats)
        if isinstance(expr, Or):
            # rules Or1 / Or2
            return (self._match(expr.left, triples, context, stats)
                    or self._match(expr.right, triples, context, stats))
        if isinstance(expr, And):
            # rule And: try every decomposition g = g1 ⊕ g2
            for left_part, right_part in self._decompositions(triples, stats):
                if (self._match(expr.left, left_part, context, stats)
                        and self._match(expr.right, right_part, context, stats)):
                    return True
            return False
        if isinstance(expr, Star):
            return self._match_star(expr, triples, context, stats)
        raise TypeError(f"unknown shape expression: {expr!r}")

    def _match_arc(self, expr: Arc, triples: FrozenSet[Triple],
                   context: Optional[ValidationContext], stats: MatchStats) -> bool:
        if len(triples) != 1:
            return False
        (triple,) = triples
        stats.arc_checks += 1
        if not expr.predicate.matches(triple.predicate):
            return False
        constraint = expr.object
        if isinstance(constraint, ShapeRef):
            if context is None:
                raise TypeError(
                    "matching a shape-reference arc requires a ValidationContext"
                )
            return context.check_reference(triple.object, constraint.label).matched
        return constraint.matches(triple.object)

    def _match_star(self, expr: Star, triples: FrozenSet[Triple],
                    context: Optional[ValidationContext], stats: MatchStats) -> bool:
        # rule Star1
        if not triples:
            return True
        # rule Star2: g = g1 ⊕ g2 with r ≃ g1 and r* ≃ g2.  The g1 = {} split
        # would recurse forever, so only non-empty g1 candidates are explored
        # (the paper's trace in Figure 2 does the same implicitly).
        for left_part, right_part in self._decompositions(triples, stats):
            if not left_part:
                continue
            if (self._match(expr.expr, left_part, context, stats)
                    and self._match(expr, right_part, context, stats)):
                return True
        return False

    def _decompositions(self, triples: FrozenSet[Triple],
                        stats: MatchStats) -> Iterator[Tuple[FrozenSet[Triple], FrozenSet[Triple]]]:
        for pair in decompositions(triples):
            stats.decompositions += 1
            if self.budget is not None and stats.decompositions > self.budget:
                raise BacktrackingBudgetExceeded(self.budget)
            yield pair


def matches_backtracking(expr: ShapeExpr, triples: Iterable[Triple],
                         context: Optional[ValidationContext] = None,
                         budget: Optional[int] = None) -> bool:
    """Convenience wrapper: decide ``Σ ∈ Sₙ[[e]]`` with the backtracking engine."""
    engine = BacktrackingEngine(budget=budget)
    return engine.match_neighbourhood(expr, frozenset(triples), context).matched
