"""Cross-node derivative caching for bulk validation.

The derivative engine consumes a neighbourhood one triple at a time, and the
seed implementation memoised ``(expression, triple)`` pairs *within* one
neighbourhood only.  That misses the dominant redundancy of whole-graph
validation: different nodes have structurally identical neighbourhoods
(every Person has an ``age``, a ``name`` and some ``knows`` arcs), so the
very same derivative chains are recomputed for every node.

The key observation making a *global* cache sound is that ``∂t(e)`` depends
on the triple ``t`` only through its **verdict vector**: for each distinct
``(predicate-set, object-constraint)`` atom occurring in ``e``, whether
``t``'s predicate is admitted by the predicate set and ``t``'s object
satisfies the constraint.  Two triples with equal verdict vectors produce
structurally identical derivatives — regardless of which node they hang off.
Because expressions are hash-consed (:mod:`repro.shex.expressions`), the
cache key ``(expression, verdict-vector)`` hashes in O(1).

Shape references (``@label``) stay sound because the verdict for a reference
atom is obtained through :meth:`ValidationContext.check_reference` *before*
the cache is consulted: the reference resolution (and its bookkeeping in the
typing context) happens per triple exactly as in the uncached engine — only
the purely structural ``verdicts → derivative`` mapping is reused.

The cache also memoises plain constraint verdicts per ``(constraint,
object)`` pair, which collapses the repeated datatype / value-set checks the
workloads are full of.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rdf.terms import ObjectTerm
from .expressions import Arc, ShapeExpr, iter_subexpressions
from .node_constraints import NodeConstraint, PredicateSet, ShapeRef

__all__ = ["DerivativeCache"]

#: one ``(predicate-set, object-constraint)`` atom of an expression.
ArcAtom = Tuple[PredicateSet, NodeConstraint]


class DerivativeCache:
    """Persistent ``(expression, verdict-vector) → derivative`` memo table.

    One instance can be shared by any number of nodes, labels, validation
    runs and even graphs: every entry is keyed purely by expression structure
    and constraint verdicts, never by a node or a graph.  Attach it to a
    :class:`~repro.shex.derivatives.DerivativeEngine` via the ``cache``
    option (or pass ``cache=True`` to let the engine build a private one).
    """

    def __init__(self) -> None:
        #: expression → its distinct arc atoms, in deterministic first-seen order.
        self._atoms: Dict[ShapeExpr, Tuple[ArcAtom, ...]] = {}
        #: (expression, verdict vector) → derivative expression.
        self._derivatives: Dict[Tuple[ShapeExpr, Tuple[bool, ...]], ShapeExpr] = {}
        #: (constraint, object term) → verdict, for non-reference constraints.
        self._verdicts: Dict[Tuple[NodeConstraint, ObjectTerm], bool] = {}
        self.hits = 0
        self.misses = 0

    # -- bookkeeping -----------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached entry (counters included)."""
        self._atoms.clear()
        self._derivatives.clear()
        self._verdicts.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Return cache sizes and hit/miss counters (for benchmarks)."""
        return {
            "expressions": len(self._atoms),
            "derivatives": len(self._derivatives),
            "constraint_verdicts": len(self._verdicts),
            "hits": self.hits,
            "misses": self.misses,
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of derivative lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- atoms -----------------------------------------------------------------
    def atoms_for(self, expr: ShapeExpr) -> Tuple[ArcAtom, ...]:
        """Return the distinct arc atoms of ``expr`` (computed once per expression)."""
        atoms = self._atoms.get(expr)
        if atoms is None:
            seen: Dict[ArcAtom, None] = {}
            for sub in iter_subexpressions(expr):
                if isinstance(sub, Arc):
                    seen.setdefault((sub.predicate, sub.object), None)
            atoms = tuple(seen)
            self._atoms[expr] = atoms
        return atoms

    # -- verdicts --------------------------------------------------------------
    def constraint_verdict(self, constraint: NodeConstraint, term: ObjectTerm) -> bool:
        """Memoised ``constraint.matches(term)`` for non-reference constraints."""
        if isinstance(constraint, ShapeRef):  # pragma: no cover - guarded by caller
            raise TypeError("shape-reference verdicts are context-dependent")
        key = (constraint, term)
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = constraint.matches(term)
            self._verdicts[key] = verdict
        return verdict

    # -- derivatives -----------------------------------------------------------
    def lookup(self, expr: ShapeExpr, signature: Tuple[bool, ...]) -> Optional[ShapeExpr]:
        """Return the cached derivative for ``(expr, signature)``, if any."""
        cached = self._derivatives.get((expr, signature))
        if cached is not None:
            self.hits += 1
        else:
            self.misses += 1
        return cached

    def store(self, expr: ShapeExpr, signature: Tuple[bool, ...],
              result: ShapeExpr) -> None:
        """Record the derivative of ``expr`` under the given verdict vector."""
        self._derivatives[(expr, signature)] = result

    def __len__(self) -> int:
        return len(self._derivatives)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DerivativeCache({len(self._derivatives)} derivatives, "
                f"{self.hits} hits / {self.misses} misses)")
