"""Cross-node derivative caching for bulk validation.

The derivative engine consumes a neighbourhood one triple at a time, and the
seed implementation memoised ``(expression, triple)`` pairs *within* one
neighbourhood only.  That misses the dominant redundancy of whole-graph
validation: different nodes have structurally identical neighbourhoods
(every Person has an ``age``, a ``name`` and some ``knows`` arcs), so the
very same derivative chains are recomputed for every node.

The key observation making a *global* cache sound is that ``∂t(e)`` depends
on the triple ``t`` only through its **verdict vector**: for each distinct
``(predicate-set, object-constraint)`` atom occurring in ``e``, whether
``t``'s predicate is admitted by the predicate set and ``t``'s object
satisfies the constraint.  Two triples with equal verdict vectors produce
structurally identical derivatives — regardless of which node they hang off.
Because expressions are hash-consed (:mod:`repro.shex.expressions`), the
cache key ``(expression, verdict-vector)`` hashes in O(1).

Shape references (``@label``) stay sound because the verdict for a reference
atom is obtained through :meth:`ValidationContext.check_reference` *before*
the cache is consulted: the reference resolution (and its bookkeeping in the
typing context) happens per triple exactly as in the uncached engine — only
the purely structural ``verdicts → derivative`` mapping is reused.

The cache also memoises plain constraint verdicts per ``(constraint,
object)`` pair, which collapses the repeated datatype / value-set checks the
workloads are full of.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..rdf.terms import ObjectTerm
from .expressions import Arc, ShapeExpr, iter_subexpressions
from .node_constraints import NodeConstraint, PredicateSet, ShapeRef

__all__ = ["DerivativeCache", "SignatureCache"]

#: one ``(predicate-set, object-constraint)`` atom of an expression.
ArcAtom = Tuple[PredicateSet, NodeConstraint]


class DerivativeCache:
    """Persistent ``(expression, verdict-vector) → derivative`` memo table.

    One instance can be shared by any number of nodes, labels, validation
    runs and even graphs: every entry is keyed purely by expression structure
    and constraint verdicts, never by a node or a graph.  Attach it to a
    :class:`~repro.shex.derivatives.DerivativeEngine` via the ``cache``
    option (or pass ``cache=True`` to let the engine build a private one).

    ``max_entries`` bounds the two unbounded tables (derivatives and
    constraint verdicts) for long-running services: when set, the derivative
    table evicts its least-recently-used entry and the verdict table its
    oldest entry once the bound is exceeded.  Eviction can only cost
    recomputation, never correctness — every entry is a pure function of its
    key.  The default (``None``) keeps today's unbounded behaviour.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        self.max_entries = max_entries
        #: expression → its distinct arc atoms, in deterministic first-seen order.
        self._atoms: Dict[ShapeExpr, Tuple[ArcAtom, ...]] = {}
        #: (expression, verdict vector) → derivative expression; insertion
        #: order doubles as the LRU order when ``max_entries`` is set.
        self._derivatives: Dict[Tuple[ShapeExpr, Tuple[bool, ...]], ShapeExpr] = {}
        #: (constraint, object term) → verdict, for non-reference constraints.
        self._verdicts: Dict[Tuple[NodeConstraint, ObjectTerm], bool] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- bookkeeping -----------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached entry (counters included)."""
        self._atoms.clear()
        self._derivatives.clear()
        self._verdicts.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, int]:
        """Return cache sizes and hit/miss/eviction counters (for benchmarks)."""
        return {
            "expressions": len(self._atoms),
            "derivatives": len(self._derivatives),
            "constraint_verdicts": len(self._verdicts),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "max_entries": self.max_entries if self.max_entries is not None else 0,
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of derivative lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- atoms -----------------------------------------------------------------
    def atoms_for(self, expr: ShapeExpr) -> Tuple[ArcAtom, ...]:
        """Return the distinct arc atoms of ``expr`` (computed once per expression)."""
        atoms = self._atoms.get(expr)
        if atoms is None:
            seen: Dict[ArcAtom, None] = {}
            for sub in iter_subexpressions(expr):
                if isinstance(sub, Arc):
                    seen.setdefault((sub.predicate, sub.object), None)
            atoms = tuple(seen)
            self._atoms[expr] = atoms
            if self.max_entries is not None and len(self._atoms) > self.max_entries:
                # the atom table also pins its expression keys alive, so it
                # must honour the bound too (FIFO; recomputation is cheap).
                self._atoms.pop(next(iter(self._atoms)))
                self.evictions += 1
        return atoms

    def adopt_atoms(self, tables: Mapping[ShapeExpr, Tuple[ArcAtom, ...]]) -> None:
        """Seed the atom table from precomputed per-expression atom tuples.

        A :class:`~repro.shex.compiled.CompiledSchema` flattens each label's
        atoms at compile time (in the same deterministic first-seen order
        :meth:`atoms_for` would produce); adopting them saves the first walk
        per label expression and keeps atom order — and therefore verdict
        signatures — identical across processes sharing the compiled schema.
        """
        for expr, atoms in tables.items():
            if expr not in self._atoms:
                self._atoms[expr] = atoms
                if self.max_entries is not None and len(self._atoms) > self.max_entries:
                    self._atoms.pop(next(iter(self._atoms)))
                    self.evictions += 1

    # -- verdicts --------------------------------------------------------------
    def constraint_verdict(self, constraint: NodeConstraint, term: ObjectTerm) -> bool:
        """Memoised ``constraint.matches(term)`` for non-reference constraints."""
        if isinstance(constraint, ShapeRef):  # pragma: no cover - guarded by caller
            raise TypeError("shape-reference verdicts are context-dependent")
        key = (constraint, term)
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = constraint.matches(term)
            self._verdicts[key] = verdict
            if self.max_entries is not None and len(self._verdicts) > self.max_entries:
                # FIFO is enough here: verdicts are cheap to recompute, so
                # the bound matters more than perfect recency tracking.
                self._verdicts.pop(next(iter(self._verdicts)))
                self.evictions += 1
        return verdict

    # -- derivatives -----------------------------------------------------------
    def lookup(self, expr: ShapeExpr, signature: Tuple[bool, ...]) -> Optional[ShapeExpr]:
        """Return the cached derivative for ``(expr, signature)``, if any."""
        key = (expr, signature)
        cached = self._derivatives.get(key)
        if cached is not None:
            self.hits += 1
            if self.max_entries is not None:
                # refresh recency: dict order is the LRU order when bounded.
                del self._derivatives[key]
                self._derivatives[key] = cached
        else:
            self.misses += 1
        return cached

    def store(self, expr: ShapeExpr, signature: Tuple[bool, ...],
              result: ShapeExpr) -> None:
        """Record the derivative of ``expr`` under the given verdict vector."""
        self._derivatives[(expr, signature)] = result
        if self.max_entries is not None and len(self._derivatives) > self.max_entries:
            self._derivatives.pop(next(iter(self._derivatives)))
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._derivatives)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DerivativeCache({len(self._derivatives)} derivatives, "
                f"{self.hits} hits / {self.misses} misses)")


class SignatureCache:
    """Bounded ``(neighbourhood signature, shape label) → verdict`` memo.

    The dominant redundancy of hub-heavy KB graphs lives one level *above*
    the derivative cache: whole subjects share byte-identical neighbourhood
    structure, so even a perfectly cached derivative chain is replayed once
    per node.  This cache short-circuits the entire engine run for a subject
    whose canonical *neighbourhood signature* — a sorted multiset of
    ``(predicate, object-class)`` pairs, see
    :meth:`ValidationContext.node_signature` — was already validated against
    the same shape label.

    Soundness rests on two gates enforced by the caller, never by the cache:

    * only *settled* verdicts are stored (no hypothesis-bound provisional
      outcomes, no budget-poisoned results), and
    * only signature-*closed* subjects participate — subjects whose verdict
      is a pure function of the one-hop signature because every shape
      reference any candidate atom could apply to one of their objects is
      statically decided by the compiled prefilter (and no object is the
      subject itself).  Ineligible subjects get no signature at all
      (:meth:`ValidationContext.node_signature` returns ``None``).

    Entries are keyed by signature structure only, so one instance may serve
    any number of nodes and validation runs over the same (graph generation,
    schema) pair; callers drop it wholesale when the graph mutates.  When
    ``max_entries`` is set the table evicts least-recently-used entries,
    mirroring :class:`DerivativeCache`.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        self.max_entries = max_entries
        #: (signature, label) → (conforms, failure reason)
        self._verdicts: Dict[Tuple[object, object], Tuple[bool, str]] = {}
        self.hits = 0
        self.misses = 0
        self.dedupes = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop every cached verdict (counters included)."""
        self._verdicts.clear()
        self.hits = 0
        self.misses = 0
        self.dedupes = 0
        self.evictions = 0

    def lookup(self, signature: object, label: object) -> Optional[Tuple[bool, str]]:
        """Return the cached ``(conforms, reason)`` verdict, if any."""
        key = (signature, label)
        cached = self._verdicts.get(key)
        if cached is not None:
            self.hits += 1
            if self.max_entries is not None:
                # refresh recency: dict order is the LRU order when bounded.
                del self._verdicts[key]
                self._verdicts[key] = cached
        else:
            self.misses += 1
        return cached

    def store(self, signature: object, label: object,
              conforms: bool, reason: str = "") -> None:
        """Record a settled verdict for every node sharing this signature."""
        self._verdicts[(signature, label)] = (conforms, reason)
        self.dedupes += 1
        if self.max_entries is not None and len(self._verdicts) > self.max_entries:
            self._verdicts.pop(next(iter(self._verdicts)))
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of signature lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """Return table size and hit/miss/dedupe/eviction counters."""
        return {
            "signatures": len(self._verdicts),
            "hits": self.hits,
            "misses": self.misses,
            "dedupes": self.dedupes,
            "evictions": self.evictions,
            "max_entries": self.max_entries if self.max_entries is not None else 0,
        }

    def __len__(self) -> int:
        return len(self._verdicts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SignatureCache({len(self._verdicts)} signatures, "
                f"{self.hits} hits / {self.misses} misses)")
