"""Compiled schemas: static per-label fast paths for the hot validation loop.

The derivative algorithm decides each ``(node, label)`` pair by walking the
label's expression once per neighbourhood triple.  For realistic schemas most
pairs are decidable — or at least heavily prunable — from *static* properties
of the schema alone, computed **once per schema** instead of once per node:

* **nullability** — ``ν(δ(label))`` decides the empty neighbourhood outright,
* **first-predicate sets** — predicates that can begin a match; a non-empty
  neighbourhood avoiding them entirely cannot match a non-nullable shape,
* **required-predicate bounds** — sound per-predicate ``[min, max]`` triple
  counts (:func:`~repro.shex.analysis.neighbourhood_cardinality_bounds`);
  a count outside the bounds rejects before any derivative is taken,
* **allowed-predicate sets** — the algebra is closed-world (every triple must
  be consumed by some arc), so a triple whose predicate no arc admits makes
  every derivative ``∅``,
* **value screens** — for predicates whose consuming arcs all carry trivially
  decidable object constraints, a triple satisfying none of them rejects,
* **atom tables** — each label's arc atoms, hash-consed and indexed by
  predicate, so the derivative engine looks up the atoms a triple can touch
  in O(1) instead of re-testing every predicate set.

Soundness of each fast path is argued in ``docs/architecture.md`` ("Schema
compilation").  Two properties keep the prefilter compatible with the PR 1
recursion semantics: decisions depend only on the neighbourhood's predicate
multiset, trivially-screened objects and the schema — never on the typing
context — so every prefilter verdict is **definitive** (safe to cache, safe
to share across processes), and shape-reference arcs are never screened, so
hypothesis-dependent outcomes always fall through to the full engine.

A :class:`CompiledSchema` is picklable: parallel workers receive the parent's
compiled tables once per process instead of recompiling them.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..rdf.terms import IRI, Triple
from .analysis import first_predicates, neighbourhood_cardinality_bounds
from .cache import ArcAtom
from .derivatives import nullable
from .expressions import Arc, ShapeExpr, iter_subexpressions
from .node_constraints import (
    AnyValue,
    DatatypeConstraint,
    IRIStem,
    LanguageTag,
    NodeConstraint,
    NodeKindConstraint,
    ShapeRef,
    ValueSet,
)
from .schema import Schema
from .typing import ShapeLabel

__all__ = [
    "CompiledShape",
    "CompiledSchema",
    "LazyNeighbourhood",
    "PrefilterDecision",
    "predicate_counts",
    "store_counts",
]


class PrefilterDecision:
    """A definitive verdict reached without running a matching engine."""

    __slots__ = ("matched", "reason")

    def __init__(self, matched: bool, reason: str = ""):
        self.matched = matched
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefilterDecision({self.matched}, {self.reason!r})"


#: shared accept decision: accepts carry no reason, so one instance suffices.
_ACCEPT = PrefilterDecision(True)

#: bound on the per-predicate memo tables (reject decisions, candidate atom
#: sets).  They are keyed by *data* predicates, so a long-lived service
#: validating ever-new vocabulary would otherwise grow them without limit;
#: FIFO eviction only ever costs a re-computation.
_MEMO_LIMIT = 4096


def _memo_insert(table: Dict, key, value) -> None:
    """Insert into a per-predicate memo table, evicting FIFO over the bound."""
    table[key] = value
    if len(table) > _MEMO_LIMIT:
        table.pop(next(iter(table)))


def predicate_counts(triples: Iterable[Triple]) -> Counter:
    """The predicate multiset of a neighbourhood (what the prefilter consumes)."""
    counts: Counter = Counter()
    for triple in triples:
        counts[triple.predicate] += 1
    return counts


class LazyNeighbourhood:
    """An iterable ``Σgₙ`` proxy that defers the scan until iterated.

    :meth:`CompiledShape.prefilter` only touches its ``triples`` argument in
    the value-screen loop; every count-only decision (nullability, first /
    allowed / required predicates, cardinality bounds) reads the counts
    mapping alone.  When predicate counts come straight from the store
    (:func:`store_counts`), handing the prefilter this proxy means most
    decisions never materialise a single neighbourhood triple.  Stores cache
    the underlying scan, so repeated iteration costs one lookup.
    """

    __slots__ = ("_fetch", "_node")

    def __init__(self, fetch, node):
        self._fetch = fetch
        self._node = node

    def __iter__(self):
        return iter(self._fetch(self._node))


def store_counts(graph, node) -> Mapping[IRI, int]:
    """Per-predicate out-edge counts of ``node``, via the store's fast path.

    Both triple stores expose ``predicate_counts`` (the dict store reads its
    SPO index, the columnar store counts id pairs); neighbourhood snapshots
    and foreign graph objects fall back to counting materialised triples.
    """
    counter = getattr(graph, "predicate_counts", None)
    if counter is not None:
        return counter(node)
    fetch = getattr(graph, "neighbourhood_any", graph.neighbourhood)
    return predicate_counts(fetch(node))


def _is_screenable(constraint: NodeConstraint) -> bool:
    """True for constraints the value screen may evaluate ahead of the engine.

    "Trivially decidable" means: constant-time, context-free, and cheap
    enough that evaluating it twice (prefilter + engine on the unknown path)
    never dominates.  Shape references are context-dependent and therefore
    never screenable; boolean combinators and faceted constraints are left to
    the engine.
    """
    if isinstance(constraint, ValueSet):
        return True
    if isinstance(constraint, IRIStem) or isinstance(constraint, LanguageTag):
        return True
    if isinstance(constraint, DatatypeConstraint):
        return constraint.facets.is_trivial()
    if isinstance(constraint, NodeKindConstraint):
        return constraint.facets.is_trivial()
    return False


class CompiledShape:
    """Everything statically known about one label, computed once per schema."""

    __slots__ = (
        "label", "expr", "nullable", "first_exact", "first_open",
        "required", "max_counts", "allowed_exact", "allowed_stems",
        "allows_any", "screens", "atoms", "has_references", "_rejects",
    )

    def __init__(self, label: ShapeLabel, expr: ShapeExpr):
        self.label = label
        self.expr = expr
        self.nullable: bool = nullable(expr)
        self.first_exact, self.first_open = first_predicates(expr)

        # the flattened atom table, in the deterministic first-seen order the
        # derivative cache uses (so seeded atom tuples agree across processes)
        seen: Dict[ArcAtom, None] = {}
        allowed_exact: set = set()
        allowed_stems: set = set()
        allows_any = False
        has_references = False
        for sub in iter_subexpressions(expr):
            if not isinstance(sub, Arc):
                continue
            seen.setdefault((sub.predicate, sub.object), None)
            predicate_set = sub.predicate
            allowed_exact.update(predicate_set.predicates)
            if predicate_set.stem is not None:
                allowed_stems.add(predicate_set.stem)
            if predicate_set.any_predicate:
                allows_any = True
            if isinstance(sub.object, ShapeRef):
                has_references = True
        self.atoms: Tuple[ArcAtom, ...] = tuple(seen)
        self.allowed_exact: FrozenSet[IRI] = frozenset(allowed_exact)
        self.allowed_stems: Tuple[str, ...] = tuple(sorted(allowed_stems))
        self.allows_any: bool = allows_any
        self.has_references: bool = has_references

        bounds = neighbourhood_cardinality_bounds(expr)
        self.required: Tuple[Tuple[IRI, int], ...] = tuple(
            (predicate, bound.minimum)
            for predicate, bound in sorted(bounds.items(),
                                           key=lambda item: item[0].value)
            if bound.minimum > 0
        )
        self.max_counts: Dict[IRI, int] = {
            predicate: bound.maximum
            for predicate, bound in bounds.items()
            if bound.maximum is not None
        }

        # value screens: predicate → the constraints of every arc that could
        # consume a triple with that predicate.  Only built when *all* such
        # constraints are trivially decidable, none is the wildcard (which
        # can never reject) and no wildcard-predicate arc could absorb the
        # triple instead.
        self.screens: Dict[IRI, Tuple[NodeConstraint, ...]] = {}
        if not allows_any:
            for predicate in self.allowed_exact:
                constraints: List[NodeConstraint] = []
                screenable = not any(predicate.value.startswith(stem)
                                     for stem in self.allowed_stems)
                if screenable:
                    for predicate_set, constraint in self.atoms:
                        if not predicate_set.matches(predicate):
                            continue
                        if isinstance(constraint, AnyValue) \
                                or not _is_screenable(constraint):
                            screenable = False
                            break
                        constraints.append(constraint)
                if screenable and constraints:
                    self.screens[predicate] = tuple(constraints)

        # reject decisions are pure functions of (shape, rule, predicate):
        # memoising them makes the steady-state reject path allocation-free.
        self._rejects: Dict[Tuple[str, Optional[IRI]], PrefilterDecision] = {}

    def allows_predicate(self, predicate: IRI) -> bool:
        """True when some arc of this shape admits ``predicate``."""
        if self.allows_any or predicate in self.allowed_exact:
            return True
        return any(predicate.value.startswith(stem) for stem in self.allowed_stems)

    def _reject(self, rule: str,
                predicate: Optional[IRI] = None) -> PrefilterDecision:
        """The memoised reject decision for ``(rule, predicate)``.

        The reason string is only formatted on the first occurrence of a
        ``(rule, predicate)`` pair; afterwards rejects are allocation-free.
        """
        key = (rule, predicate)
        decision = self._rejects.get(key)
        if decision is None:
            if rule == "empty":
                reason = "empty neighbourhood but the shape requires arcs"
            elif rule == "first":
                reason = ("no triple's predicate is in the shape's "
                          "first-predicate set, so nothing can begin a match")
            elif rule == "allowed":
                reason = f"predicate {predicate.n3()} is not allowed by the shape"
            elif rule == "max":
                reason = f"more {predicate.n3()} arcs than the shape allows"
            elif rule == "required":
                reason = f"missing required {predicate.n3()} arc(s)"
            else:  # "screen"
                reason = (f"a {predicate.n3()} triple's object satisfies no "
                          "constraint able to consume it")
            decision = PrefilterDecision(False, reason)
            _memo_insert(self._rejects, key, decision)
        return decision

    # -- the prefilter ---------------------------------------------------------
    def prefilter(self, triples: Iterable[Triple],
                  counts: Optional[Mapping[IRI, int]] = None
                  ) -> Optional[PrefilterDecision]:
        """Decide the neighbourhood statically, or return ``None`` (unknown).

        Every returned decision agrees with the derivative engine by the
        soundness arguments in ``docs/architecture.md``; ``None`` means the
        engine must run.  Decisions never consult the typing context, so they
        are definitive even inside recursive validations.
        """
        if counts is None:
            counts = predicate_counts(triples)
        if not counts:
            if self.nullable:
                return _ACCEPT
            return self._reject("empty")
        if not self.nullable and not self.first_open \
                and self.first_exact.isdisjoint(counts):
            return self._reject("first")
        allowed_exact = self.allowed_exact
        allows_any = self.allows_any
        allowed_stems = self.allowed_stems
        max_counts = self.max_counts
        for predicate, count in counts.items():
            if predicate not in allowed_exact and not allows_any \
                    and not any(predicate.value.startswith(stem)
                                for stem in allowed_stems):
                return self._reject("allowed", predicate)
            if max_counts:
                maximum = max_counts.get(predicate)
                if maximum is not None and count > maximum:
                    return self._reject("max", predicate)
        for predicate, minimum in self.required:
            if counts.get(predicate, 0) < minimum:
                return self._reject("required", predicate)
        if self.screens:
            for triple in triples:
                screen = self.screens.get(triple.predicate)
                if screen is None:
                    continue
                obj = triple.object
                if not any(constraint.matches(obj) for constraint in screen):
                    return self._reject("screen", triple.predicate)
        return None


class CompiledSchema:
    """Per-label static tables for a whole schema, plus the shared atom index.

    Build one per :class:`~repro.shex.schema.Schema` (the
    :class:`~repro.shex.validator.Validator` does this by default) and thread
    it through validation contexts; workers of the parallel bulk path receive
    it pickled instead of recompiling.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._shapes: Dict[ShapeLabel, CompiledShape] = {
            label: CompiledShape(label, expr) for label, expr in schema.items()
        }
        # the schema-wide predicate → atom index used by the derivative
        # engine: exact entries resolve in one dict lookup, stem/wildcard
        # atoms are the (rare) general tail evaluated per predicate.
        exact: Dict[IRI, set] = {}
        general: Dict[ArcAtom, None] = {}
        known: Dict[ArcAtom, None] = {}
        for shape in self._shapes.values():
            for atom in shape.atoms:
                known.setdefault(atom, None)
                predicate_set = atom[0]
                if predicate_set.any_predicate or predicate_set.stem is not None:
                    general.setdefault(atom, None)
                else:
                    for predicate in predicate_set.predicates:
                        exact.setdefault(predicate, set()).add(atom)
        self._exact_atoms: Dict[IRI, FrozenSet[ArcAtom]] = {
            predicate: frozenset(atoms) for predicate, atoms in exact.items()
        }
        self._general_atoms: Tuple[ArcAtom, ...] = tuple(general)
        self.known_atoms: FrozenSet[ArcAtom] = frozenset(known)
        #: memoised candidate sets per concrete predicate seen in the data.
        self._candidates: Dict[IRI, FrozenSet[ArcAtom]] = {}
        #: memoised *ordered* candidate tuples per predicate (signature path).
        self._signature_atoms: Dict[IRI, Tuple] = {}

    # -- accessors -------------------------------------------------------------
    def shape(self, label: ShapeLabel | str) -> CompiledShape:
        """Return the compiled tables for ``label``."""
        label = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
        return self._shapes[label]

    def shape_or_none(self, label: ShapeLabel) -> Optional[CompiledShape]:
        """One-lookup variant of :meth:`shape` for the hot path."""
        return self._shapes.get(label)

    def __contains__(self, label: object) -> bool:
        if isinstance(label, str):
            label = ShapeLabel(label)
        return label in self._shapes

    def __len__(self) -> int:
        return len(self._shapes)

    def atom_tables(self) -> Dict[ShapeExpr, Tuple[ArcAtom, ...]]:
        """Per-label-expression atom tuples, for seeding a derivative cache."""
        return {shape.expr: shape.atoms for shape in self._shapes.values()}

    # -- the predicate-indexed atom dispatch -----------------------------------
    def candidate_atoms(self, predicate: IRI) -> FrozenSet[ArcAtom]:
        """The atoms (schema-wide) whose predicate set admits ``predicate``.

        One dict lookup after the first query for a predicate.  The
        derivative engine uses this to decide an atom's predicate test with a
        set-membership check instead of re-running ``PredicateSet.matches``
        for every atom at every derivative step.
        """
        cached = self._candidates.get(predicate)
        if cached is not None:
            return cached
        atoms = set(self._exact_atoms.get(predicate, ()))
        for atom in self._general_atoms:
            if atom[0].matches(predicate):
                atoms.add(atom)
        result = frozenset(atoms)
        _memo_insert(self._candidates, predicate, result)
        return result

    def signature_atoms(self, predicate: IRI
                        ) -> Tuple[Tuple[ArcAtom, object], ...]:
        """:meth:`candidate_atoms` in a *deterministic* order, with ref labels.

        Neighbourhood signatures record one verdict bit per candidate atom, so
        the bit order must be identical every time a signature is built — a
        ``frozenset`` iterates in hash-table order, which can differ between
        processes and even between rebuilds after memo eviction.  This
        accessor sorts the atoms by their (stable) textual form once per
        predicate and pairs each with the referenced shape label (``None``
        for plain constraints), pre-answering the ``isinstance(constraint,
        ShapeRef)`` test the signature loop would otherwise repeat per triple.
        """
        cached = self._signature_atoms.get(predicate)
        if cached is not None:
            return cached
        ordered = sorted(
            self.candidate_atoms(predicate),
            key=lambda atom: (atom[0].describe(), atom[1].describe(), repr(atom)),
        )
        def _ref_label(constraint) -> Optional[ShapeLabel]:
            if not isinstance(constraint, ShapeRef):
                return None
            label = constraint.label
            return label if isinstance(label, ShapeLabel) else ShapeLabel(str(label))

        result = tuple((atom, _ref_label(atom[1])) for atom in ordered)
        _memo_insert(self._signature_atoms, predicate, result)
        return result

    # -- the prefilter ---------------------------------------------------------
    def prefilter(self, label: ShapeLabel | str, triples: Iterable[Triple],
                  counts: Optional[Mapping[IRI, int]] = None
                  ) -> Optional[PrefilterDecision]:
        """Statically decide ``triples`` against ``label``, or ``None``."""
        return self.shape(label).prefilter(triples, counts)

    def decides(self, label: ShapeLabel, triples: Iterable[Triple],
                counts: Optional[Mapping[IRI, int]] = None) -> bool:
        """True when the prefilter settles ``(label, neighbourhood)`` outright.

        Used by the reference-graph partitioner: a reference whose target is
        statically decidable resolves locally in any worker, without
        recursion, so it needs no cross-component scheduling edge.
        """
        return self.prefilter(label, triples, counts) is not None

    def stats(self) -> Dict[str, int]:
        """Summary counters (for benchmarks and the CLI)."""
        return {
            "labels": len(self._shapes),
            "atoms": len(self.known_atoms),
            "indexed_predicates": len(self._exact_atoms),
            "general_atoms": len(self._general_atoms),
            "screened_predicates": sum(
                len(shape.screens) for shape in self._shapes.values()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledSchema({len(self._shapes)} labels, {len(self.known_atoms)} atoms)"
