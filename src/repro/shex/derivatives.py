"""Regular shape expression derivatives (Sections 6 and 7 of the paper).

The derivative of a shape with respect to a triple ``t`` is the shape of the
*remaining* triples: ``∂t(Sₙ(E)) = {ts | t ∘ ts ∈ Sₙ(E)}``.  Together with
the nullability predicate ``ν`` this yields a matching algorithm that
consumes the neighbourhood one triple at a time, with no graph decomposition
and no backtracking::

    e ≃ {}        ⇔  ν(e)
    e ≃ t ∘ ts    ⇔  ∂t(e) ≃ ts

The derivative rules implemented here are exactly those of Section 6, plus
the context-aware variant ``∂t(e, Γ)`` of Section 8 which resolves shape
references ``@label`` by recursively validating the triple's object under the
typing context ``Γ``.

The :class:`DerivativeEngine` adds the engineering the paper alludes to:

* application of the simplification rules through the smart constructors
  (switchable, for the ablation benchmark),
* optional memoisation of ``(expression, triple)`` derivative computations,
* deterministic triple ordering (by predicate) which empirically keeps the
  intermediate expressions small,
* statistics collection (derivative steps, peak expression size).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from ..rdf.graph import OrderedTriples
from ..rdf.terms import Triple
from .cache import ArcAtom, DerivativeCache
from .expressions import (
    EMPTY,
    EPSILON,
    And,
    Arc,
    Empty,
    EmptyTriples,
    Or,
    ShapeExpr,
    Star,
    alternative,
    expression_size,
    interleave,
)
from .node_constraints import ShapeRef
from .results import MatchResult, MatchStats
from .schema import ValidationContext
from .typing import typing_of

__all__ = [
    "nullable",
    "derivative",
    "derivative_graph",
    "matches",
    "derivative_trace",
    "DerivativeEngine",
    "DerivativeCache",
]


# --------------------------------------------------------------------- nullability
def nullable(expr: ShapeExpr) -> bool:
    """``ν(e)`` — True when ``e`` matches the empty graph (Section 6).

    * ``ν(∅) = false``              * ``ν(e*) = true``
    * ``ν(ε) = true``               * ``ν(e1 ‖ e2) = ν(e1) ∧ ν(e2)``
    * ``ν(vp → vo) = false``        * ``ν(e1 | e2) = ν(e1) ∨ ν(e2)``
    """
    if isinstance(expr, EmptyTriples):
        return True
    if isinstance(expr, (Empty, Arc)):
        return False
    if isinstance(expr, Star):
        return True
    if isinstance(expr, And):
        return nullable(expr.left) and nullable(expr.right)
    if isinstance(expr, Or):
        return nullable(expr.left) or nullable(expr.right)
    raise TypeError(f"unknown shape expression: {expr!r}")


# ---------------------------------------------------------------------- derivatives
def _walk_derivative(expr: ShapeExpr, derive_arc, simplify: bool,
                     stats: Optional[MatchStats]) -> ShapeExpr:
    """The Section 6 rule structure, parameterised over the arc case.

    ``derive_arc(arc) -> ShapeExpr`` decides a single arc — against a
    concrete triple (:func:`derivative`) or from a precomputed verdict
    vector (:func:`_derivative_by_verdicts`).  Keeping one walker guarantees
    the cached and uncached paths can never diverge on the other rules.
    """
    if stats is not None:
        stats.derivative_steps += 1
    if isinstance(expr, (Empty, EmptyTriples)):
        return EMPTY
    if isinstance(expr, Arc):
        return derive_arc(expr)
    if isinstance(expr, Star):
        inner = _walk_derivative(expr.expr, derive_arc, simplify, stats)
        return interleave(inner, expr, simplify=simplify)
    if isinstance(expr, And):
        left = _walk_derivative(expr.left, derive_arc, simplify, stats)
        right = _walk_derivative(expr.right, derive_arc, simplify, stats)
        return alternative(
            interleave(left, expr.right, simplify=simplify),
            interleave(right, expr.left, simplify=simplify),
            simplify=simplify,
        )
    if isinstance(expr, Or):
        left = _walk_derivative(expr.left, derive_arc, simplify, stats)
        right = _walk_derivative(expr.right, derive_arc, simplify, stats)
        return alternative(left, right, simplify=simplify)
    raise TypeError(f"unknown shape expression: {expr!r}")


def derivative(expr: ShapeExpr, triple: Triple,
               context: Optional[ValidationContext] = None,
               simplify: bool = True,
               stats: Optional[MatchStats] = None) -> ShapeExpr:
    """``∂t(e)`` — the derivative of ``expr`` with respect to ``triple``.

    The rules are (Section 6)::

        ∂t(∅) = ∅
        ∂t(ε) = ∅
        ∂⟨s,p,o⟩(vp → vo) = ε   if p ∈ vp and o ∈ vo, else ∅
        ∂t(e*)       = ∂t(e) ‖ e*
        ∂t(e1 ‖ e2)  = ∂t(e1) ‖ e2  |  ∂t(e2) ‖ e1
        ∂t(e1 | e2)  = ∂t(e1) | ∂t(e2)

    When an arc's object constraint is a shape reference ``@label`` the
    context-aware rule of Section 8 is used: the triple's object is validated
    against the referenced shape under ``context`` (which must then be
    provided).  Confirmed references are recorded in ``context.typing``.
    """
    return _walk_derivative(
        expr, lambda arc: _derive_arc(arc, triple, context, stats),
        simplify, stats,
    )


def _derive_arc(expr: Arc, triple: Triple,
                context: Optional[ValidationContext],
                stats: Optional[MatchStats]) -> ShapeExpr:
    """Derivative of a single arc expression with respect to one triple."""
    if stats is not None:
        stats.arc_checks += 1
    if not expr.predicate.matches(triple.predicate):
        return EMPTY
    constraint = expr.object
    if isinstance(constraint, ShapeRef):
        if context is None:
            raise TypeError(
                "derivative of a shape-reference arc requires a ValidationContext"
            )
        result = context.check_reference(triple.object, constraint.label)
        return EPSILON if result.matched else EMPTY
    return EPSILON if constraint.matches(triple.object) else EMPTY


def derivative_graph(expr: ShapeExpr, triples: Iterable[Triple],
                     context: Optional[ValidationContext] = None,
                     simplify: bool = True,
                     stats: Optional[MatchStats] = None) -> ShapeExpr:
    """``∂g(e)`` — derivative with respect to a whole set of triples.

    Implements ``∂{}(e) = e`` and ``∂(t ∘ ts)(e) = ∂ts(∂t(e))``; triples are
    consumed in the iteration order of ``triples``.
    """
    current = expr
    for triple in triples:
        current = derivative(current, triple, context, simplify, stats)
        if stats is not None:
            stats.observe_expression_size(expression_size(current))
        if isinstance(current, Empty):
            # ∅ is absorbing: no continuation can succeed
            return EMPTY
    return current


def matches(expr: ShapeExpr, triples: Iterable[Triple],
            context: Optional[ValidationContext] = None) -> bool:
    """Decide ``Σ ∈ Sₙ[[e]]`` with the derivative algorithm of Section 7."""
    return nullable(derivative_graph(expr, triples, context))


def derivative_trace(expr: ShapeExpr, triples: Iterable[Triple],
                     context: Optional[ValidationContext] = None) -> List[Tuple[Triple, ShapeExpr]]:
    """Return the list of ``(triple, derivative-after-consuming-it)`` steps.

    Reproduces the traces of Examples 11 and 12; mainly used by tests,
    documentation and the example scripts.
    """
    steps: List[Tuple[Triple, ShapeExpr]] = []
    current = expr
    for triple in triples:
        current = derivative(current, triple, context)
        steps.append((triple, current))
    return steps


# ------------------------------------------------------------------------- engine
class DerivativeEngine:
    """Configurable derivative-based matcher.

    Parameters
    ----------
    simplify:
        apply the Section 4 simplification rules while building derivatives
        (default True; the ablation benchmark B8 sets it to False).
    order_by_predicate:
        sort the neighbourhood by predicate before consuming it.  Any order
        is correct; grouping equal predicates empirically keeps intermediate
        expressions smaller for interleave-heavy shapes.
    memoize:
        cache ``(expression, triple) → derivative`` pairs within one
        neighbourhood match.  Only enabled for reference-free expressions
        because reference resolution has side effects on the context.
    cache:
        an optional **global** :class:`~repro.shex.cache.DerivativeCache`
        shared across nodes, labels and validation runs.  Pass a cache
        instance to share it between engines, or ``True`` to let the engine
        build a private one.  Unlike ``memoize``, the global cache also
        handles expressions containing shape references: the per-triple cache
        key is the vector of constraint/reference *verdicts*, so reference
        resolution still runs through the context while the structural
        derivative construction is reused across neighbourhoods.
    """

    name = "derivatives"

    def __init__(self, simplify: bool = True, order_by_predicate: bool = True,
                 memoize: bool = True,
                 cache: Union[None, bool, DerivativeCache] = None):
        self.simplify = simplify
        self.order_by_predicate = order_by_predicate
        self.memoize = memoize
        if cache is True:
            cache = DerivativeCache()
        elif cache is False:
            cache = None
        self.cache: Optional[DerivativeCache] = cache

    @property
    def wants_ordered_neighbourhoods(self) -> bool:
        """True when the context should hand this engine predicate-sorted
        neighbourhoods (:meth:`Graph.neighbourhood_ordered`) instead of raw
        frozensets — the engine would sort them anyway."""
        return self.order_by_predicate

    def order_triples(self, triples: Iterable[Triple]) -> List[Triple]:
        """Return the triples in the order the engine will consume them.

        :class:`~repro.rdf.graph.OrderedTriples` carries the promise of
        already being predicate-sorted (``Graph.neighbourhood_ordered`` hands
        the engines those, so re-sorting per ``(node, label)`` pair would
        waste the graph-side cache); any other iterable is sorted by
        predicate when ``order_by_predicate`` is set.
        """
        if self.order_by_predicate and isinstance(triples, OrderedTriples):
            return list(triples)
        triples = list(triples)
        if self.order_by_predicate:
            triples.sort(key=Triple.sort_key)
        return triples

    def match_neighbourhood(self, expr: ShapeExpr, triples: FrozenSet[Triple],
                            context: Optional[ValidationContext] = None) -> MatchResult:
        """Match a node neighbourhood ``Σgₙ`` against ``expr``.

        This is the engine entry point used by the validator and by
        :class:`~repro.shex.schema.ValidationContext` for recursive shape
        references.
        """
        stats = MatchStats()
        stats.observe_expression_size(expression_size(expr))
        ordered = self.order_triples(triples)
        global_cache = self.cache
        if global_cache is not None:
            return self._match_flattened(expr, ordered, context,
                                         global_cache, stats)
        cache: Optional[Dict[Tuple[ShapeExpr, Triple], ShapeExpr]] = (
            {} if self.memoize and not _has_references(expr) else None
        )
        current = expr
        for triple in ordered:
            if cache is not None:
                key = (current, triple)
                cached = cache.get(key)
                if cached is None:
                    cached = derivative(current, triple, context, self.simplify, stats)
                    cache[key] = cached
                current = cached
            else:
                current = derivative(current, triple, context, self.simplify, stats)
            stats.observe_expression_size(expression_size(current))
            if isinstance(current, Empty):
                # typing_of reads the context's *current* typing: derivative
                # steps may have confirmed pairs while consuming triples
                return MatchResult(
                    False, typing_of(context), stats,
                    reason=f"no continuation after consuming {triple.n3()}",
                )
        typing = typing_of(context)
        if nullable(current):
            return MatchResult(True, typing, stats)
        return MatchResult(
            False, typing, stats,
            reason="remaining expression is not nullable "
                   f"(missing required arcs): {current.to_str()}",
        )

    # engines are also used directly as NeighbourhoodMatcher callables
    __call__ = match_neighbourhood

    def _match_flattened(self, expr: ShapeExpr, ordered: List[Triple],
                         context: Optional[ValidationContext],
                         cache: DerivativeCache,
                         stats: MatchStats) -> MatchResult:
        """The global-cache matching loop, flattened for the hot path.

        Each triple is abstracted into its verdict vector over the current
        expression's arc atoms (resolving shape references through the
        context, with the usual side effects); the structural derivative for
        that vector is then looked up or computed once per distinct vector.
        Compared to the naive per-triple step, everything loop-invariant is
        hoisted out (bound methods, the compiled tables, the candidate-atom
        set per *run* of equal predicates — the neighbourhood is
        predicate-sorted) and the verdict bits go into a scratch buffer
        reused across triples; the per-atom verdict *dict* is only
        materialised on a cache miss, so the steady-state hit path allocates
        nothing but the lookup key.  The scratch buffer is local to this
        call: a reference check can re-enter the engine, and a shared
        per-engine buffer would be clobbered by the nested activation.

        When the context carries a :class:`~repro.shex.compiled.CompiledSchema`
        the predicate test per atom is answered from its predicate-indexed
        atom table (one membership check against the candidate set for the
        triple's predicate) instead of re-running ``PredicateSet.matches``
        for every atom at every step.  Atoms outside the compiled tables
        (bare expressions not part of the schema) keep the direct test.

        The loop also feeds the per-phase profile: wall time spent here goes
        to ``dispatch_time``, the slice spent in global-cache lookups and
        stores to ``cache_time`` — accumulated into the context's stats when
        one is present (per-entry deltas are carved out of those by the bulk
        path), else into the local record.
        """
        simplify = self.simplify
        atoms_for = cache.atoms_for
        lookup = cache.lookup
        store = cache.store
        constraint_verdict = cache.constraint_verdict
        check_reference = context.check_reference if context is not None else None
        compiled = getattr(context, "compiled", None)
        known_atoms = compiled.known_atoms if compiled is not None else None
        candidate_atoms = compiled.candidate_atoms if compiled is not None else None
        target = context.stats if context is not None else stats
        scratch: List[bool] = []
        last_predicate = None
        candidates: Optional[FrozenSet[ArcAtom]] = None
        current = expr
        cache_clock = 0.0
        start = perf_counter()
        for triple in ordered:
            predicate = triple.predicate
            obj = triple.object
            if predicate is not last_predicate and predicate != last_predicate:
                last_predicate = predicate
                if candidate_atoms is not None:
                    candidates = candidate_atoms(predicate)
            atoms = atoms_for(current)
            stats.arc_checks += len(atoms)
            del scratch[:]
            for atom in atoms:
                if known_atoms is not None and atom in known_atoms:
                    admits = atom in candidates
                else:
                    admits = atom[0].matches(predicate)
                if not admits:
                    scratch.append(False)
                elif isinstance(atom[1], ShapeRef):
                    if check_reference is None:
                        raise TypeError(
                            "derivative of a shape-reference arc requires a "
                            "ValidationContext"
                        )
                    scratch.append(check_reference(obj, atom[1].label).matched)
                else:
                    scratch.append(constraint_verdict(atom[1], obj))
            # the simplify flag changes the structural result, so it is part
            # of the key: one cache safely serves differently-configured
            # engines.
            key_signature = (simplify, *scratch)
            step = perf_counter()
            current_next = lookup(current, key_signature)
            if current_next is None:
                verdicts: Dict[ArcAtom, bool] = dict(zip(atoms, scratch))
                current_next = _derivative_by_verdicts(current, verdicts,
                                                       simplify, stats)
                store(current, key_signature, current_next)
            cache_clock += perf_counter() - step
            current = current_next
            stats.observe_expression_size(expression_size(current))
            if isinstance(current, Empty):
                target.dispatch_time += perf_counter() - start - cache_clock
                target.cache_time += cache_clock
                return MatchResult(
                    False, typing_of(context), stats,
                    reason=f"no continuation after consuming {triple.n3()}",
                )
        target.dispatch_time += perf_counter() - start - cache_clock
        target.cache_time += cache_clock
        typing = typing_of(context)
        if nullable(current):
            return MatchResult(True, typing, stats)
        return MatchResult(
            False, typing, stats,
            reason="remaining expression is not nullable "
                   f"(missing required arcs): {current.to_str()}",
        )


def _derivative_by_verdicts(expr: ShapeExpr, verdicts: Mapping[ArcAtom, bool],
                            simplify: bool,
                            stats: Optional[MatchStats] = None) -> ShapeExpr:
    """``∂t(e)`` where every arc's outcome is given by a precomputed verdict.

    Same walker as :func:`derivative`, but arc atoms are decided by the
    ``verdicts`` mapping instead of re-checking the triple, which is what
    makes the result reusable for *any* triple with the same verdict vector
    (see :class:`~repro.shex.cache.DerivativeCache`).
    """
    return _walk_derivative(
        expr,
        lambda arc: EPSILON if verdicts[(arc.predicate, arc.object)] else EMPTY,
        simplify, stats,
    )


def _has_references(expr: ShapeExpr) -> bool:
    """True if ``expr`` contains any ``@label`` arc."""
    from .expressions import iter_subexpressions

    return any(
        isinstance(sub, Arc) and isinstance(sub.object, ShapeRef)
        for sub in iter_subexpressions(expr)
    )
