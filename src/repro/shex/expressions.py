"""Regular Shape Expressions: the algebra of Section 4 of the paper.

The abstract syntax is::

    E, F ::= ∅            empty (no shape at all)
           | ε            the empty set of triples
           | vp → vo      an arc with predicate in vp and object in vo
           | E*            Kleene closure (zero or more E)
           | E ‖ F         And — unordered concatenation / interleave
           | E | F         Or — alternative

Derived operators (defined exactly as in the paper):

* ``E+  = E ‖ E*``
* ``E?  = E | ε``
* ``E{m,n}`` — between ``m`` and ``n`` repetitions, by recursive expansion.

The classes are immutable and hashable so that derivative computations can be
memoised.  The *smart constructors* :func:`interleave` and :func:`alternative`
apply the simplification rules listed at the end of Section 4 (``∅ | x = x``,
``∅ ‖ x = ∅``, ``ε ‖ x = x`` …); these rules are what keeps the derivative
representation small, and the ablation benchmark B8 switches them off to
measure their effect.

Expressions are additionally *hash-consed*: every constructor interns the
node in a module-level table, so structurally-equal expressions are the same
object.  Hashes are computed once at construction time, which makes
expressions O(1) dictionary keys — the property the global derivative cache
(:mod:`repro.shex.cache`) relies on.  :func:`clear_expression_caches` drops
the interning table (long-lived processes validating many unrelated schemas
may want to call it between runs); structural equality keeps working across
a clear because ``__eq__`` falls back to comparing children.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

from ..rdf.terms import IRI, Literal, ObjectTerm
from .node_constraints import (
    AnyValue,
    NodeConstraint,
    PredicateSet,
    ShapeRef,
    ValueSet,
)

__all__ = [
    "ShapeExpr",
    "Empty",
    "EmptyTriples",
    "Arc",
    "Star",
    "And",
    "Or",
    "EMPTY",
    "EPSILON",
    "arc",
    "interleave",
    "alternative",
    "interleave_all",
    "alternative_all",
    "star",
    "plus",
    "optional",
    "repeat",
    "expression_size",
    "expression_depth",
    "iter_subexpressions",
    "referenced_labels",
    "clear_expression_caches",
    "clear_intern_tables",
    "expression_cache_stats",
    "set_intern_limit",
]


#: interning table: structural key → the canonical instance for that key.
_INTERN: Dict[tuple, "ShapeExpr"] = {}
#: memoised AST node counts, keyed by interned expression.
_SIZE_CACHE: Dict["ShapeExpr", int] = {}
#: optional bound on either table (None = unbounded, the historical default).
_INTERN_LIMIT: Optional[int] = None
#: entries dropped to honour the bound, for observability.
_INTERN_EVICTIONS = 0


def set_intern_limit(limit: Optional[int]) -> None:
    """Bound the interning and size tables to at most ``limit`` entries.

    Long-running services interning many unrelated schemas can cap the
    module-level tables; once full, the oldest entry is dropped (FIFO —
    entries are pure functions of their key, so eviction can only cost a
    re-construction, never correctness: structural equality keeps working
    for evicted expressions, they just stop being pointer-equal to new
    ones).  ``None`` restores the unbounded default.
    """
    global _INTERN_LIMIT
    if limit is not None and limit < 1:
        raise ValueError("intern limit must be at least 1 (or None for unbounded)")
    _INTERN_LIMIT = limit
    if limit is not None:
        while len(_INTERN) > limit:
            _evict_one(_INTERN)
        while len(_SIZE_CACHE) > limit:
            _evict_one(_SIZE_CACHE)


def _evict_one(table: Dict) -> None:
    global _INTERN_EVICTIONS
    table.pop(next(iter(table)))
    _INTERN_EVICTIONS += 1


def clear_expression_caches() -> None:
    """Drop the interning table and the memoised size cache.

    Existing expressions stay valid (equality falls back to a structural
    comparison), but new structurally-equal constructions will no longer be
    pointer-equal to the old ones.  Any long-lived
    :class:`~repro.shex.cache.DerivativeCache` should be cleared alongside
    (``cache.clear()``): its entries keep pre-clear expressions alive and,
    without pointer equality, every lookup pays a structural comparison.
    """
    global _INTERN_EVICTIONS
    _INTERN.clear()
    _SIZE_CACHE.clear()
    _INTERN_EVICTIONS = 0


#: explicit alias for tests and services that reason about the intern bound.
clear_intern_tables = clear_expression_caches


def expression_cache_stats() -> Dict[str, int]:
    """Return the sizes (and bound counters) of the expression caches."""
    return {
        "interned": len(_INTERN),
        "sizes": len(_SIZE_CACHE),
        "limit": _INTERN_LIMIT if _INTERN_LIMIT is not None else 0,
        "evictions": _INTERN_EVICTIONS,
    }


class ShapeExpr:
    """Base class of every regular shape expression node."""

    __slots__ = ()

    # -- operator sugar ------------------------------------------------------
    def __or__(self, other: "ShapeExpr") -> "ShapeExpr":
        """``e1 | e2`` builds the alternative of two expressions."""
        return alternative(self, other)

    def __and__(self, other: "ShapeExpr") -> "ShapeExpr":
        """``e1 & e2`` builds the unordered concatenation ``e1 ‖ e2``."""
        return interleave(self, other)

    def star(self) -> "ShapeExpr":
        """``E*`` — zero or more repetitions."""
        return star(self)

    def plus(self) -> "ShapeExpr":
        """``E+ = E ‖ E*``."""
        return plus(self)

    def optional(self) -> "ShapeExpr":
        """``E? = E | ε``."""
        return optional(self)

    def repeat(self, minimum: int, maximum: Optional[int]) -> "ShapeExpr":
        """``E{m,n}`` by the paper's recursive expansion."""
        return repeat(self, minimum, maximum)

    # -- introspection ---------------------------------------------------------
    def children(self) -> Tuple["ShapeExpr", ...]:
        """Return the direct sub-expressions."""
        return ()

    def to_str(self) -> str:
        """Return a compact textual rendering (used in traces and reports)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_str()


class Empty(ShapeExpr):
    """``∅`` — the expression matching no graph at all."""

    __slots__ = ()
    _instance: Optional["Empty"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def to_str(self) -> str:
        return "∅"

    def __reduce__(self):
        return (Empty, ())

    def __repr__(self) -> str:
        return "EMPTY"

    def __eq__(self, other) -> bool:
        return isinstance(other, Empty)

    def __hash__(self) -> int:
        return hash("Empty")


class EmptyTriples(ShapeExpr):
    """``ε`` — the expression matching exactly the empty set of triples."""

    __slots__ = ()
    _instance: Optional["EmptyTriples"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def to_str(self) -> str:
        return "ε"

    def __reduce__(self):
        return (EmptyTriples, ())

    def __repr__(self) -> str:
        return "EPSILON"

    def __eq__(self, other) -> bool:
        return isinstance(other, EmptyTriples)

    def __hash__(self) -> int:
        return hash("EmptyTriples")


#: Singleton instance of ``∅``.
EMPTY = Empty()
#: Singleton instance of ``ε``.
EPSILON = EmptyTriples()


#: captured before ``Arc.__init__`` shadows the ``object`` builtin with its
#: parameter name (kept to mirror the paper's ``vp → vo`` terminology).
_set_attr = object.__setattr__


def _intern(cls, key: tuple, attrs: Tuple[Tuple[str, object], ...]) -> "ShapeExpr":
    """Look up or build the canonical instance for a structural ``key``.

    The single interning protocol shared by every compound node: find the
    cached instance, or construct one with the given attributes plus the
    precomputed ``_hash``, and register it.  A cached instance is only
    reused for the exact same class — a subclass constructor builds its own
    (uninterned) instance rather than returning, or shadowing, the base
    class entry.
    """
    cached = _INTERN.get(key)
    if cached is not None and type(cached) is cls:
        return cached
    self = object.__new__(cls)
    for name, value in attrs:
        _set_attr(self, name, value)
    _set_attr(self, "_hash", hash(key))
    if cached is None:
        _INTERN[key] = self
        if _INTERN_LIMIT is not None and len(_INTERN) > _INTERN_LIMIT:
            _evict_one(_INTERN)
    return self


class Arc(ShapeExpr):
    """``vp → vo`` — one arc with predicate in ``vp`` and object in ``vo``.

    Instances are hash-consed: constructing the same ``(vp, vo)`` pair twice
    returns the same object, and the hash is computed once.
    """

    __slots__ = ("predicate", "object", "_hash")

    def __new__(cls, predicate: PredicateSet, object: NodeConstraint):
        if not isinstance(predicate, PredicateSet):
            raise TypeError("Arc predicate must be a PredicateSet")
        if not isinstance(object, NodeConstraint):
            raise TypeError("Arc object must be a NodeConstraint")
        return _intern(cls, ("Arc", predicate, object),
                       (("predicate", predicate), ("object", object)))

    def __init__(self, predicate: PredicateSet, object: NodeConstraint):
        pass  # fully constructed (and possibly reused) in __new__

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Arc is immutable")

    def __reduce__(self):
        # rebuilding through __new__ re-interns the node, so unpickled
        # expressions keep O(1) pointer equality inside the target process
        return (Arc, (self.predicate, self.object))

    def to_str(self) -> str:
        return f"{self.predicate.describe()}→{self.object.describe()}"

    def __repr__(self) -> str:
        return f"Arc({self.predicate!r}, {self.object!r})"

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Arc)
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_reference(self) -> bool:
        """True if the object constraint is a shape reference ``@label``."""
        return isinstance(self.object, ShapeRef)


class Star(ShapeExpr):
    """``E*`` — Kleene closure (zero or more occurrences of ``E``)."""

    __slots__ = ("expr", "_hash")

    def __new__(cls, expr: ShapeExpr):
        if not isinstance(expr, ShapeExpr):
            raise TypeError("Star operand must be a ShapeExpr")
        return _intern(cls, ("Star", expr), (("expr", expr),))

    def __init__(self, expr: ShapeExpr):
        pass  # fully constructed (and possibly reused) in __new__

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Star is immutable")

    def __reduce__(self):
        return (Star, (self.expr,))

    def children(self) -> Tuple[ShapeExpr, ...]:
        return (self.expr,)

    def to_str(self) -> str:
        return f"({self.expr.to_str()})*"

    def __repr__(self) -> str:
        return f"Star({self.expr!r})"

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, Star) and other.expr == self.expr

    def __hash__(self) -> int:
        return self._hash


class And(ShapeExpr):
    """``E ‖ F`` — unordered concatenation (interleave)."""

    __slots__ = ("left", "right", "_hash")

    def __new__(cls, left: ShapeExpr, right: ShapeExpr):
        if not isinstance(left, ShapeExpr) or not isinstance(right, ShapeExpr):
            raise TypeError("And operands must be ShapeExprs")
        return _intern(cls, ("And", left, right),
                       (("left", left), ("right", right)))

    def __init__(self, left: ShapeExpr, right: ShapeExpr):
        pass  # fully constructed (and possibly reused) in __new__

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("And is immutable")

    def __reduce__(self):
        return (And, (self.left, self.right))

    def children(self) -> Tuple[ShapeExpr, ...]:
        return (self.left, self.right)

    def to_str(self) -> str:
        return f"({self.left.to_str()} ‖ {self.right.to_str()})"

    def __repr__(self) -> str:
        return f"And({self.left!r}, {self.right!r})"

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, And) and other.left == self.left and other.right == self.right

    def __hash__(self) -> int:
        return self._hash


class Or(ShapeExpr):
    """``E | F`` — alternative."""

    __slots__ = ("left", "right", "_hash")

    def __new__(cls, left: ShapeExpr, right: ShapeExpr):
        if not isinstance(left, ShapeExpr) or not isinstance(right, ShapeExpr):
            raise TypeError("Or operands must be ShapeExprs")
        return _intern(cls, ("Or", left, right),
                       (("left", left), ("right", right)))

    def __init__(self, left: ShapeExpr, right: ShapeExpr):
        pass  # fully constructed (and possibly reused) in __new__

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Or is immutable")

    def __reduce__(self):
        return (Or, (self.left, self.right))

    def children(self) -> Tuple[ShapeExpr, ...]:
        return (self.left, self.right)

    def to_str(self) -> str:
        return f"({self.left.to_str()} | {self.right.to_str()})"

    def __repr__(self) -> str:
        return f"Or({self.left!r}, {self.right!r})"

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, Or) and other.left == self.left and other.right == self.right

    def __hash__(self) -> int:
        return self._hash


# --------------------------------------------------------------- smart constructors
def arc(predicate: Union[IRI, PredicateSet],
        object: Union[NodeConstraint, ObjectTerm, int, str, bool, None] = None) -> Arc:
    """Build an :class:`Arc`, accepting friendly Python arguments.

    * ``predicate`` may be an IRI (wrapped into a singleton
      :class:`PredicateSet`) or a ready :class:`PredicateSet`.
    * ``object`` may be a :class:`NodeConstraint`, a single RDF term or plain
      Python value (wrapped into a singleton :class:`ValueSet`), or ``None``
      for the wildcard.
    """
    if isinstance(predicate, IRI):
        predicate = PredicateSet.single(predicate)
    if object is None:
        constraint: NodeConstraint = AnyValue()
    elif isinstance(object, NodeConstraint):
        constraint = object
    elif isinstance(object, (int, str, bool, float)):
        constraint = ValueSet([Literal(object)])
    else:
        constraint = ValueSet([object])
    return Arc(predicate, constraint)


def interleave(left: ShapeExpr, right: ShapeExpr, simplify: bool = True) -> ShapeExpr:
    """``left ‖ right`` with the paper's simplification rules applied.

    ``∅ ‖ x = x ‖ ∅ = ∅`` and ``ε ‖ x = x ‖ ε = x``.  Passing
    ``simplify=False`` builds the raw node (used by the ablation benchmark).
    """
    if not simplify:
        return And(left, right)
    if isinstance(left, Empty) or isinstance(right, Empty):
        return EMPTY
    if isinstance(left, EmptyTriples):
        return right
    if isinstance(right, EmptyTriples):
        return left
    return And(left, right)


def alternative(left: ShapeExpr, right: ShapeExpr, simplify: bool = True) -> ShapeExpr:
    """``left | right`` with the paper's simplification rules applied.

    ``∅ | x = x`` and ``x | ∅ = x``; identical branches are collapsed
    (``x | x = x``), which is sound because alternation is idempotent and it
    keeps derivatives small.
    """
    if not simplify:
        return Or(left, right)
    if isinstance(left, Empty):
        return right
    if isinstance(right, Empty):
        return left
    if left == right:
        return left
    return Or(left, right)


def interleave_all(*exprs: ShapeExpr) -> ShapeExpr:
    """Interleave any number of expressions (``ε`` when called with none)."""
    result: ShapeExpr = EPSILON
    for expr in exprs:
        result = interleave(result, expr)
    return result


def alternative_all(*exprs: ShapeExpr) -> ShapeExpr:
    """Alternate any number of expressions (``∅`` when called with none)."""
    result: ShapeExpr = EMPTY
    for expr in exprs:
        result = alternative(result, expr)
    return result


def star(expr: ShapeExpr) -> ShapeExpr:
    """``E*`` with the obvious simplifications ``∅* = ε* = ε`` and ``(E*)* = E*``."""
    if isinstance(expr, (Empty, EmptyTriples)):
        return EPSILON
    if isinstance(expr, Star):
        return expr
    return Star(expr)


def plus(expr: ShapeExpr) -> ShapeExpr:
    """``E+ = E ‖ E*`` (Section 4)."""
    return interleave(expr, star(expr))


def optional(expr: ShapeExpr) -> ShapeExpr:
    """``E? = E | ε`` (Section 4)."""
    return alternative(expr, EPSILON)


def repeat(expr: ShapeExpr, minimum: int, maximum: Optional[int]) -> ShapeExpr:
    """``E{m,n}`` by the paper's recursive expansion.

    * ``E{m, n} = E{m, n-1} | E``   when ``m < n``  (note: the paper's case;
      interpreted as ``E{m, n-1} ‖ E?`` would be unsound, the expansion below
      follows the standard reading: at least ``m``, at most ``n``),
    * ``E{m, n} = E{m-1, n-1} ‖ E`` when ``m = n > 0``,
    * ``E{0, 0} = ε``.

    ``maximum=None`` means unbounded (``E{m,}``), which expands to
    ``E{m,m} ‖ E*``.
    """
    if minimum < 0:
        raise ValueError("minimum repetition count must be >= 0")
    if maximum is None:
        return interleave(_exactly(expr, minimum), star(expr))
    if maximum < minimum:
        raise ValueError("maximum repetition count must be >= minimum")
    if maximum == 0:
        return EPSILON
    # between m and n: exactly m copies interleaved with (n - m) optional copies
    result = _exactly(expr, minimum)
    for _ in range(maximum - minimum):
        result = interleave(result, optional(expr))
    return result


def _exactly(expr: ShapeExpr, count: int) -> ShapeExpr:
    """``E{m,m}``: exactly ``count`` interleaved copies of ``expr``."""
    result: ShapeExpr = EPSILON
    for _ in range(count):
        result = interleave(result, expr)
    return result


# ----------------------------------------------------------------- introspection
def iter_subexpressions(expr: ShapeExpr) -> Iterator[ShapeExpr]:
    """Yield ``expr`` and every sub-expression (pre-order)."""
    stack = [expr]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def expression_size(expr: ShapeExpr) -> int:
    """Return the number of AST nodes in ``expr`` (a proxy for memory use).

    Sizes are memoised per interned expression: engines call this after every
    derivative step, and hash-consing makes repeated lookups O(1) instead of
    a full tree walk.
    """
    cached = _SIZE_CACHE.get(expr)
    if cached is not None:
        return cached
    # iterative post-order so deep expressions cannot overflow the stack; the
    # local overlay keeps the walk correct even when a bounded _SIZE_CACHE
    # evicts an entry the pending parents still need
    local: Dict["ShapeExpr", int] = {}
    stack = [(expr, False)]
    while stack:
        current, expanded = stack.pop()
        if current in local:
            continue
        known = _SIZE_CACHE.get(current)
        if known is not None:
            local[current] = known
            continue
        if expanded:
            size = 1 + sum(local[child] for child in current.children())
            local[current] = size
            _SIZE_CACHE[current] = size
            if _INTERN_LIMIT is not None and len(_SIZE_CACHE) > _INTERN_LIMIT:
                _evict_one(_SIZE_CACHE)
        else:
            stack.append((current, True))
            for child in current.children():
                stack.append((child, False))
    return local[expr]


def expression_depth(expr: ShapeExpr) -> int:
    """Return the height of the expression tree."""
    children = expr.children()
    if not children:
        return 1
    return 1 + max(expression_depth(child) for child in children)


def referenced_labels(expr: ShapeExpr):
    """Return the set of shape labels referenced by ``@label`` arcs in ``expr``."""
    labels = set()
    for sub in iter_subexpressions(expr):
        if isinstance(sub, Arc) and isinstance(sub.object, ShapeRef):
            labels.add(sub.object.label)
    return labels
