"""A persistent hash-array-mapped trie: the substrate of :class:`ShapeTyping`.

The Section 8 typing operations (``n → s : τ``, ``τ1 ⊎ τ2``) were originally
backed by a dict that was fully copied on every ``add``, so confirming the
``k`` members of one recursive component cost O(k²).  :class:`HamtMap` is a
persistent (immutable, structurally-sharing) map in the Bagwell HAMT style —
`Ideal Hash Trees`, 2001 — that makes the same accretion O(k log k) while
keeping the value-object semantics the backtracking engine relies on:

* ``assoc``/``get`` are O(log₃₂ n): an ``assoc`` rebuilds only the ≤ 12
  nodes on the key's hash path and shares every other subtrie with its
  parent map,
* ``merge`` walks both tries simultaneously and **skips identical
  subtries** (``left is right``), so combining a typing with one derived
  from it touches only the differing paths,
* the structure is *canonical*: a map's tree shape depends only on its
  key set (hash-colliding entries are kept in a canonically-sorted bucket),
  never on insertion order, so iteration, equality and the cached content
  hash are value-based,
* every node caches an order-independent content hash, making ``hash(map)``
  O(1) after the first call and giving ``__eq__`` a cheap mismatch test.

Implementation notes.  Keys are placed by ``hash(key)`` masked to 60 bits,
consumed 5 bits per level (32-way branching, ≤ 12 levels); keys whose full
60-bit hashes collide share a :class:`_Collision` bucket sorted by
``sort_key()``/``repr``.  Because ``str`` hashes are randomised per process
(PYTHONHASHSEED), a pickled map does **not** ship its tree: ``__reduce__``
serialises the items and the receiving process rebuilds the trie under its
own hash seed — parallel validation ships typings across processes, and a
layout keyed to the sender's seed would be silently unsearchable.

No new dependencies: pure python, stdlib only.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

__all__ = ["HamtMap"]

_BITS = 5                      # branching factor 2**5 = 32
_LEVEL_MASK = (1 << _BITS) - 1
_HASH_BITS = 60                # 12 full levels before collision buckets
_HASH_MASK = (1 << _HASH_BITS) - 1
_M64 = (1 << 64) - 1


def _key_hash(key: Any) -> int:
    return hash(key) & _HASH_MASK


def _mix(h: int) -> int:
    """Finalise one entry hash (splitmix64) so the commutative combination
    of entry hashes below doesn't collapse on structured inputs."""
    h &= _M64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _M64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _M64
    h ^= h >> 33
    return h


def _canonical_key(key: Any):
    """A total order for hash-colliding keys, independent of insertion.

    RDF terms and shape labels expose ``sort_key()``; anything else falls
    back to ``(type name, repr)``, which is deterministic for the value
    types a persistent map should hold.
    """
    sort_key = getattr(key, "sort_key", None)
    if sort_key is not None:
        return (0, sort_key())
    return (1, type(key).__name__, repr(key))


class _Leaf:
    """One ``key → value`` entry, addressed by its 60-bit key hash."""

    __slots__ = ("khash", "key", "value", "chash")
    count = 1

    def __init__(self, khash: int, key: Any, value: Any):
        self.khash = khash
        self.key = key
        self.value = value
        self.chash: Optional[int] = None


class _Collision:
    """Entries whose full 60-bit hashes collide, canonically sorted."""

    __slots__ = ("khash", "entries", "chash")

    def __init__(self, khash: int, entries: Tuple[Tuple[Any, Any], ...]):
        self.khash = khash
        self.entries = entries
        self.chash: Optional[int] = None

    @property
    def count(self) -> int:
        return len(self.entries)


class _Bitmap:
    """An interior node: a 32-bit occupancy bitmap over packed children."""

    __slots__ = ("bitmap", "children", "count", "chash")

    def __init__(self, bitmap: int, children: tuple):
        self.bitmap = bitmap
        self.children = children
        self.count = sum(child.count for child in children)
        self.chash: Optional[int] = None


def _content_hash(node) -> int:
    """The cached, order-independent hash of a subtrie's entries.

    Entry hashes are combined with addition mod 2⁶⁴ — commutative, so the
    result is a pure function of the entry *set* (the canonical structure
    already guarantees that, but the commutative combination keeps the hash
    honest even across structurally different tries).
    """
    h = node.chash
    if h is None:
        if type(node) is _Leaf:
            h = _mix(hash((node.key, node.value)))
        elif type(node) is _Collision:
            h = 0
            for key, value in node.entries:
                h = (h + _mix(hash((key, value)))) & _M64
        else:
            h = 0
            for child in node.children:
                h = (h + _content_hash(child)) & _M64
        node.chash = h
    return h


def _bitpos_index(bitmap: int, bit: int) -> int:
    """Index of ``bit``'s child in the packed array: popcount below it."""
    return (bitmap & (bit - 1)).bit_count()


def _pair_nodes(shift: int, a, b):
    """Combine two leaf-ish nodes with distinct key hashes into a subtrie."""
    ia = (a.khash >> shift) & _LEVEL_MASK
    ib = (b.khash >> shift) & _LEVEL_MASK
    if ia == ib:
        return _Bitmap(1 << ia, (_pair_nodes(shift + _BITS, a, b),))
    if ia < ib:
        return _Bitmap((1 << ia) | (1 << ib), (a, b))
    return _Bitmap((1 << ia) | (1 << ib), (b, a))


def _collision_from(khash: int, entries) -> _Collision:
    return _Collision(khash, tuple(sorted(entries,
                                          key=lambda kv: _canonical_key(kv[0]))))


def _leafish_entries(node):
    """The ``(key, value)`` pairs of a leaf or collision bucket."""
    if type(node) is _Leaf:
        return ((node.key, node.value),)
    return node.entries


def _node_assoc(node, shift: int, khash: int, key: Any, value: Any,
                merge_value: Optional[Callable[[Any, Any], Any]] = None):
    """Return ``node`` with ``key → value`` set (``node`` itself if a no-op).

    With ``merge_value``, an existing value is replaced by
    ``merge_value(existing, value)`` instead — the single-walk upsert the
    hot confirmation path uses (one hash-path traversal, not get + assoc).
    """
    kind = type(node)
    if kind is _Leaf:
        if node.khash == khash:
            if node.key == key:
                new_value = (merge_value(node.value, value)
                             if merge_value is not None else value)
                if new_value is node.value:
                    return node
                return _Leaf(khash, key, new_value)
            return _collision_from(khash, (*(_leafish_entries(node)), (key, value)))
        return _pair_nodes(shift, node, _Leaf(khash, key, value))
    if kind is _Collision:
        if node.khash == khash:
            for position, (existing_key, existing_value) in enumerate(node.entries):
                if existing_key == key:
                    new_value = (merge_value(existing_value, value)
                                 if merge_value is not None else value)
                    if new_value is existing_value:
                        return node
                    entries = list(node.entries)
                    entries[position] = (key, new_value)
                    return _Collision(khash, tuple(entries))
            return _collision_from(khash, (*node.entries, (key, value)))
        return _pair_nodes(shift, node, _Leaf(khash, key, value))
    # _Bitmap
    index = (khash >> shift) & _LEVEL_MASK
    bit = 1 << index
    position = _bitpos_index(node.bitmap, bit)
    if node.bitmap & bit:
        child = node.children[position]
        new_child = _node_assoc(child, shift + _BITS, khash, key, value,
                                merge_value)
        if new_child is child:
            return node
        children = list(node.children)
        children[position] = new_child
        return _Bitmap(node.bitmap, tuple(children))
    children = list(node.children)
    children.insert(position, _Leaf(khash, key, value))
    return _Bitmap(node.bitmap | bit, tuple(children))


def _node_dissoc(node, shift: int, khash: int, key: Any):
    """Return ``node`` without ``key`` — ``node`` itself if absent, ``None``
    if the removal empties the subtrie.

    The result is *canonical* for its remaining key set (the shape ``assoc``
    would have built): a collision bucket left with one entry becomes a leaf,
    and a bitmap node left with a single leaf-ish child returns that child so
    the leaf lifts back to the highest level where its hash index is unique.
    Single-child bitmaps whose child is another bitmap stay — that chain is
    exactly how ``_pair_nodes`` lays out keys with a shared hash prefix.
    """
    kind = type(node)
    if kind is _Leaf:
        if node.khash == khash and node.key == key:
            return None
        return node
    if kind is _Collision:
        if node.khash != khash:
            return node
        entries = tuple(kv for kv in node.entries if kv[0] != key)
        if len(entries) == len(node.entries):
            return node
        if len(entries) == 1:
            remaining_key, value = entries[0]
            return _Leaf(khash, remaining_key, value)
        # removal preserves the canonical sort order of the survivors
        return _Collision(khash, entries)
    # _Bitmap
    bit = 1 << ((khash >> shift) & _LEVEL_MASK)
    if not node.bitmap & bit:
        return node
    position = _bitpos_index(node.bitmap, bit)
    child = node.children[position]
    new_child = _node_dissoc(child, shift + _BITS, khash, key)
    if new_child is child:
        return node
    if new_child is None:
        children = node.children[:position] + node.children[position + 1:]
        if not children:
            return None
        if len(children) == 1 and type(children[0]) is not _Bitmap:
            return children[0]
        return _Bitmap(node.bitmap & ~bit, children)
    if len(node.children) == 1 and type(new_child) is not _Bitmap:
        return new_child
    children = list(node.children)
    children[position] = new_child
    return _Bitmap(node.bitmap, tuple(children))


def _node_get(node, shift: int, khash: int, key: Any, default: Any):
    while True:
        kind = type(node)
        if kind is _Bitmap:
            bit = 1 << ((khash >> shift) & _LEVEL_MASK)
            if not node.bitmap & bit:
                return default
            node = node.children[_bitpos_index(node.bitmap, bit)]
            shift += _BITS
            continue
        if kind is _Leaf:
            if node.khash == khash and node.key == key:
                return node.value
            return default
        if node.khash == khash:
            for existing_key, value in node.entries:
                if existing_key == key:
                    return value
        return default


def _node_items(node) -> Iterator[Tuple[Any, Any]]:
    kind = type(node)
    if kind is _Leaf:
        yield node.key, node.value
    elif kind is _Collision:
        yield from node.entries
    else:
        for child in node.children:
            yield from _node_items(child)


def _node_eq(a, b) -> bool:
    """Structural equality; sound because equal key sets ⇒ equal tree shape."""
    if a is b:
        return True
    kind = type(a)
    if kind is not type(b):
        return False
    if a.count != b.count:
        return False
    if a.chash is not None and b.chash is not None and a.chash != b.chash:
        return False
    if kind is _Leaf:
        return a.khash == b.khash and a.key == b.key and a.value == b.value
    if kind is _Collision:
        if a.khash != b.khash:
            return False
        for (ka, va), (kb, vb) in zip(a.entries, b.entries):
            if ka != kb or va != vb:
                return False
        return True
    if a.bitmap != b.bitmap:
        return False
    for child_a, child_b in zip(a.children, b.children):
        if not _node_eq(child_a, child_b):
            return False
    return True


def _merge_leafish(a, b, shift: int, merge_value) -> Any:
    """Merge two leaf-ish nodes; values of common keys via ``merge_value``."""
    if a.khash != b.khash:
        return _pair_nodes(shift, a, b)
    a_entries = _leafish_entries(a)
    b_entries = _leafish_entries(b)
    merged = list(a_entries)
    changed = False
    for key, b_value in b_entries:
        for position, (existing_key, a_value) in enumerate(merged):
            if existing_key == key:
                value = merge_value(a_value, b_value)
                if value is not a_value:
                    merged[position] = (key, value)
                    changed = True
                break
        else:
            merged.append((key, b_value))
            changed = True
    if not changed:
        return a
    if len(merged) == len(b_entries) and all(
        any(key == b_key and value is b_value for b_key, b_value in b_entries)
        for key, value in merged
    ):
        # b covered a entirely (merge_value handed back b's values): keep
        # b's node shared instead of rebuilding an equal one
        return b
    if len(merged) == 1:
        key, value = merged[0]
        return _Leaf(a.khash, key, value)
    return _collision_from(a.khash, merged)


def _merge_into_bitmap(node: _Bitmap, leafish, shift: int, merge_value,
                       leafish_is_right: bool):
    """Merge a leaf-ish node into a bitmap node, preserving orientation.

    ``merge_value(left, right)`` must see the bitmap side as *left* when the
    leaf came from the right operand, and vice versa.
    """
    index = (leafish.khash >> shift) & _LEVEL_MASK
    bit = 1 << index
    position = _bitpos_index(node.bitmap, bit)
    if node.bitmap & bit:
        child = node.children[position]
        if leafish_is_right:
            new_child = _node_merge(child, leafish, shift + _BITS, merge_value)
        else:
            new_child = _node_merge(leafish, child, shift + _BITS, merge_value)
        if new_child is child:
            return node
        children = list(node.children)
        children[position] = new_child
        return _Bitmap(node.bitmap, tuple(children))
    children = list(node.children)
    children.insert(position, leafish)
    return _Bitmap(node.bitmap | bit, tuple(children))


def _node_merge(a, b, shift: int, merge_value):
    """Merge two subtries.  Identical subtries are skipped outright, which
    is sound because ``merge_value`` is required to be idempotent
    (``merge_value(v, v) == v`` — set union in the typing algebra)."""
    if a is b:
        return a
    a_is_bitmap = type(a) is _Bitmap
    b_is_bitmap = type(b) is _Bitmap
    if a_is_bitmap and b_is_bitmap:
        bitmap = a.bitmap | b.bitmap
        children = []
        all_from_a = bitmap == a.bitmap
        all_from_b = bitmap == b.bitmap
        bits = bitmap
        while bits:
            bit = bits & -bits
            bits ^= bit
            in_a = a.bitmap & bit
            in_b = b.bitmap & bit
            if in_a and in_b:
                child_a = a.children[_bitpos_index(a.bitmap, bit)]
                child_b = b.children[_bitpos_index(b.bitmap, bit)]
                child = _node_merge(child_a, child_b, shift + _BITS, merge_value)
                all_from_a &= child is child_a
                all_from_b &= child is child_b
            elif in_a:
                child = a.children[_bitpos_index(a.bitmap, bit)]
                all_from_b = False
            else:
                child = b.children[_bitpos_index(b.bitmap, bit)]
                all_from_a = False
            children.append(child)
        if all_from_a:
            return a
        if all_from_b:
            return b
        return _Bitmap(bitmap, tuple(children))
    if a_is_bitmap:
        return _merge_into_bitmap(a, b, shift, merge_value, leafish_is_right=True)
    if b_is_bitmap:
        return _merge_into_bitmap(b, a, shift, merge_value, leafish_is_right=False)
    return _merge_leafish(a, b, shift, merge_value)


def _rebuild(items: tuple) -> "HamtMap":
    """Unpickling entry point: regrow the trie under this process's seed."""
    return HamtMap.from_items(items)


class HamtMap:
    """An immutable, persistent ``key → value`` map (see module docstring).

    Values are never interpreted except by ``merge``'s ``merge_value``
    callable; keys need ``__hash__``/``__eq__`` (plus ``sort_key()`` or a
    deterministic ``repr`` to order hash-colliding buckets canonically).
    """

    __slots__ = ("_root", "_count")

    def __init__(self):
        self._root = None
        self._count = 0

    @classmethod
    def _wrap(cls, root, count: int) -> "HamtMap":
        if root is None or count == 0:
            return _EMPTY_MAP
        wrapped = object.__new__(cls)
        wrapped._root = root
        wrapped._count = count
        return wrapped

    @classmethod
    def empty(cls) -> "HamtMap":
        return _EMPTY_MAP

    @classmethod
    def from_items(cls, items) -> "HamtMap":
        mapping = _EMPTY_MAP
        for key, value in items:
            mapping = mapping.assoc(key, value)
        return mapping

    # -- queries ---------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        if self._root is None:
            return default
        return _node_get(self._root, 0, _key_hash(key), key, default)

    def __contains__(self, key: Any) -> bool:
        sentinel = _SENTINEL
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs in canonical (hash-path) order."""
        if self._root is not None:
            yield from _node_items(self._root)

    # -- persistent updates -----------------------------------------------------
    def assoc(self, key: Any, value: Any) -> "HamtMap":
        """Return a map with ``key → value`` set; shares all untouched paths."""
        khash = _key_hash(key)
        if self._root is None:
            return HamtMap._wrap(_Leaf(khash, key, value), 1)
        root = _node_assoc(self._root, 0, khash, key, value)
        if root is self._root:
            return self
        return HamtMap._wrap(root, root.count)

    def upsert(self, key: Any, value: Any,
               merge_value: Callable[[Any, Any], Any]) -> "HamtMap":
        """Insert ``key → value``, or set ``merge_value(existing, value)``.

        One hash-path walk instead of the ``get`` + ``assoc`` pair; returns
        ``self`` when ``merge_value`` hands back the existing value object.
        """
        khash = _key_hash(key)
        if self._root is None:
            return HamtMap._wrap(_Leaf(khash, key, value), 1)
        root = _node_assoc(self._root, 0, khash, key, value, merge_value)
        if root is self._root:
            return self
        return HamtMap._wrap(root, root.count)

    def dissoc(self, key: Any) -> "HamtMap":
        """Return a map without ``key``; ``self`` when the key is absent.

        O(log n) like ``assoc``: only the nodes on the key's hash path are
        rebuilt, and the result's tree shape is canonical for the remaining
        key set — equal to the map that never contained ``key`` at all.
        """
        if self._root is None:
            return self
        root = _node_dissoc(self._root, 0, _key_hash(key), key)
        if root is self._root:
            return self
        if root is None:
            return _EMPTY_MAP
        return HamtMap._wrap(root, self._count - 1)

    def merge(self, other: "HamtMap",
              merge_value: Callable[[Any, Any], Any]) -> "HamtMap":
        """The union of two maps; common keys via ``merge_value(self_v, other_v)``.

        ``merge_value`` must be idempotent (``merge_value(v, v) == v``): the
        walk returns shared subtries untouched without re-merging their
        values, which is what makes combining overlapping typings cheap.
        """
        if other._root is None or other is self:
            return self
        if self._root is None:
            return other
        root = _node_merge(self._root, other._root, 0, merge_value)
        if root is self._root:
            return self
        if root is other._root:
            return other
        return HamtMap._wrap(root, root.count)

    # -- value semantics --------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, HamtMap):
            return NotImplemented
        if self._count != other._count:
            return False
        if self._root is None:
            return True
        return _node_eq(self._root, other._root)

    def __hash__(self) -> int:
        if self._root is None:
            return hash(("HamtMap", 0))
        return hash(("HamtMap", self._count, _content_hash(self._root)))

    def __repr__(self) -> str:
        rendered = ", ".join(f"{key!r}: {value!r}" for key, value in self.items())
        return f"HamtMap({{{rendered}}})"

    def __reduce__(self):
        # never pickle the tree: its layout is keyed to this process's
        # (randomised) string hash seed, so the receiver rebuilds instead
        return (_rebuild, (tuple(self.items()),))


_SENTINEL = object()
_EMPTY_MAP = HamtMap()
