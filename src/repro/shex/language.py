"""Declarative semantics ``Sₙ[[e]]``: enumerating the accepted graphs.

Section 4 defines the meaning of a regular shape expression as the set of
neighbourhood graphs it accepts::

    Sₙ[[∅]]        = ∅
    Sₙ[[ε]]        = {{}}
    Sₙ[[vp → vo]]  = {{⟨n, p, o⟩} | p ∈ vp and o ∈ vo}
    Sₙ[[e*]]       = {{}} ∪ Sₙ[[e ‖ e*]]
    Sₙ[[e1 ‖ e2]]  = {t1 ∪ t2 | t1 ∈ Sₙ[[e1]], t2 ∈ Sₙ[[e2]]}
    Sₙ[[e1 | e2]]  = Sₙ[[e1]] ∪ Sₙ[[e2]]

For expressions built from *finite* constraints (explicit predicate sets and
value sets) the language is computable once the Kleene star is unrolled a
bounded number of times; because the accepted objects are *sets* of triples,
unrolling a star ``k`` times where ``k`` is at least the number of distinct
triples an iteration can produce yields the exact language restricted to
neighbourhoods of that size.

One subtlety the paper leaves implicit: read literally, the set-union in
``Sₙ[[e1 ‖ e2]]`` would let a single triple satisfy *both* operands (e.g.
``a→1 ‖ a→1`` would accept the singleton ``{⟨n,a,1⟩}``), whereas the
decomposition of Example 3 pairs each subset with its complement and the
derivative algorithm consumes every triple exactly once.  This module follows
the *resource-sensitive* reading used by both matching algorithms: the union
in the ``‖`` case is restricted to **disjoint** operands, so that the
enumerated language coincides with what the matchers accept.  For expressions
whose interleaved branches cannot match the same triple (every shape in the
paper) the two readings agree.

The enumeration is used as executable ground truth: the property-based tests
check that both matching engines accept exactly the enumerated graphs
(Example 7 of the paper is one of the unit tests).
"""

from __future__ import annotations

from typing import FrozenSet, Set

from ..rdf.terms import SubjectTerm, Triple
from .expressions import And, Arc, Empty, EmptyTriples, Or, ShapeExpr, Star
from .node_constraints import ShapeRef, ValueSet

__all__ = ["LanguageEnumerationError", "enumerate_language", "language_size"]

GraphSet = FrozenSet[FrozenSet[Triple]]


class LanguageEnumerationError(Exception):
    """Raised when ``Sₙ[[e]]`` cannot be enumerated (infinite constraints)."""


def enumerate_language(expr: ShapeExpr, node: SubjectTerm,
                       max_star_unroll: int = 4) -> GraphSet:
    """Return ``Sₙ[[expr]]`` as a set of triple sets.

    ``max_star_unroll`` bounds how many times a Kleene star is unrolled; for
    arcs over finite value sets the language stabilises once the unrolling
    reaches the number of distinct triples the starred expression can emit,
    so the default of 4 is exact for the paper's examples.

    Raises :class:`LanguageEnumerationError` for expressions whose arcs use
    non-enumerable constraints (datatypes, node kinds, wildcards or shape
    references).
    """
    if max_star_unroll < 0:
        raise ValueError("max_star_unroll must be non-negative")
    return _enumerate(expr, node, max_star_unroll)


def _enumerate(expr: ShapeExpr, node: SubjectTerm, unroll: int) -> GraphSet:
    if isinstance(expr, Empty):
        return frozenset()
    if isinstance(expr, EmptyTriples):
        return frozenset({frozenset()})
    if isinstance(expr, Arc):
        return _enumerate_arc(expr, node)
    if isinstance(expr, Or):
        return _enumerate(expr.left, node, unroll) | _enumerate(expr.right, node, unroll)
    if isinstance(expr, And):
        return _combine(
            _enumerate(expr.left, node, unroll),
            _enumerate(expr.right, node, unroll),
        )
    if isinstance(expr, Star):
        base = _enumerate(expr.expr, node, unroll)
        result: Set[FrozenSet[Triple]] = {frozenset()}
        current: GraphSet = frozenset({frozenset()})
        for _ in range(unroll):
            current = _combine(current, base)
            before = len(result)
            result.update(current)
            if len(result) == before:
                break  # language has stabilised
        return frozenset(result)
    raise TypeError(f"unknown shape expression: {expr!r}")


def _enumerate_arc(expr: Arc, node: SubjectTerm) -> GraphSet:
    constraint = expr.object
    if isinstance(constraint, ShapeRef):
        raise LanguageEnumerationError(
            "cannot enumerate the language of a shape reference arc"
        )
    if not isinstance(constraint, ValueSet):
        raise LanguageEnumerationError(
            f"cannot enumerate arcs constrained by {type(constraint).__name__}; "
            "only explicit value sets are enumerable"
        )
    predicates = expr.predicate.predicates
    if not predicates or expr.predicate.any_predicate or expr.predicate.stem:
        raise LanguageEnumerationError(
            "cannot enumerate arcs with wildcard or stem predicate sets"
        )
    graphs = {
        frozenset({Triple(node, predicate, value)})
        for predicate in predicates
        for value in constraint.values
    }
    return frozenset(graphs)


def _combine(left: GraphSet, right: GraphSet) -> GraphSet:
    """Pairwise *disjoint* union of the two graph sets (the ``‖`` semantics).

    Only disjoint pairs are combined so that the enumeration matches the
    resource-sensitive behaviour of the derivative and backtracking matchers
    (each triple of the neighbourhood is consumed exactly once).
    """
    return frozenset(
        graph_left | graph_right
        for graph_left in left
        for graph_right in right
        if not (graph_left & graph_right)
    )


def language_size(expr: ShapeExpr, node: SubjectTerm, max_star_unroll: int = 4) -> int:
    """Return ``|Sₙ[[expr]]|`` under the given star unrolling bound."""
    return len(enumerate_language(expr, node, max_star_unroll))
