"""Node constraints: the ``vp`` and ``vo`` sets of an arc expression.

An arc in a regular shape expression is written ``vp → vo`` where ``vp`` is a
set of admissible predicates and ``vo`` a set of admissible objects
(Section 4).  In practice ``vp`` is almost always a single predicate IRI and
``vo`` is one of:

* an explicit **value set** — ``{1, 2}`` in the paper's running example,
* a **datatype** — ``xsd:integer`` / ``xsd:string`` (Example 1), treated as a
  subset of the literals,
* a **node kind** — IRI / blank node / literal / non-literal,
* a **wildcard** — any object at all,
* an **IRI stem** — all IRIs sharing a prefix (used by linked-data portals),
* a **shape reference** — ``@<Person>`` (Example 1/14); the reference case is
  resolved by the schema layer because it needs the typing context ``Γ``,
* boolean combinations of the above (a small ShEx extension useful for the
  workloads).

Each constraint exposes ``matches(term)`` so the two matching engines and the
SPARQL compiler can share one vocabulary of constraints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence, Union

from ..rdf.datatypes import datatype_matches, to_python_value
from ..rdf.terms import BNode, IRI, Literal, ObjectTerm, Term

__all__ = [
    "NodeConstraint",
    "AnyValue",
    "ValueSet",
    "DatatypeConstraint",
    "NodeKind",
    "NodeKindConstraint",
    "IRIStem",
    "LanguageTag",
    "Facets",
    "ConstraintAnd",
    "ConstraintOr",
    "ConstraintNot",
    "ShapeRef",
    "PredicateSet",
    "value_set",
    "datatype",
    "shape_ref",
]


class NodeConstraint:
    """Base class of all object (``vo``) constraints."""

    __slots__ = ()

    def matches(self, term: ObjectTerm) -> bool:
        """Return True if ``term`` satisfies this constraint."""
        raise NotImplementedError

    def describe(self) -> str:
        """Return a short human-readable description for error reports."""
        raise NotImplementedError

    # Constraints are value objects: subclasses are frozen dataclasses or
    # define their own __eq__/__hash__.


@dataclass(frozen=True)
class Facets:
    """XSD-style facet restrictions attached to literal constraints.

    All fields are optional; an empty :class:`Facets` accepts everything.
    """

    min_inclusive: Optional[float] = None
    max_inclusive: Optional[float] = None
    min_exclusive: Optional[float] = None
    max_exclusive: Optional[float] = None
    min_length: Optional[int] = None
    max_length: Optional[int] = None
    length: Optional[int] = None
    pattern: Optional[str] = None

    def is_trivial(self) -> bool:
        """True when no facet is set."""
        return all(
            value is None
            for value in (
                self.min_inclusive, self.max_inclusive, self.min_exclusive,
                self.max_exclusive, self.min_length, self.max_length,
                self.length, self.pattern,
            )
        )

    def check(self, literal: Literal) -> bool:
        """Check every configured facet against ``literal``."""
        lexical = literal.lexical
        if self.length is not None and len(lexical) != self.length:
            return False
        if self.min_length is not None and len(lexical) < self.min_length:
            return False
        if self.max_length is not None and len(lexical) > self.max_length:
            return False
        if self.pattern is not None and not re.search(self.pattern, lexical):
            return False
        if (self.min_inclusive is not None or self.max_inclusive is not None
                or self.min_exclusive is not None or self.max_exclusive is not None):
            value = to_python_value(literal)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                try:
                    value = float(value)  # Decimal and numeric strings
                except (TypeError, ValueError):
                    return False
            if self.min_inclusive is not None and value < self.min_inclusive:
                return False
            if self.max_inclusive is not None and value > self.max_inclusive:
                return False
            if self.min_exclusive is not None and value <= self.min_exclusive:
                return False
            if self.max_exclusive is not None and value >= self.max_exclusive:
                return False
        return True

    def describe(self) -> str:
        parts = []
        for name in ("min_inclusive", "max_inclusive", "min_exclusive", "max_exclusive",
                     "min_length", "max_length", "length", "pattern"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value!r}")
        return ", ".join(parts)


@dataclass(frozen=True)
class AnyValue(NodeConstraint):
    """The wildcard constraint ``.`` — any IRI, blank node or literal."""

    def matches(self, term: ObjectTerm) -> bool:
        return isinstance(term, (IRI, BNode, Literal))

    def describe(self) -> str:
        return "."


class ValueSet(NodeConstraint):
    """An explicit, finite set of admissible object terms (``{1, 2}``)."""

    __slots__ = ("values",)

    def __init__(self, values: Iterable[ObjectTerm]):
        frozen = frozenset(values)
        for value in frozen:
            if not isinstance(value, Term):
                raise TypeError(
                    f"value set members must be RDF terms, got {type(value).__name__}"
                )
        object.__setattr__(self, "values", frozen)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("ValueSet is immutable")

    def __reduce__(self):
        return (ValueSet, (tuple(sorted(self.values, key=lambda term: term.sort_key())),))

    def matches(self, term: ObjectTerm) -> bool:
        return term in self.values

    def describe(self) -> str:
        rendered = " ".join(sorted(v.n3() for v in self.values))
        return f"[{rendered}]"

    def __eq__(self, other) -> bool:
        return isinstance(other, ValueSet) and other.values == self.values

    def __hash__(self) -> int:
        return hash(("ValueSet", self.values))

    def __repr__(self) -> str:
        return f"ValueSet({sorted(v.n3() for v in self.values)})"

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(sorted(self.values, key=lambda term: term.sort_key()))


@dataclass(frozen=True)
class DatatypeConstraint(NodeConstraint):
    """Literals of a given datatype, optionally restricted by facets."""

    datatype: IRI
    facets: Facets = field(default_factory=Facets)

    def matches(self, term: ObjectTerm) -> bool:
        if not isinstance(term, Literal):
            return False
        if not datatype_matches(term, self.datatype):
            return False
        return self.facets.check(term)

    def describe(self) -> str:
        base = self.datatype.n3()
        if self.facets.is_trivial():
            return base
        return f"{base} ({self.facets.describe()})"


class NodeKind:
    """Enumeration of node kinds accepted by :class:`NodeKindConstraint`."""

    IRI = "iri"
    BNODE = "bnode"
    LITERAL = "literal"
    NONLITERAL = "nonliteral"

    ALL = (IRI, BNODE, LITERAL, NONLITERAL)


@dataclass(frozen=True)
class NodeKindConstraint(NodeConstraint):
    """Constrain the kind of the object term (IRI / BNODE / LITERAL / NONLITERAL)."""

    kind: str
    facets: Facets = field(default_factory=Facets)

    def __post_init__(self):
        if self.kind not in NodeKind.ALL:
            raise ValueError(f"unknown node kind: {self.kind!r}")

    def matches(self, term: ObjectTerm) -> bool:
        if self.kind == NodeKind.IRI:
            ok = isinstance(term, IRI)
        elif self.kind == NodeKind.BNODE:
            ok = isinstance(term, BNode)
        elif self.kind == NodeKind.LITERAL:
            ok = isinstance(term, Literal)
        else:
            ok = isinstance(term, (IRI, BNode))
        if not ok:
            return False
        if isinstance(term, Literal):
            return self.facets.check(term)
        if not self.facets.is_trivial() and self.facets.pattern is not None:
            value = term.value if isinstance(term, IRI) else term.id
            return re.search(self.facets.pattern, value) is not None
        return True

    def describe(self) -> str:
        return self.kind.upper()


@dataclass(frozen=True)
class IRIStem(NodeConstraint):
    """All IRIs starting with a given stem (``ex:~`` in ShExC value sets)."""

    stem: str

    def matches(self, term: ObjectTerm) -> bool:
        return isinstance(term, IRI) and term.value.startswith(self.stem)

    def describe(self) -> str:
        return f"<{self.stem}>~"


@dataclass(frozen=True)
class LanguageTag(NodeConstraint):
    """Language-tagged literals with the given tag (``@en``)."""

    tag: str

    def matches(self, term: ObjectTerm) -> bool:
        if not isinstance(term, Literal) or term.lang is None:
            return False
        tag = self.tag.lower()
        return term.lang == tag or term.lang.startswith(tag + "-")

    def describe(self) -> str:
        return f"@{self.tag}"


class ConstraintAnd(NodeConstraint):
    """Conjunction of object constraints."""

    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[NodeConstraint]):
        object.__setattr__(self, "operands", tuple(operands))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("ConstraintAnd is immutable")

    def __reduce__(self):
        return (ConstraintAnd, (self.operands,))

    def matches(self, term: ObjectTerm) -> bool:
        return all(op.matches(term) for op in self.operands)

    def describe(self) -> str:
        return " AND ".join(op.describe() for op in self.operands)

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstraintAnd) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("ConstraintAnd", self.operands))


class ConstraintOr(NodeConstraint):
    """Disjunction of object constraints."""

    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[NodeConstraint]):
        object.__setattr__(self, "operands", tuple(operands))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("ConstraintOr is immutable")

    def __reduce__(self):
        return (ConstraintOr, (self.operands,))

    def matches(self, term: ObjectTerm) -> bool:
        return any(op.matches(term) for op in self.operands)

    def describe(self) -> str:
        return " OR ".join(op.describe() for op in self.operands)

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstraintOr) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("ConstraintOr", self.operands))


@dataclass(frozen=True)
class ConstraintNot(NodeConstraint):
    """Negation of an object constraint."""

    operand: NodeConstraint

    def matches(self, term: ObjectTerm) -> bool:
        return not self.operand.matches(term)

    def describe(self) -> str:
        return f"NOT ({self.operand.describe()})"


@dataclass(frozen=True)
class ShapeRef(NodeConstraint):
    """A reference ``@label`` to another shape in the schema.

    ``matches`` cannot be decided locally: whether the object conforms to the
    referenced shape requires validating the object's own neighbourhood under
    the typing context ``Γ``.  The schema-level matcher intercepts
    :class:`ShapeRef` before falling back to ``matches``; calling ``matches``
    directly therefore raises to flag a mis-use.
    """

    label: object  # ShapeLabel, kept untyped to avoid a circular import

    def matches(self, term: ObjectTerm) -> bool:
        raise TypeError(
            "ShapeRef constraints must be resolved by a schema-aware matcher; "
            "use repro.shex.schema.SchemaValidator"
        )

    def describe(self) -> str:
        return f"@{self.label}"


class PredicateSet:
    """The ``vp`` component of an arc: a set of admissible predicate IRIs.

    Most shapes use a single predicate; the class also supports wildcards and
    stems so that adversarial workloads can express "any predicate".
    """

    __slots__ = ("predicates", "stem", "any_predicate")

    def __init__(self, predicates: Optional[Iterable[IRI]] = None,
                 stem: Optional[str] = None, any_predicate: bool = False):
        frozen: FrozenSet[IRI] = frozenset(predicates or ())
        for predicate in frozen:
            if not isinstance(predicate, IRI):
                raise TypeError("predicates must be IRIs")
        if not frozen and stem is None and not any_predicate:
            raise ValueError("a PredicateSet needs predicates, a stem or any_predicate=True")
        object.__setattr__(self, "predicates", frozen)
        object.__setattr__(self, "stem", stem)
        object.__setattr__(self, "any_predicate", any_predicate)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("PredicateSet is immutable")

    def __reduce__(self):
        predicates = tuple(sorted(self.predicates, key=IRI.sort_key))
        return (PredicateSet, (predicates, self.stem, self.any_predicate))

    @classmethod
    def single(cls, predicate: IRI) -> "PredicateSet":
        """The common case: exactly one predicate."""
        return cls([predicate])

    def matches(self, predicate: IRI) -> bool:
        """True if ``predicate ∈ vp``."""
        if self.any_predicate:
            return True
        if predicate in self.predicates:
            return True
        if self.stem is not None and predicate.value.startswith(self.stem):
            return True
        return False

    def describe(self) -> str:
        if self.any_predicate:
            return "<any>"
        if self.stem is not None and not self.predicates:
            return f"<{self.stem}>~"
        names = sorted(p.n3() for p in self.predicates)
        if self.stem is not None:
            names.append(f"<{self.stem}>~")
        return names[0] if len(names) == 1 else "{" + ", ".join(names) + "}"

    def sample(self) -> Optional[IRI]:
        """Return one concrete predicate if the set is explicit, else ``None``."""
        if self.predicates:
            return sorted(self.predicates, key=IRI.sort_key)[0]
        return None

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PredicateSet)
            and other.predicates == self.predicates
            and other.stem == self.stem
            and other.any_predicate == self.any_predicate
        )

    def __hash__(self) -> int:
        return hash(("PredicateSet", self.predicates, self.stem, self.any_predicate))

    def __repr__(self) -> str:
        return f"PredicateSet({self.describe()})"


# ----------------------------------------------------------------- conveniences
def value_set(*values: Union[ObjectTerm, int, str, bool]) -> ValueSet:
    """Build a :class:`ValueSet`, coercing plain Python values to literals."""
    terms = []
    for value in values:
        if isinstance(value, Term):
            terms.append(value)
        else:
            terms.append(Literal(value))
    return ValueSet(terms)


def datatype(iri: IRI, **facets) -> DatatypeConstraint:
    """Build a :class:`DatatypeConstraint`, optionally with facet keywords."""
    return DatatypeConstraint(iri, Facets(**facets))


def shape_ref(label) -> ShapeRef:
    """Build a :class:`ShapeRef` to ``label``."""
    return ShapeRef(label)
