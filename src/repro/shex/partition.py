"""Reference-graph partitioning for parallel bulk validation.

The paper defines validation per ``(node, shape)`` pair, but whole-graph
validation decomposes along the *node reference graph*: node ``n`` depends on
node ``m`` exactly when some triple ``⟨n, p, m⟩`` can trigger a shape
reference (its predicate ``p`` is admitted by a ``vp → @label`` arc of some
shape in the schema).  Validating ``n`` can recurse into ``m``, but never
into a node it has no such edge to.

Condensing that graph into strongly-connected components yields a DAG whose
components can be validated independently as long as every component runs
*after* the components it references: by the soundness argument of the bulk
subsystem (PR 1), a settled — confirmed or refuted — verdict is definitive
and order-independent, so a component only ever needs the settled verdicts
of its successors, never their in-progress hypotheses.  This module computes
that decomposition:

* :class:`ReferenceIndex` — which predicates can trigger which ``@label``
  references (the schema-level analysis),
* :func:`reference_edges` — the node-level reference edges of a data graph,
* :func:`strongly_connected_components` — an **iterative** Tarjan (no Python
  recursion, so million-node chains do not hit the recursion limit) emitting
  components dependencies-first (reverse topological order),
* :func:`partition_reference_graph` — the full :class:`GraphPartition` with
  condensation levels (antichains of mutually-independent components) ready
  for a parallel scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, ObjectTerm, SubjectTerm
from .compiled import CompiledSchema, LazyNeighbourhood, store_counts
from .expressions import Arc, iter_subexpressions
from .node_constraints import PredicateSet, ShapeRef
from .schema import Schema
from .typing import ShapeLabel

__all__ = [
    "ReferenceIndex",
    "GraphPartition",
    "affected_nodes",
    "reference_edges",
    "strongly_connected_components",
    "partition_reference_graph",
]


def _as_label(label: object) -> ShapeLabel:
    return label if isinstance(label, ShapeLabel) else ShapeLabel(str(label))


class ReferenceIndex:
    """Schema-level map from predicates to the shape labels they can demand.

    A triple ``⟨n, p, m⟩`` makes the validation of ``n`` (against any shape)
    potentially check ``m`` against ``@label`` iff some shape's expression
    contains an arc ``vp → @label`` with ``p ∈ vp``.  Both matching engines
    gate reference resolution on the predicate test, so this is an exact
    criterion for single-predicate sets and a sound over-approximation for
    stems and wildcards.
    """

    def __init__(self, schema: Schema):
        #: exact predicate → labels, for enumerable predicate sets.
        self._exact: Dict[IRI, Set[ShapeLabel]] = {}
        #: (predicate set, label) pairs for stems / wildcards.
        self._general: List[Tuple[PredicateSet, ShapeLabel]] = []
        #: memo for :meth:`labels_for` over the general pairs.
        self._memo: Dict[IRI, FrozenSet[ShapeLabel]] = {}
        #: the reverse index: exact predicate → labels of the shapes whose
        #: expressions *contain* a reference arc with that predicate.
        self._referrers_exact: Dict[IRI, Set[ShapeLabel]] = {}
        #: (predicate set, referrer label) pairs for stems / wildcards.
        self._referrers_general: List[Tuple[PredicateSet, ShapeLabel]] = []
        #: memo for :meth:`referrer_labels_for`.
        self._referrers_memo: Dict[IRI, FrozenSet[ShapeLabel]] = {}
        seen: Set[Tuple[PredicateSet, ShapeLabel]] = set()
        seen_referrers: Set[Tuple[PredicateSet, ShapeLabel]] = set()
        for owner, expr in schema.items():
            for sub in iter_subexpressions(expr):
                if not (isinstance(sub, Arc) and isinstance(sub.object, ShapeRef)):
                    continue
                label = _as_label(sub.object.label)
                predicate_set = sub.predicate
                pair = (predicate_set, label)
                referrer_pair = (predicate_set, owner)
                if referrer_pair not in seen_referrers:
                    seen_referrers.add(referrer_pair)
                    if predicate_set.any_predicate or predicate_set.stem is not None:
                        self._referrers_general.append(referrer_pair)
                    else:
                        for predicate in predicate_set.predicates:
                            self._referrers_exact.setdefault(
                                predicate, set()).add(owner)
                if pair in seen:
                    continue
                seen.add(pair)
                if predicate_set.any_predicate or predicate_set.stem is not None:
                    self._general.append(pair)
                else:
                    for predicate in predicate_set.predicates:
                        self._exact.setdefault(predicate, set()).add(label)

    @property
    def has_references(self) -> bool:
        """True when the schema contains any ``@label`` arc at all."""
        return bool(self._exact) or bool(self._general)

    def labels_for(self, predicate: IRI) -> FrozenSet[ShapeLabel]:
        """Labels a triple with this predicate can demand of its object."""
        cached = self._memo.get(predicate)
        if cached is not None:
            return cached
        labels: Set[ShapeLabel] = set(self._exact.get(predicate, ()))
        for predicate_set, label in self._general:
            if predicate_set.matches(predicate):
                labels.add(label)
        result = frozenset(labels)
        self._memo[predicate] = result
        return result

    def demands(self, predicate: IRI) -> bool:
        """True when a triple with this predicate can trigger any reference.

        Cheap pre-screen for the signature hot path: reference-free
        predicates (the vast majority in hub-heavy KB data) skip the
        per-atom reference bookkeeping entirely.  Exact entries answer in
        one dict probe; stems/wildcards fall back to the memoised
        :meth:`labels_for`.
        """
        if predicate in self._exact:
            return True
        if not self._general:
            return False
        return bool(self.labels_for(predicate))

    def referrer_labels_for(self, predicate: IRI) -> FrozenSet[ShapeLabel]:
        """Labels of shapes that can *follow* a triple with this predicate.

        The reverse of :meth:`labels_for`: ``labels_for`` answers "what may a
        reference demand of the triple's **object**", this answers "which
        shapes, checked against the triple's **subject**, contain a reference
        arc the triple can trigger".  Non-empty exactly when ``labels_for``
        is (both derive from the same ``vp → @label`` arcs); incremental
        revalidation uses it to walk reference edges backwards from a
        mutated subject.
        """
        cached = self._referrers_memo.get(predicate)
        if cached is not None:
            return cached
        labels: Set[ShapeLabel] = set(self._referrers_exact.get(predicate, ()))
        for predicate_set, owner in self._referrers_general:
            if predicate_set.matches(predicate):
                labels.add(owner)
        result = frozenset(labels)
        self._referrers_memo[predicate] = result
        return result


def reference_edges(
    graph: Graph, schema: Schema, index: Optional[ReferenceIndex] = None,
    compiled: Optional[CompiledSchema] = None,
    subjects: Optional[Iterable[SubjectTerm]] = None,
) -> Tuple[Dict[SubjectTerm, Set[ObjectTerm]], Dict[ObjectTerm, Set[ShapeLabel]]]:
    """Extract the node-level reference edges (and demanded labels) of a graph.

    Returns ``(edges, demanded)`` where ``edges[n]`` is the set of nodes the
    validation of ``n`` can recurse into, and ``demanded[m]`` the labels an
    incoming reference can check ``m`` against (the static over-approximation
    a scheduler must have settled before any upstream component runs).
    With ``subjects``, only the triples of those subjects are scanned — the
    cost becomes proportional to that set, which is how incremental
    revalidation partitions just the affected subgraph.

    Literal objects are skipped: a literal's neighbourhood is empty, so its
    verdict is self-contained and any worker can (re)derive it locally.

    With a :class:`~repro.shex.compiled.CompiledSchema`, the demanded-label
    over-approximation is tightened into the edge set: a reference whose
    target the prefilter settles **for every demanded label** (required /
    first-predicate mismatch rejects, empty-nullable accepts, …) resolves
    locally in any worker without recursing further, so it contributes no
    scheduling edge.  The targets stay in ``demanded`` — they must remain in
    the partition (and in worker snapshots) — but sparse-mismatch graphs
    shred into far more independent components.  Sound only when validation
    actually runs with the same compiled schema, which is how
    :meth:`Validator.validate_graph` wires it.
    """
    index = index if index is not None else ReferenceIndex(schema)
    edges: Dict[SubjectTerm, Set[ObjectTerm]] = {}
    demanded: Dict[ObjectTerm, Set[ShapeLabel]] = {}
    if not index.has_references:
        return edges, demanded
    #: (target, label) → prefilter-decided?, computed once per pair.
    decided: Dict[Tuple[ObjectTerm, ShapeLabel], bool] = {}
    counts: Dict[ObjectTerm, Dict[IRI, int]] = {}
    neighbourhood_any = getattr(graph, "neighbourhood_any", graph.neighbourhood)
    if subjects is None:
        triple_source: Iterable = graph
    else:
        triple_source = (triple for subject in subjects
                         for triple in graph.triples(subject=subject))
    for triple in triple_source:
        target = triple.object
        if isinstance(target, Literal):
            continue
        labels = index.labels_for(triple.predicate)
        if not labels:
            continue
        demanded.setdefault(target, set()).update(labels)
        if compiled is not None:
            needs_edge = False
            for label in labels:
                key = (target, label)
                verdict = decided.get(key)
                if verdict is None:
                    target_counts = counts.get(target)
                    if target_counts is None:
                        # counts come straight from the store indexes; the
                        # neighbourhood stays lazy so count-only decisions
                        # never materialise the target's triples.
                        target_counts = store_counts(graph, target)
                        counts[target] = target_counts
                    verdict = (label in compiled
                               and compiled.decides(
                                   label,
                                   LazyNeighbourhood(neighbourhood_any, target),
                                   target_counts))
                    decided[key] = verdict
                if not verdict:
                    needs_edge = True
            if not needs_edge:
                continue
        edges.setdefault(triple.subject, set()).add(target)
    return edges, demanded


def affected_nodes(
    graph: Graph,
    schema: Schema,
    dirty_subjects: Iterable[SubjectTerm],
    index: Optional[ReferenceIndex] = None,
    compiled: Optional[CompiledSchema] = None,
) -> FrozenSet[ObjectTerm]:
    """The reverse-reachability closure of a dirty set along reference edges.

    Returns every node whose verdict (for any label) may differ after the
    mutations that dirtied ``dirty_subjects``: the dirty nodes themselves
    plus every node that can *reach* a dirty node through reference edges —
    walked backwards, one in-edge scan per affected node through the graph's
    OSP/POS indexes, so the cost is proportional to the closure, never to
    the graph.

    Soundness of the closure over the **current** edge set: a stale verdict
    was derived over the *old* edges, but any old edge that no longer exists
    had its source dirtied by the removal, so by induction along the old
    reference path every stale referrer is either dirty itself or reaches a
    dirty node along surviving edges.

    With a :class:`~repro.shex.compiled.CompiledSchema`, propagation *stops*
    at a non-dirty node whose demanded labels the prefilter decides
    statically: those verdicts are functions of the node's own (unchanged)
    neighbourhood, so its referrers consume identical facts — the same
    pruning (and the same soundness argument) as
    :func:`reference_edges` ``(compiled=...)``, valid only when revalidation
    runs with the same compiled schema.  Dirty nodes always propagate: their
    neighbourhood changed, so even a statically-decided verdict may differ
    from what referrers consumed before.
    """
    index = index if index is not None else ReferenceIndex(schema)
    dirty = set(dirty_subjects)
    if not dirty or not index.has_references:
        return frozenset(dirty)
    affected: Set[ObjectTerm] = set(dirty)
    frontier: List[ObjectTerm] = list(dirty)
    # the columnar store walks in-edges natively over its OSP int columns
    # (one binary search per segment, predicates decoded once through the
    # dictionary's memo); the dict store falls back to its OSP hash index.
    in_edges = getattr(graph, "in_edges", None)
    neighbourhood_any = getattr(graph, "neighbourhood_any", graph.neighbourhood)
    while frontier:
        node = frontier.pop()
        if isinstance(node, Literal):
            continue
        referrers: Set[SubjectTerm] = set()
        demanded: Set[ShapeLabel] = set()
        if in_edges is not None:
            edge_iter: Iterable = in_edges(node)
        else:
            edge_iter = ((triple.predicate, triple.subject)
                         for triple in graph.triples(obj=node))
        for predicate, subject in edge_iter:
            # the reverse index gates the backward walk: the edge matters
            # only if some shape checked against the *subject* contains a
            # reference arc this predicate can trigger …
            if not index.referrer_labels_for(predicate):
                continue
            referrers.add(subject)
            # … while the forward index supplies the labels the edge can
            # demand of the *object* (the static-decidability check below).
            demanded.update(index.labels_for(predicate))
        if not referrers:
            continue
        if compiled is not None and node not in dirty:
            counts = store_counts(graph, node)
            if all(
                label in compiled and compiled.decides(
                    label, LazyNeighbourhood(neighbourhood_any, node), counts)
                for label in demanded
            ):
                continue
        for referrer in referrers:
            if referrer not in affected:
                affected.add(referrer)
                frontier.append(referrer)
    return frozenset(affected)


def strongly_connected_components(
    nodes: Sequence[ObjectTerm],
    edges: Dict[ObjectTerm, Set[ObjectTerm]],
) -> List[List[ObjectTerm]]:
    """Tarjan's SCC algorithm, fully iterative, dependencies first.

    ``nodes`` fixes the vertex set and the DFS root order (determinism);
    successors outside ``nodes`` are ignored.  Components are emitted in
    reverse topological order of the condensation: whenever component ``A``
    references component ``B``, ``B`` appears before ``A`` — exactly the
    order a scheduler must settle verdicts in.  The explicit work stack
    replaces recursion, so arbitrarily deep reference chains never hit
    Python's recursion limit.
    """
    node_set = set(nodes)
    index_of: Dict[ObjectTerm, int] = {}
    lowlink: Dict[ObjectTerm, int] = {}
    on_stack: Set[ObjectTerm] = set()
    stack: List[ObjectTerm] = []
    components: List[List[ObjectTerm]] = []
    counter = 0

    def successors(node: ObjectTerm) -> List[ObjectTerm]:
        targets = edges.get(node)
        if not targets:
            return []
        return sorted(
            (t for t in targets if t in node_set), key=lambda term: term.sort_key()
        )

    for root in nodes:
        if root in index_of:
            continue
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        frames: List[Tuple[ObjectTerm, Iterable[ObjectTerm]]] = [
            (root, iter(successors(root)))
        ]
        while frames:
            node, iterator = frames[-1]
            descended = False
            for succ in iterator:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    frames.append((succ, iter(successors(succ))))
                    descended = True
                    break
                if succ in on_stack and index_of[succ] < lowlink[node]:
                    lowlink[node] = index_of[succ]
            if descended:
                continue
            frames.pop()
            if frames:
                parent = frames[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component: List[ObjectTerm] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.reverse()
                components.append(component)
    return components


@dataclass
class GraphPartition:
    """The condensation of a data graph's reference graph, ready to schedule.

    ``components`` are in dependencies-first order; ``levels`` groups
    component indices into antichains — two components in the same level
    have no reference path between them in either direction, so they can be
    validated concurrently once every earlier level has settled.
    """

    #: strongly-connected components, dependencies (referenced nodes) first.
    components: Tuple[Tuple[ObjectTerm, ...], ...]
    #: indices into ``components`` per condensation level, level 0 first.
    levels: Tuple[Tuple[int, ...], ...]
    #: node → index of its component.
    component_of: Dict[ObjectTerm, int] = field(repr=False)
    #: node-level reference edges the partition was derived from.
    edges: Dict[SubjectTerm, Set[ObjectTerm]] = field(repr=False)
    #: labels incoming references can demand of a node (over-approximation).
    demanded: Dict[ObjectTerm, FrozenSet[ShapeLabel]] = field(repr=False)
    #: per component, the out-of-component nodes its members reference.
    external_targets: Tuple[FrozenSet[ObjectTerm], ...] = field(repr=False)

    @property
    def nodes(self) -> List[ObjectTerm]:
        """Every node of the partition, in component order."""
        return [node for component in self.components for node in component]

    @property
    def largest_component(self) -> int:
        """Size of the largest strongly-connected component."""
        return max((len(c) for c in self.components), default=0)

    def stats(self) -> Dict[str, int]:
        """Summary counters for benchmarks and traces."""
        return {
            "nodes": sum(len(c) for c in self.components),
            "components": len(self.components),
            "levels": len(self.levels),
            "largest_component": self.largest_component,
            "edges": sum(len(targets) for targets in self.edges.values()),
        }


def partition_reference_graph(
    graph: Graph,
    schema: Schema,
    extra_nodes: Iterable[ObjectTerm] = (),
    compiled: Optional[CompiledSchema] = None,
    restrict_to: Optional[Iterable[SubjectTerm]] = None,
    index: Optional[ReferenceIndex] = None,
) -> GraphPartition:
    """Partition a data graph's nodes by reference-graph SCC.

    The vertex set is every subject node, every non-literal object reachable
    through a reference-carrying predicate, and ``extra_nodes`` (a scheduler
    passes the nodes it wants report entries for).  Nodes without any
    reference edge become singleton components in level 0 — the perfectly
    parallel case; a schema without references therefore partitions every
    node into its own component.  A compiled schema additionally prunes
    edges to prefilter-decidable targets (see :func:`reference_edges`).

    With ``restrict_to`` (incremental revalidation's affected closure), only
    those subjects' triples are scanned and the vertex set is the closure
    plus the targets its members demand: the whole partition is proportional
    to the closure, never to the graph.  Sound for scheduling because an
    affected closure is *edge-closed upstream* — every node whose validation
    can recurse into a closure member is itself in the closure — so the
    subgraph's SCCs and their relative order coincide with the restriction
    of the full condensation; dependencies that leave the closure are
    exactly the settled verdicts a scheduler seeds.  Callers that already
    hold the schema's :class:`ReferenceIndex` pass it as ``index``.
    """
    index = index if index is not None else ReferenceIndex(schema)
    if restrict_to is None:
        edges, demanded = reference_edges(graph, schema, index,
                                          compiled=compiled)
        node_set: Set[ObjectTerm] = set(graph.nodes())
    else:
        restricted = set(restrict_to)
        edges, demanded = reference_edges(graph, schema, index,
                                          compiled=compiled,
                                          subjects=restricted)
        node_set = restricted
    node_set.update(demanded)
    node_set.update(extra_nodes)
    nodes = sorted(node_set, key=lambda term: term.sort_key())

    raw_components = strongly_connected_components(nodes, edges)
    components = tuple(tuple(component) for component in raw_components)
    component_of: Dict[ObjectTerm, int] = {}
    for comp_index, component in enumerate(components):
        for node in component:
            component_of[node] = comp_index

    # dependencies-first emission guarantees every successor component has a
    # smaller index, so one left-to-right pass computes the levels.
    level_of: List[int] = []
    external: List[FrozenSet[ObjectTerm]] = []
    for comp_index, component in enumerate(components):
        targets: Set[ObjectTerm] = set()
        for node in component:
            for target in edges.get(node, ()):
                if component_of.get(target, comp_index) != comp_index:
                    targets.add(target)
        external.append(frozenset(targets))
        level = 0
        for target in targets:
            successor_level = level_of[component_of[target]]
            if successor_level + 1 > level:
                level = successor_level + 1
        level_of.append(level)

    level_count = max(level_of, default=-1) + 1
    level_buckets: List[List[int]] = [[] for _ in range(level_count)]
    for comp_index, level in enumerate(level_of):
        level_buckets[level].append(comp_index)

    return GraphPartition(
        components=components,
        levels=tuple(tuple(bucket) for bucket in level_buckets),
        component_of=component_of,
        edges=edges,
        demanded={node: frozenset(labels) for node, labels in demanded.items()},
        external_targets=tuple(external),
    )
