"""Rendering validation reports for people and machines.

A validator is only useful if its output can be consumed: this module turns
:class:`~repro.shex.validator.ValidationReport` objects into

* a human-readable text table (``format_text``),
* JSON-compatible dictionaries (``report_to_dict``) for dashboards,
* CSV rows (``format_csv``) for spreadsheets,
* a compact one-line summary (``summarize``) for CI logs.

All renderers are deterministic (entries sorted by node, then label) so their
output can be diffed across runs.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from .results import ValidationReportEntry
from .validator import ValidationReport

__all__ = [
    "format_text",
    "format_csv",
    "report_to_dict",
    "report_to_json",
    "summarize",
]


def _sorted_entries(report: ValidationReport) -> List[ValidationReportEntry]:
    return sorted(
        report.entries,
        key=lambda entry: (entry.node.sort_key(), str(entry.label)),
    )


def summarize(report: ValidationReport) -> str:
    """Return a one-line summary such as ``"7/9 conform (2 failures)"``."""
    total = len(report.entries)
    failures = len(report.failures())
    conforming = total - failures
    if failures == 0:
        return f"{conforming}/{total} conform"
    return f"{conforming}/{total} conform ({failures} failure{'s' if failures != 1 else ''})"


def format_text(report: ValidationReport, show_reasons: bool = True,
                max_reason_length: int = 96) -> str:
    """Render the report as an aligned, human-readable table."""
    entries = _sorted_entries(report)
    if not entries:
        return "empty validation report\n"
    node_width = max(len(entry.node.n3()) for entry in entries)
    label_width = max(len(str(entry.label)) for entry in entries)
    lines = [
        f"{'node':<{node_width}}  {'shape':<{label_width}}  verdict",
        f"{'-' * node_width}  {'-' * label_width}  -------",
    ]
    for entry in entries:
        verdict = "conforms" if entry.conforms else "FAILS"
        line = f"{entry.node.n3():<{node_width}}  {str(entry.label):<{label_width}}  {verdict}"
        if show_reasons and not entry.conforms and entry.reason:
            reason = entry.reason
            if len(reason) > max_reason_length:
                reason = reason[:max_reason_length - 1] + "…"
            line += f"  ({reason})"
        lines.append(line)
    lines.append("")
    lines.append(summarize(report))
    return "\n".join(lines) + "\n"


def report_to_dict(report: ValidationReport, include_stats: bool = False) -> Dict:
    """Convert the report to a JSON-friendly dictionary."""
    entries = []
    for entry in _sorted_entries(report):
        item: Dict = {
            "node": entry.node.n3(),
            "shape": str(entry.label),
            "conforms": entry.conforms,
        }
        if entry.reason:
            item["reason"] = entry.reason
        if include_stats:
            item["stats"] = entry.stats.as_dict()
        entries.append(item)
    return {
        "conforms": report.conforms,
        "summary": summarize(report),
        "entries": entries,
        "typing": report.typing.to_dict(),
    }


def report_to_json(report: ValidationReport, include_stats: bool = False,
                   indent: Optional[int] = 2) -> str:
    """Serialise the report as a JSON document."""
    return json.dumps(report_to_dict(report, include_stats=include_stats), indent=indent)


def format_csv(report: ValidationReport) -> str:
    """Render the report as CSV with a header row."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["node", "shape", "conforms", "reason"])
    for entry in _sorted_entries(report):
        writer.writerow([
            entry.node.n3(), str(entry.label),
            "true" if entry.conforms else "false",
            entry.reason or "",
        ])
    return buffer.getvalue()
