"""Result and statistics objects shared by the matching engines.

Both the derivative engine and the backtracking engine report their outcome
through :class:`MatchResult`, which carries the boolean verdict, the shape
typing ``τ`` built along the way (Section 8) and a :class:`MatchStats` record
used by the benchmarks to explain *why* one engine is faster than the other
(derivative steps vs. decompositions explored, peak expression size, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .typing import ShapeTyping

__all__ = ["MatchStats", "MatchResult", "ValidationReportEntry"]


@dataclass
class MatchStats:
    """Counters describing the work performed during one match.

    Attributes
    ----------
    derivative_steps:
        number of single-triple derivatives computed (derivative engine).
    decompositions:
        number of graph decompositions enumerated (backtracking engine);
        this is the exponential factor the paper highlights in Example 3.
    rule_applications:
        number of inference-rule applications attempted (backtracking engine).
    arc_checks:
        number of arc constraint evaluations (both engines).
    reference_checks:
        number of recursive shape-reference validations triggered.
    prefilter_accepts / prefilter_rejects:
        ``(node, label)`` pairs decided statically by the compiled-schema
        prefilter (:mod:`repro.shex.compiled`), without running an engine.
    signature_hits / signature_misses / signature_dedupes:
        neighbourhood-signature cache traffic: lookups answered from the
        :class:`~repro.shex.cache.SignatureCache`, lookups that missed, and
        verdicts *stored* for structurally identical nodes to reuse later.
        A hit means the engine never ran for that ``(node, label)`` pair.
    signature_time / prefilter_time / dispatch_time / backtrack_time /
    cache_time:
        per-phase wall-clock accumulators (seconds) for the profile-guided
        hot path: signature construction + cache probes, static prefilter
        passes, the flattened derivative dispatch loop, backtracking-engine
        search, and global derivative-cache bookkeeping.  They subtract like
        ordinary counters in :meth:`delta_since`.
    max_expression_size:
        largest expression (AST node count) materialised during matching;
        tracks the derivative growth discussed in Example 10.
    """

    derivative_steps: int = 0
    decompositions: int = 0
    rule_applications: int = 0
    arc_checks: int = 0
    reference_checks: int = 0
    prefilter_accepts: int = 0
    prefilter_rejects: int = 0
    signature_hits: int = 0
    signature_misses: int = 0
    signature_dedupes: int = 0
    signature_time: float = 0.0
    prefilter_time: float = 0.0
    dispatch_time: float = 0.0
    backtrack_time: float = 0.0
    cache_time: float = 0.0
    max_expression_size: int = 0

    def observe_expression_size(self, size: int) -> None:
        """Record the size of an intermediate expression."""
        if size > self.max_expression_size:
            self.max_expression_size = size

    def merge(self, other: "MatchStats") -> "MatchStats":
        """Accumulate ``other`` into this record and return ``self``.

        This **mutates** ``self``; use :meth:`combined` for a pure version
        that leaves both operands untouched.
        """
        self.derivative_steps += other.derivative_steps
        self.decompositions += other.decompositions
        self.rule_applications += other.rule_applications
        self.arc_checks += other.arc_checks
        self.reference_checks += other.reference_checks
        self.prefilter_accepts += other.prefilter_accepts
        self.prefilter_rejects += other.prefilter_rejects
        self.signature_hits += other.signature_hits
        self.signature_misses += other.signature_misses
        self.signature_dedupes += other.signature_dedupes
        self.signature_time += other.signature_time
        self.prefilter_time += other.prefilter_time
        self.dispatch_time += other.dispatch_time
        self.backtrack_time += other.backtrack_time
        self.cache_time += other.cache_time
        self.max_expression_size = max(self.max_expression_size, other.max_expression_size)
        return self

    def copy(self) -> "MatchStats":
        """Return an independent snapshot of the counters."""
        return MatchStats(
            derivative_steps=self.derivative_steps,
            decompositions=self.decompositions,
            rule_applications=self.rule_applications,
            arc_checks=self.arc_checks,
            reference_checks=self.reference_checks,
            prefilter_accepts=self.prefilter_accepts,
            prefilter_rejects=self.prefilter_rejects,
            signature_hits=self.signature_hits,
            signature_misses=self.signature_misses,
            signature_dedupes=self.signature_dedupes,
            signature_time=self.signature_time,
            prefilter_time=self.prefilter_time,
            dispatch_time=self.dispatch_time,
            backtrack_time=self.backtrack_time,
            cache_time=self.cache_time,
            max_expression_size=self.max_expression_size,
        )

    def combined(self, other: "MatchStats") -> "MatchStats":
        """Pure variant of :meth:`merge`: return a new accumulated record."""
        return self.copy().merge(other)

    def delta_since(self, before: "MatchStats") -> "MatchStats":
        """Return the work done since the ``before`` snapshot was taken.

        Counters are subtracted; ``max_expression_size`` is a high-water mark
        and carries over unchanged.  Used by the shared-context bulk path to
        attribute per-entry statistics without aliasing the accumulated
        context record.
        """
        return MatchStats(
            derivative_steps=self.derivative_steps - before.derivative_steps,
            decompositions=self.decompositions - before.decompositions,
            rule_applications=self.rule_applications - before.rule_applications,
            arc_checks=self.arc_checks - before.arc_checks,
            reference_checks=self.reference_checks - before.reference_checks,
            prefilter_accepts=self.prefilter_accepts - before.prefilter_accepts,
            prefilter_rejects=self.prefilter_rejects - before.prefilter_rejects,
            signature_hits=self.signature_hits - before.signature_hits,
            signature_misses=self.signature_misses - before.signature_misses,
            signature_dedupes=self.signature_dedupes - before.signature_dedupes,
            signature_time=self.signature_time - before.signature_time,
            prefilter_time=self.prefilter_time - before.prefilter_time,
            dispatch_time=self.dispatch_time - before.dispatch_time,
            backtrack_time=self.backtrack_time - before.backtrack_time,
            cache_time=self.cache_time - before.cache_time,
            max_expression_size=self.max_expression_size,
        )

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (for benchmark tables)."""
        return {
            "derivative_steps": self.derivative_steps,
            "decompositions": self.decompositions,
            "rule_applications": self.rule_applications,
            "arc_checks": self.arc_checks,
            "reference_checks": self.reference_checks,
            "prefilter_accepts": self.prefilter_accepts,
            "prefilter_rejects": self.prefilter_rejects,
            "signature_hits": self.signature_hits,
            "signature_misses": self.signature_misses,
            "signature_dedupes": self.signature_dedupes,
            "signature_time": self.signature_time,
            "prefilter_time": self.prefilter_time,
            "dispatch_time": self.dispatch_time,
            "backtrack_time": self.backtrack_time,
            "cache_time": self.cache_time,
            "max_expression_size": self.max_expression_size,
        }


@dataclass
class MatchResult:
    """The outcome of matching one neighbourhood against one expression."""

    matched: bool
    typing: ShapeTyping = field(default_factory=ShapeTyping.empty)
    stats: MatchStats = field(default_factory=MatchStats)
    #: human-readable explanation of a failure (empty on success).
    reason: str = ""
    #: True when the verdict was forced by resource exhaustion (recursion
    #: depth budget) rather than derived semantically.  Such outcomes are
    #: never cached by the validation context: re-validating with a fresh
    #: budget may well succeed.
    limit_exceeded: bool = False

    def __bool__(self) -> bool:
        return self.matched

    @classmethod
    def success(cls, typing: Optional[ShapeTyping] = None,
                stats: Optional[MatchStats] = None) -> "MatchResult":
        """Build a successful result."""
        return cls(True, typing or ShapeTyping.empty(), stats or MatchStats())

    @classmethod
    def failure(cls, reason: str = "", stats: Optional[MatchStats] = None,
                limit_exceeded: bool = False) -> "MatchResult":
        """Build a failed result with an optional explanation."""
        return cls(False, ShapeTyping.empty(), stats or MatchStats(), reason,
                   limit_exceeded)


@dataclass
class ValidationReportEntry:
    """One line of a validation report: a node, a shape and the verdict."""

    node: object
    label: object
    conforms: bool
    reason: str = ""
    stats: MatchStats = field(default_factory=MatchStats)
    #: True when the verdict hit the recursion-depth budget instead of being
    #: derived semantically (see :attr:`MatchResult.limit_exceeded`).
    limit_exceeded: bool = False

    def __str__(self) -> str:
        verdict = "conforms to" if self.conforms else "does NOT conform to"
        suffix = f" ({self.reason})" if self.reason and not self.conforms else ""
        return f"{self.node.n3()} {verdict} {self.label}{suffix}"
