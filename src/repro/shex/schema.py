"""Shape Expression Schemas ``(Λ, δ)`` and the typing context ``Γ``.

Section 8 of the paper extends regular shape expressions with labels: a
schema is a pair ``(Λ, δ)`` where ``δ`` maps each label to a regular shape
expression whose arcs may reference other labels (``@<Person>``).  Matching
then happens *under a context* ``Γ`` holding the typing hypotheses made so
far; the rule ``MatchShape`` adds ``n → l`` to the context before checking
``δ(l)`` against ``Σgₙ``, which is what makes recursive schemas (Example 13,
Example 14) terminate.

This module provides:

* :class:`Schema` — the ``(Λ, δ)`` pair with convenience constructors,
* :class:`ValidationContext` — the ``Γ`` object shared by both engines; it
  holds the graph, the schema, the hypothesis set and a pluggable
  ``neighbourhood matcher`` so the same recursion logic drives the
  derivative engine, the backtracking engine and any future engine.
"""

from __future__ import annotations

from time import perf_counter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..rdf.graph import Graph
from ..rdf.terms import Literal, ObjectTerm, Triple
from .expressions import ShapeExpr, referenced_labels
from .results import MatchResult, MatchStats
from .typing import ShapeLabel, ShapeTyping

__all__ = ["Schema", "SchemaError", "ValidationContext", "NeighbourhoodMatcher"]


class SchemaError(Exception):
    """Raised for malformed schemas (unknown labels, missing start shape…)."""


#: Signature of the function both engines expose: match an expression against
#: a set of triples under a context, returning a :class:`MatchResult`.
NeighbourhoodMatcher = Callable[
    [ShapeExpr, FrozenSet[Triple], "ValidationContext"], MatchResult
]


class Schema:
    """A Shape Expression Schema: a finite set of labelled shape expressions."""

    def __init__(self, shapes: Mapping[ShapeLabel | str, ShapeExpr],
                 start: Optional[ShapeLabel | str] = None):
        self._shapes: Dict[ShapeLabel, ShapeExpr] = {}
        for label, expr in shapes.items():
            label = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
            if not isinstance(expr, ShapeExpr):
                raise SchemaError(f"shape {label} is not a ShapeExpr: {expr!r}")
            self._shapes[label] = expr
        if not self._shapes:
            raise SchemaError("a schema needs at least one shape")
        if start is not None:
            start = start if isinstance(start, ShapeLabel) else ShapeLabel(start)
            if start not in self._shapes:
                raise SchemaError(f"start shape {start} is not defined")
        self._start = start
        self._check_references()

    def _check_references(self) -> None:
        """Every ``@label`` reference must point at a defined shape."""
        for label, expr in self._shapes.items():
            for referenced in referenced_labels(expr):
                referenced = (referenced if isinstance(referenced, ShapeLabel)
                              else ShapeLabel(str(referenced)))
                if referenced not in self._shapes:
                    raise SchemaError(
                        f"shape {label} references undefined shape {referenced}"
                    )

    # -- accessors -------------------------------------------------------------
    @property
    def start(self) -> Optional[ShapeLabel]:
        """The start shape, if one was declared."""
        return self._start

    def labels(self) -> Iterator[ShapeLabel]:
        """Iterate over the labels ``Λ`` in sorted order."""
        return iter(sorted(self._shapes.keys()))

    def expression(self, label: ShapeLabel | str) -> ShapeExpr:
        """Return ``δ(label)``."""
        label = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
        try:
            return self._shapes[label]
        except KeyError:
            raise SchemaError(f"unknown shape label: {label}") from None

    def __contains__(self, label: object) -> bool:
        if isinstance(label, str):
            label = ShapeLabel(label)
        return label in self._shapes

    def __len__(self) -> int:
        return len(self._shapes)

    def items(self) -> Iterator[Tuple[ShapeLabel, ShapeExpr]]:
        """Iterate over ``(label, expression)`` pairs in label order."""
        for label in self.labels():
            yield label, self._shapes[label]

    def is_recursive(self) -> bool:
        """True if any shape can reach itself through ``@label`` references."""
        return any(label in self._reachable(label) for label in self._shapes)

    def dependencies(self, label: ShapeLabel | str) -> FrozenSet[ShapeLabel]:
        """Return the labels directly referenced by ``label``'s expression."""
        expr = self.expression(label)
        return frozenset(
            ref if isinstance(ref, ShapeLabel) else ShapeLabel(str(ref))
            for ref in referenced_labels(expr)
        )

    def _reachable(self, label: ShapeLabel) -> FrozenSet[ShapeLabel]:
        seen: Set[ShapeLabel] = set()
        frontier = list(self.dependencies(label))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.dependencies(current))
        return frozenset(seen)

    def __repr__(self) -> str:
        labels = ", ".join(str(label) for label in self.labels())
        return f"Schema([{labels}], start={self._start})"

    # -- construction helpers ---------------------------------------------------
    @classmethod
    def single(cls, label: ShapeLabel | str, expr: ShapeExpr) -> "Schema":
        """A schema with exactly one shape, also used as the start shape."""
        return cls({label: expr}, start=label)

    @classmethod
    def from_shexc(cls, text: str) -> "Schema":
        """Parse a schema written in the ShEx compact syntax."""
        from .shexc import parse_shexc

        return parse_shexc(text)

    def to_shexc(self) -> str:
        """Serialise the schema back to ShEx compact syntax."""
        from .shexc import serialize_shexc

        return serialize_shexc(self)


#: shared empty neighbourhood (literals, node-free subjects) — one instance.
_EMPTY_NEIGHBOURHOOD: FrozenSet[Triple] = frozenset()


class _LazyNeighbourhood:
    """An iterable ``Σgₙ`` proxy that defers the scan until iterated.

    When predicate counts come straight from the store, most prefilter
    decisions never look at a triple; handing the prefilter this proxy means
    the neighbourhood is only materialised for shapes with value screens
    (the store caches the scan, so repeated iteration costs one lookup).
    """

    __slots__ = ("_fetch", "_node")

    def __init__(self, fetch, node):
        self._fetch = fetch
        self._node = node

    def __iter__(self):
        return iter(self._fetch(self._node))

def _signature_sort_key(item: tuple) -> tuple:
    """Canonical order for term-keyed signature items: (predicate, bits)."""
    return (item[0].sort_key(), item[1])


#: sentinel for object-class memo misses — ``None`` is a valid memoised class
#: (signature-open object), so ``dict.get`` needs a distinct default.
_NO_CLASS = object()


#: sentinel dependency depth marking an outcome forced by the recursion-depth
#: budget; it never resolves (no frame ever settles at this depth), so the
#: poison propagates to every enclosing frame and nothing gets cached.
_BUDGET_POISON = -1


class _Frame:
    """Bookkeeping for one in-progress ``check_reference`` activation.

    ``deps`` holds the depths of every in-progress hypothesis this frame's
    outcome consulted (possibly including its own depth — the coinductive
    knot — and ``_BUDGET_POISON`` when the recursion budget fired in its
    subtree).  A frame whose deps contain nothing but its own depth is
    *definitive*; anything else is conditional on enclosing frames.
    """

    __slots__ = ("node", "label", "depth", "deps")

    def __init__(self, node: ObjectTerm, label: ShapeLabel, depth: int):
        self.node = node
        self.label = label
        self.depth = depth
        self.deps: Set[int] = set()


class ValidationContext:
    """The typing context ``Γ`` threaded through a validation run.

    The context records the *hypotheses*: the ``(node, label)`` pairs whose
    validation is currently in progress.  When an arc references a label and
    the object node is already hypothesised for that label, the reference is
    assumed to hold, which is exactly the coinductive reading of the
    ``MatchShape`` rule and guarantees termination on cyclic data
    (``:alice foaf:knows :bob . :bob foaf:knows :alice .``).

    Verdicts are cached so shared sub-structures are validated once — and so
    a single context can be reused for a whole-graph bulk run.  Caching is
    *sound*: a verdict derived while the subtree consulted an in-progress
    hypothesis from an **enclosing** frame is provisional (the hypothesis may
    yet be refuted) and is only promoted to the cache once the frame that
    owns the hypothesis settles successfully; failures with such
    dependencies, and any outcome forced by the recursion-depth budget, are
    never cached at all.

    The actual neighbourhood matching is delegated to the ``matcher``
    callable so the derivative and backtracking engines can share this class.
    """

    def __init__(self, graph: Graph, schema: Optional[Schema],
                 matcher: NeighbourhoodMatcher,
                 max_recursion_depth: int = 500,
                 compiled: Optional[object] = None,
                 reference_index: Optional[object] = None):
        self.graph = graph
        self.schema = schema
        #: optional :class:`~repro.shex.compiled.CompiledSchema` enabling the
        #: static prefilter and the engine's predicate-indexed atom dispatch.
        #: Kept untyped to avoid a circular import; ``None`` disables both.
        self.compiled = compiled
        #: per-node predicate multisets, computed once and shared by every
        #: label the node is checked against (only populated when compiled).
        self._pred_counts: Dict[ObjectTerm, Mapping] = {}
        #: pairs the prefilter already found undecidable (keyed by node so
        #: retraction pops per node): the bulk loops prefilter a pair before
        #: ``validate_node`` and ``check_reference`` would otherwise re-run
        #: the same scans on the way to the engine.
        self._prefilter_unknown: Dict[ObjectTerm, Set[ShapeLabel]] = {}
        self._matcher = matcher
        #: hypothesis → depth of the frame that assumed it.
        self._hypotheses: Dict[Tuple[ObjectTerm, ShapeLabel], int] = {}
        self._confirmed = ShapeTyping.empty()
        #: refuted verdicts, keyed by node (retraction pops whole nodes).
        self._failed: Dict[ObjectTerm, Set[ShapeLabel]] = {}
        #: provisionally-validated pair → depths of the active frames whose
        #: hypotheses it rests on (never empty, never containing the poison).
        #: Consultable like a cache *within* the run (the consumer inherits
        #: the dependency set); every time a frame settles, entries that
        #: depended on it are rewritten (success), confirmed (success and no
        #: dependencies left) or dropped (failure).
        self._provisional: Dict[Tuple[ObjectTerm, ShapeLabel], Set[int]] = {}
        #: inverse index: frame depth → pairs depending on it, so settling a
        #: frame touches only its dependents instead of scanning every entry.
        self._provisional_by_depth: Dict[int, Set[Tuple[ObjectTerm, ShapeLabel]]] = {}
        self.stats = MatchStats()
        self.max_recursion_depth = max_recursion_depth
        self._depth = 0
        self._frames: List[_Frame] = []
        # hand engines that consume triples in predicate order the graph's
        # cached pre-sorted neighbourhoods; engines that don't (backtracking,
        # SPARQL, derivative engine with order_by_predicate=False) keep
        # getting plain frozensets and no sort is paid on their behalf.
        engine = getattr(matcher, "__self__", None)
        self._ordered_neighbourhoods = bool(
            getattr(engine, "wants_ordered_neighbourhoods", False)
            and hasattr(graph, "neighbourhood_ordered")
        )
        # the prefilter is order-insensitive; graphs expose their cheapest
        # neighbourhood representation through ``neighbourhood_any``.
        self._neighbourhood_any = getattr(graph, "neighbourhood_any",
                                          graph.neighbourhood)
        # stores that can count out-edges per predicate without building
        # neighbourhood triples (both triple stores can; snapshots cannot)
        # let the prefilter decide count-only shapes with no triples at all.
        self._graph_predicate_counts = getattr(graph, "predicate_counts", None)
        #: schema-level reference index (duck-typed
        #: :class:`~repro.shex.partition.ReferenceIndex`); signature
        #: construction uses it to skip the self-reference eligibility tests
        #: outright for reference-free schemas.  Optional — without it the
        #: per-atom reference labels from ``signature_atoms`` decide alone.
        self.reference_index = reference_index
        #: neighbourhood-signature verdict cache attached by the bulk
        #: validator (:class:`~repro.shex.cache.SignatureCache`); ``None``
        #: disables the signature fast path.
        self.signature_cache = None
        #: node → canonical signature memo.  Presence-keyed, because ``None``
        #: (signature-open, engine must run) is a valid memoised answer.
        self._signatures: Dict[ObjectTerm, Optional[tuple]] = {}
        #: object-class memo: ``(pid, oid)`` int pairs (columnar) or
        #: ``(predicate, object)`` term pairs → ``(has_refs, verdict bits)``,
        #: or ``None`` when a reference bit is not statically decidable.
        self._object_classes: Dict[object, Optional[Tuple[bool, tuple]]] = {}
        self._graph_signature_pairs = getattr(graph, "signature_pairs", None)
        self._graph_decode_id = getattr(graph, "decode_id", None)
        # zero-copy predicate-grouped out-edges (dict store): the signature
        # builder resolves candidate atoms once per predicate group and never
        # materialises neighbourhood triples for probe-only subjects.
        self._graph_predicate_objects = getattr(graph, "predicate_objects", None)

    # -- typing bookkeeping -----------------------------------------------------
    @property
    def typing(self) -> ShapeTyping:
        """The typing confirmed so far (``Γ.typing`` in the paper)."""
        return self._confirmed

    def assume(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Add the hypothesis ``node → label`` (the ``Γ{n → l}`` operation)."""
        self._hypotheses.setdefault((node, label), self._depth)

    def retract(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Drop a hypothesis after its validation finished."""
        self._hypotheses.pop((node, label), None)

    def is_assumed(self, node: ObjectTerm, label: ShapeLabel) -> bool:
        """True if ``node → label`` is currently hypothesised.

        Consulting a hypothesis is recorded as a dependency of the innermost
        in-progress frame: its verdict now rests on an assumption that may
        later be retracted, so it must not be cached as definitive.
        """
        depth = self._hypotheses.get((node, label))
        if depth is None:
            return False
        if self._frames:
            self._frames[-1].deps.add(depth)
        return True

    def confirm(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Record ``node → label`` as definitely established."""
        self._confirmed = self._confirmed.add(node, label)

    def record_failure(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Record that ``node`` definitely does not have shape ``label``."""
        self._failed.setdefault(node, set()).add(label)

    def is_confirmed(self, node: ObjectTerm, label: ShapeLabel) -> bool:
        """True if ``node → label`` has already been established."""
        return self._confirmed.has(node, label)

    def is_failed(self, node: ObjectTerm, label: ShapeLabel) -> bool:
        """True if ``node → label`` has already been refuted."""
        labels = self._failed.get(node)
        return labels is not None and label in labels

    # -- the retraction protocol --------------------------------------------------
    def retract_nodes(self, nodes: Iterable[ObjectTerm]) -> int:
        """Drop every verdict (and per-node cache) about ``nodes``.

        The context half of incremental revalidation: after graph mutations,
        the caller computes the affected closure (the dirty subjects plus
        everything that can reach them along reference edges —
        :func:`repro.shex.partition.affected_nodes`) and retracts exactly
        those nodes before re-running them.

        Soundness mirrors the settled-verdict merge rule in reverse: the
        confirmed/failed stores only ever hold **settled** verdicts
        (provisional, hypothesis-dependent outcomes are parked separately and
        budget-poisoned outcomes are never recorded at all), so retraction
        only removes definitive facts — and every retained fact is still
        valid, because a verdict whose derivation could have consulted an
        affected node is itself inside the closure by construction.

        Must not be called while a validation is in progress (frames active);
        raises :class:`SchemaError` then.  Returns the number of settled
        verdicts dropped.
        """
        if self._frames or self._hypotheses:
            raise SchemaError(
                "retract_nodes while a validation is in progress would drop "
                "state active frames rely on"
            )
        node_set = set(nodes)
        if not node_set:
            return 0
        dropped = 0
        confirmed = self._confirmed
        for node in node_set:
            labels = confirmed.labels_for(node)
            if labels:
                dropped += len(labels)
        self._confirmed = confirmed.without_nodes(node_set)
        # every store below is node-keyed, so retraction costs O(closure) —
        # never a scan of everything the context has settled.
        for node in node_set:
            failed_labels = self._failed.pop(node, None)
            if failed_labels:
                dropped += len(failed_labels)
            # per-node caches: predicate counts and prefilter misses are
            # pure functions of the node's (changed) neighbourhood.
            self._pred_counts.pop(node, None)
            self._prefilter_unknown.pop(node, None)
        # provisional state never survives a completed run; clear defensively
        # so a retraction after an aborted run cannot resurrect stale entries.
        self._provisional.clear()
        self._provisional_by_depth.clear()
        # signatures embed prefilter bits about *object* neighbourhoods, so a
        # node-keyed invalidation would under-report; drop them wholesale.
        # (The SignatureCache itself survives: its entries are keyed by the
        # signature structure, which mutated nodes no longer produce.)
        self._signatures.clear()
        self._object_classes.clear()
        return dropped

    def settled_counts(self) -> Dict[str, int]:
        """Counts of the settled verdicts this context holds.

        A session hook for the service layer's ``ServiceStats``: the size of
        the warm verdict state a long-lived server keeps between requests.
        Provisional entries are counted separately (non-zero only while a
        validation is in progress or after an aborted run).
        """
        return {
            "confirmed": sum(len(labels) for _, labels in self._confirmed.items()),
            "failed": sum(len(labels) for labels in self._failed.values()),
            "provisional": len(self._provisional),
        }

    # -- the cross-context merge protocol -----------------------------------------
    def seed_settled(
        self,
        confirmed: Iterable[Tuple[ObjectTerm, ShapeLabel]] = (),
        failed: Iterable[Tuple[ObjectTerm, ShapeLabel]] = (),
    ) -> None:
        """Import **settled** verdicts established by another context.

        This is the only way verdicts may cross context (and process)
        boundaries during parallel bulk validation, and it is sound precisely
        because only *definitive* verdicts are accepted: confirmed pairs were
        established with no outstanding hypothesis, refuted pairs failed on
        their own neighbourhood, and both are order-independent facts about
        the graph.  Provisional verdicts (conditional on in-progress
        hypotheses) and budget-poisoned outcomes must never be passed here —
        :meth:`settled_verdicts` on the exporting side excludes them by
        construction.
        """
        confirmed_typing = self._confirmed
        for node, label in confirmed:
            # persistent adds: O(log n) each with full structural sharing,
            # instead of materialising an intermediate typing and merging
            confirmed_typing = confirmed_typing.add(node, label)
        self._confirmed = confirmed_typing
        for node, label in failed:
            self._failed.setdefault(node, set()).add(label)

    def settled_verdicts(
        self,
    ) -> Tuple[
        Tuple[Tuple[ObjectTerm, ShapeLabel], ...],
        Tuple[Tuple[ObjectTerm, ShapeLabel], ...],
    ]:
        """Export the settled ``(confirmed, failed)`` pairs of this context.

        The counterpart of :meth:`seed_settled`: returns exactly the verdicts
        that may be shared with other contexts.  Provisional entries (still
        conditional on an active hypothesis) and anything forced by the
        recursion budget are not part of either set.
        """
        confirmed = tuple(
            (node, label)
            for node, labels in sorted(
                self._confirmed.items(), key=lambda item: item[0].sort_key()
            )
            for label in sorted(labels)
        )
        failed = tuple(
            (node, label)
            for node, labels in sorted(
                self._failed.items(), key=lambda item: item[0].sort_key()
            )
            for label in sorted(labels)
        )
        return confirmed, failed

    # -- the compiled-schema fast path ---------------------------------------------
    def _neighbourhood_of(self, node: ObjectTerm):
        """``Σgₙ`` as the active engine wants it (literals have none)."""
        if isinstance(node, Literal):
            # literals have no outgoing arcs; they conform only to shapes
            # accepting the empty neighbourhood
            return frozenset()
        if self._ordered_neighbourhoods:
            return self.graph.neighbourhood_ordered(node)
        return self.graph.neighbourhood(node)

    def _prefilter_inputs(self, node: ObjectTerm):
        """``(neighbourhood, predicate counts)`` for the prefilter, cached.

        The neighbourhood comes through ``neighbourhood_any`` — the
        prefilter is order-insensitive, so the predicate sort the engines
        want is never paid here; the counts are built once per node and
        shared by every label the node is checked against.
        """
        if isinstance(node, Literal):
            return _EMPTY_NEIGHBOURHOOD, self._pred_counts.setdefault(node, {})
        counts = self._pred_counts.get(node)
        if counts is None and self._graph_predicate_counts is not None:
            # id-native stores count per predicate without materialising a
            # single triple; the neighbourhood itself stays lazy, because
            # the prefilter only iterates it when value screens apply.
            counts = self._graph_predicate_counts(node)
            self._pred_counts[node] = counts
        if counts is not None:
            return _LazyNeighbourhood(self._neighbourhood_any, node), counts
        neighbourhood = self._neighbourhood_any(node)
        counts = {}
        for triple in neighbourhood:
            predicate = triple.predicate
            counts[predicate] = counts.get(predicate, 0) + 1
        self._pred_counts[node] = counts
        return neighbourhood, counts

    def _record_decision(self, node: ObjectTerm, label: ShapeLabel,
                         decision) -> None:
        """Record a prefilter verdict — definitive, never hypothesis-bound."""
        if decision.matched:
            self.stats.prefilter_accepts += 1
            self.confirm(node, label)
        else:
            self.stats.prefilter_rejects += 1
            self.record_failure(node, label)

    def prefilter_check(self, node: ObjectTerm, label: ShapeLabel):
        """Try to decide ``(node, label)`` statically; record any verdict.

        Returns the :class:`~repro.shex.compiled.PrefilterDecision` (and
        confirms / records the failure — prefilter verdicts are definitive,
        they never rest on a hypothesis) or ``None`` when the engine must
        run.  The bulk paths call this before building any matching frame;
        :meth:`check_reference` calls it for recursive references.
        """
        compiled = self.compiled
        if compiled is None:
            return None
        unknown = self._prefilter_unknown.get(node)
        if unknown is not None and label in unknown:
            return None
        shape = compiled.shape_or_none(label)
        if shape is None:
            return None
        start = perf_counter()
        neighbourhood, counts = self._prefilter_inputs(node)
        decision = shape.prefilter(neighbourhood, counts)
        if decision is None:
            self._prefilter_unknown.setdefault(node, set()).add(label)
        else:
            self._record_decision(node, label, decision)
        self.stats.prefilter_time += perf_counter() - start
        return decision

    def prefilter_node(self, node: ObjectTerm,
                       labels: Iterable[ShapeLabel]) -> Dict[ShapeLabel, object]:
        """Prefilter ``node`` against many labels in one pass.

        The bulk paths validate every label of a node back to back; fetching
        the neighbourhood and its predicate counts once per node (instead of
        once per pair) makes the static fast lane almost free.  Returns the
        decided labels only; verdicts are recorded exactly as in
        :meth:`prefilter_check`.
        """
        compiled = self.compiled
        if compiled is None:
            return {}
        start = perf_counter()
        neighbourhood, counts = self._prefilter_inputs(node)
        decisions: Dict[ShapeLabel, object] = {}
        unknown = self._prefilter_unknown.get(node)
        for label in labels:
            # skip pairs already scanned (unknown) or settled through an
            # earlier reference — the engine path answers those from its
            # verdict caches, and re-deciding here would double-count the
            # prefilter statistics
            if (unknown is not None and label in unknown) \
                    or self.is_confirmed(node, label) \
                    or self.is_failed(node, label):
                continue
            shape = compiled.shape_or_none(label)
            if shape is None:
                continue
            decision = shape.prefilter(neighbourhood, counts)
            if decision is None:
                # remember the miss: check_reference will not re-scan
                if unknown is None:
                    unknown = self._prefilter_unknown.setdefault(node, set())
                unknown.add(label)
                continue
            self._record_decision(node, label, decision)
            decisions[label] = decision
        self.stats.prefilter_time += perf_counter() - start
        return decisions

    # -- neighbourhood signatures --------------------------------------------------
    def _object_class(self, obj: ObjectTerm,
                      atoms) -> Optional[Tuple[bool, tuple]]:
        """Fold ``obj`` into its verdict-equivalence class under a predicate.

        ``atoms`` is the predicate's deterministic
        :meth:`~repro.shex.compiled.CompiledSchema.signature_atoms` tuple.
        Returns ``(has_reference_atoms, verdict bits)`` — one bit per
        candidate atom, in atom order — or ``None`` when some reference bit
        is not statically decided by the prefilter (the triple is then
        signature-open).  Every bit is a pure function of graph + schema:
        constraint verdicts are context-free by definition, and reference
        bits are prefilter decisions, which are definitive and agree with
        the engine's ``check_reference`` on settled pairs.  Two triples with
        equal bits therefore drive the derivative engine identically.
        """
        has_refs = False
        bits = []
        for atom, ref_label in atoms:
            if ref_label is None:
                bits.append(atom[1].matches(obj))
            else:
                has_refs = True
                decision = self.prefilter_check(obj, ref_label)
                if decision is None:
                    return None
                bits.append(decision.matched)
        return has_refs, tuple(bits)

    def node_signature(self, node: ObjectTerm) -> Optional[tuple]:
        """The canonical neighbourhood signature of ``node``, or ``None``.

        The signature is the sorted multiset of ``(predicate, object-class)``
        pairs over ``Σgₙ`` — id-native ``(pid, bits)`` int pairs when the
        store exposes :meth:`signature_pairs` (columnar), term-keyed pairs
        otherwise.  Because the object class fixes the verdict bit of every
        candidate atom a triple can touch, the engine's verdict for ``(node,
        label)`` is a pure function of the signature, for **any** label:
        equal signatures replay identical derivative chains, and the final
        nullability test is triple-order-independent.

        ``None`` marks a signature-*open* node — some object's reference bit
        is not statically decided, or a reference-demanding predicate loops
        back to the node itself (where the coinductive hypothesis could
        diverge from the prefilter bit).  Open nodes always go through the
        engine, which preserves the PR 1 recursion semantics untouched.
        Memoised per node; dropped wholesale on retraction.
        """
        compiled = self.compiled
        if compiled is None:
            return None
        memo = self._signatures
        if node in memo:
            return memo[node]
        signature = self._build_signature(node, compiled)
        memo[node] = signature
        return signature

    def _build_signature(self, node: ObjectTerm,
                         compiled) -> Optional[tuple]:
        signature_atoms = compiled.signature_atoms
        classes = self._object_classes
        index = self.reference_index
        # reference-free schemas cannot have self-reference loops, so the
        # per-triple eligibility tests vanish outright.
        check_refs = index is None or index.has_references
        items: List[tuple] = []
        raw = None
        if self._graph_signature_pairs is not None \
                and not isinstance(node, Literal):
            raw = self._graph_signature_pairs(node)
        if raw is not None:
            sid, id_pairs = raw
            decode = self._graph_decode_id
            atom_memo: Dict[int, tuple] = {}
            for pid, oid in id_pairs:
                key = (pid, oid)
                if key in classes:
                    cls = classes[key]
                else:
                    atoms = atom_memo.get(pid)
                    if atoms is None:
                        atoms = atom_memo[pid] = signature_atoms(decode(pid))
                    cls = self._object_class(decode(oid), atoms)
                    classes[key] = cls
                if cls is None:
                    return None
                if check_refs and cls[0] and oid == sid:
                    return None
                items.append((pid, cls[1]))
            items.sort()
            return tuple(items)
        grouped = self._graph_predicate_objects
        if grouped is not None:
            # dict-store fast path: one atom-table fetch per predicate group,
            # per-object class memo, no Triple materialisation, and items
            # keyed by the predicate's IRI string so the final sort and the
            # cache-key hash run on C-speed values.
            for predicate, objects in grouped(node).items():
                sub = classes.get(predicate)
                if sub is None:
                    sub = classes[predicate] = {}
                atoms = None
                pkey = predicate.value
                for obj in objects:
                    cls = sub.get(obj, _NO_CLASS)
                    if cls is _NO_CLASS:
                        if atoms is None:
                            atoms = signature_atoms(predicate)
                        cls = sub[obj] = self._object_class(obj, atoms)
                    if cls is None:
                        return None
                    if check_refs and cls[0] and obj == node:
                        return None
                    items.append((pkey, cls[1]))
            items.sort()
            return tuple(items)
        for triple in self._neighbourhood_any(node):
            predicate, obj = triple.predicate, triple.object
            key = (predicate, obj)
            if key in classes:
                cls = classes[key]
            else:
                cls = self._object_class(obj, signature_atoms(predicate))
                classes[key] = cls
            if cls is None:
                return None
            if check_refs and cls[0] and obj == node:
                return None
            items.append((predicate, cls[1]))
        items.sort(key=_signature_sort_key)
        return tuple(items)

    # -- the MatchShape rule -----------------------------------------------------
    def check_reference(self, node: ObjectTerm, label: ShapeLabel | str) -> MatchResult:
        """Validate ``node`` against the shape named ``label``.

        Implements the ``MatchShape`` / ``Arcref`` rules: extend the context
        with the hypothesis, match ``δ(label)`` against the node's
        neighbourhood, and cache the verdict (when it is definitive — see the
        class docstring) so shared sub-structures are validated once.
        """
        if self.schema is None:
            raise SchemaError("shape references need a schema-aware validation context")
        label = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
        self.stats.reference_checks += 1
        if self.is_confirmed(node, label):
            return MatchResult.success(ShapeTyping.single(node, label))
        if self.is_failed(node, label):
            return MatchResult.failure(f"{node.n3()} already failed shape {label}")
        if self.is_assumed(node, label):
            # coinductive hypothesis: assume the reference holds
            return MatchResult.success(ShapeTyping.single(node, label))
        provisional_deps = self._provisional.get((node, label))
        if provisional_deps is not None:
            # already validated in this run, conditional on in-progress
            # hypotheses: reuse the verdict and inherit every dependency.
            if self._frames:
                self._frames[-1].deps.update(provisional_deps)
            return MatchResult.success(ShapeTyping.single(node, label))
        if self._depth >= self.max_recursion_depth:
            # budget exhaustion is not a semantic verdict: poison the
            # enclosing frames so nothing derived from it gets cached.
            if self._frames:
                self._frames[-1].deps.add(_BUDGET_POISON)
            return MatchResult.failure(
                f"recursion depth limit ({self.max_recursion_depth}) exceeded "
                f"while validating {node.n3()} against {label}",
                limit_exceeded=True,
            )
        # the static fast path: decide the pair from the compiled tables
        # alone, before any matching frame is constructed.  Prefilter
        # decisions never consult hypotheses, so they are definitive —
        # cacheable and shareable — even in the middle of a recursion.
        decision = self.prefilter_check(node, label)
        if decision is not None:
            if decision.matched:
                return MatchResult.success(ShapeTyping.single(node, label))
            return MatchResult.failure(
                f"{node.n3()} does not match shape {label}: {decision.reason}"
            )
        expr = self.schema.expression(label)
        neighbourhood = self._neighbourhood_of(node)
        self._depth += 1
        frame = _Frame(node, label, self._depth)
        self._frames.append(frame)
        self.assume(node, label)
        try:
            result = self._matcher(expr, neighbourhood, self)
        except BaseException:
            # e.g. a backtracking budget exception: the frame disappears
            # without settling, so everything conditional on it is dropped.
            self._settle_failure(frame.depth)
            raise
        finally:
            self.retract(node, label)
            self._frames.pop()
            self._depth -= 1
        # the depths of enclosing hypotheses the verdict rests on; consulting
        # this frame's own hypothesis is fine (the coinductive knot being
        # tied) and is resolved right here.
        outer_deps = frame.deps - {frame.depth}
        definitive = not outer_deps
        if outer_deps and self._frames:
            # the verdict leans on assumptions owned by enclosing frames —
            # propagate the dependencies (and any budget poison) outwards.
            self._frames[-1].deps.update(outer_deps)
        if result.matched:
            typing = result.typing.add(node, label)
            if definitive:
                self.confirm(node, label)
                # this frame's hypothesis just proved out: resolve everything
                # that was conditional on it.
                for pending in self._settle_success(frame.depth, set()):
                    typing = typing.add(*pending)
            else:
                self._settle_success(frame.depth, outer_deps)
                if _BUDGET_POISON not in outer_deps:
                    # provisional: reusable within the run, conditional on
                    # every enclosing hypothesis it consulted.
                    self._park_provisional((node, label), set(outer_deps))
                # else: poisoned by the budget — return the verdict but
                # cache nothing.
            return MatchResult(True, typing, result.stats)
        # failure: provisional successes that assumed this frame's
        # hypothesis rested on an assumption that did not prove out.
        self._settle_failure(frame.depth)
        if definitive:
            self.record_failure(node, label)
        limit_hit = _BUDGET_POISON in outer_deps or result.limit_exceeded
        return MatchResult.failure(
            f"{node.n3()} does not match shape {label}: {result.reason}",
            result.stats,
            limit_exceeded=limit_hit,
        )

    # -- provisional-entry settlement --------------------------------------------
    def _park_provisional(self, pair: Tuple[ObjectTerm, ShapeLabel],
                          deps: Set[int]) -> None:
        """Record ``pair`` as provisionally valid, conditional on ``deps``."""
        self._provisional[pair] = deps
        for dep in deps:
            self._provisional_by_depth.setdefault(dep, set()).add(pair)

    def _unlink_provisional(self, pair: Tuple[ObjectTerm, ShapeLabel],
                            deps: Set[int]) -> None:
        """Remove ``pair`` from the inverse index for every depth in ``deps``."""
        for dep in deps:
            bucket = self._provisional_by_depth.get(dep)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self._provisional_by_depth[dep]

    def _settle_success(self, depth: int,
                        replacement: Set[int]) -> List[Tuple[ObjectTerm, ShapeLabel]]:
        """The frame at ``depth`` settled successfully: rewrite dependents.

        Every provisional entry depending on ``depth`` now depends on
        whatever that frame itself depended on (``replacement``).  Entries
        left with no dependencies are promoted to the confirmed cache and
        returned.  Only the frame's dependents are touched, through the
        inverse index.
        """
        promoted: List[Tuple[ObjectTerm, ShapeLabel]] = []
        dependents = self._provisional_by_depth.pop(depth, None)
        if not dependents:
            return promoted
        poisoned = _BUDGET_POISON in replacement
        for pair in dependents:
            deps = self._provisional.get(pair)
            if deps is None:
                continue
            deps.discard(depth)
            if poisoned:
                # poison never resolves; the entry can no longer settle.
                del self._provisional[pair]
                self._unlink_provisional(pair, deps)
                continue
            for dep in replacement:
                if dep not in deps:
                    deps.add(dep)
                    self._provisional_by_depth.setdefault(dep, set()).add(pair)
            if not deps:
                del self._provisional[pair]
                self.confirm(*pair)
                promoted.append(pair)
        return promoted

    def _settle_failure(self, depth: int) -> None:
        """The frame at ``depth`` failed (or vanished): drop its dependents."""
        dependents = self._provisional_by_depth.pop(depth, None)
        if not dependents:
            return
        for pair in dependents:
            deps = self._provisional.pop(pair, None)
            if deps is None:
                continue
            deps.discard(depth)
            self._unlink_provisional(pair, deps)
