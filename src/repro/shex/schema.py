"""Shape Expression Schemas ``(Λ, δ)`` and the typing context ``Γ``.

Section 8 of the paper extends regular shape expressions with labels: a
schema is a pair ``(Λ, δ)`` where ``δ`` maps each label to a regular shape
expression whose arcs may reference other labels (``@<Person>``).  Matching
then happens *under a context* ``Γ`` holding the typing hypotheses made so
far; the rule ``MatchShape`` adds ``n → l`` to the context before checking
``δ(l)`` against ``Σgₙ``, which is what makes recursive schemas (Example 13,
Example 14) terminate.

This module provides:

* :class:`Schema` — the ``(Λ, δ)`` pair with convenience constructors,
* :class:`ValidationContext` — the ``Γ`` object shared by both engines; it
  holds the graph, the schema, the hypothesis set and a pluggable
  ``neighbourhood matcher`` so the same recursion logic drives the
  derivative engine, the backtracking engine and any future engine.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, ObjectTerm, SubjectTerm, Triple
from .expressions import ShapeExpr, iter_subexpressions, referenced_labels
from .node_constraints import ShapeRef
from .results import MatchResult, MatchStats
from .typing import ShapeLabel, ShapeTyping

__all__ = ["Schema", "SchemaError", "ValidationContext", "NeighbourhoodMatcher"]


class SchemaError(Exception):
    """Raised for malformed schemas (unknown labels, missing start shape…)."""


#: Signature of the function both engines expose: match an expression against
#: a set of triples under a context, returning a :class:`MatchResult`.
NeighbourhoodMatcher = Callable[
    [ShapeExpr, FrozenSet[Triple], "ValidationContext"], MatchResult
]


class Schema:
    """A Shape Expression Schema: a finite set of labelled shape expressions."""

    def __init__(self, shapes: Mapping[ShapeLabel | str, ShapeExpr],
                 start: Optional[ShapeLabel | str] = None):
        self._shapes: Dict[ShapeLabel, ShapeExpr] = {}
        for label, expr in shapes.items():
            label = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
            if not isinstance(expr, ShapeExpr):
                raise SchemaError(f"shape {label} is not a ShapeExpr: {expr!r}")
            self._shapes[label] = expr
        if not self._shapes:
            raise SchemaError("a schema needs at least one shape")
        if start is not None:
            start = start if isinstance(start, ShapeLabel) else ShapeLabel(start)
            if start not in self._shapes:
                raise SchemaError(f"start shape {start} is not defined")
        self._start = start
        self._check_references()

    def _check_references(self) -> None:
        """Every ``@label`` reference must point at a defined shape."""
        for label, expr in self._shapes.items():
            for referenced in referenced_labels(expr):
                referenced = (referenced if isinstance(referenced, ShapeLabel)
                              else ShapeLabel(str(referenced)))
                if referenced not in self._shapes:
                    raise SchemaError(
                        f"shape {label} references undefined shape {referenced}"
                    )

    # -- accessors -------------------------------------------------------------
    @property
    def start(self) -> Optional[ShapeLabel]:
        """The start shape, if one was declared."""
        return self._start

    def labels(self) -> Iterator[ShapeLabel]:
        """Iterate over the labels ``Λ`` in sorted order."""
        return iter(sorted(self._shapes.keys()))

    def expression(self, label: ShapeLabel | str) -> ShapeExpr:
        """Return ``δ(label)``."""
        label = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
        try:
            return self._shapes[label]
        except KeyError:
            raise SchemaError(f"unknown shape label: {label}") from None

    def __contains__(self, label: object) -> bool:
        if isinstance(label, str):
            label = ShapeLabel(label)
        return label in self._shapes

    def __len__(self) -> int:
        return len(self._shapes)

    def items(self) -> Iterator[Tuple[ShapeLabel, ShapeExpr]]:
        """Iterate over ``(label, expression)`` pairs in label order."""
        for label in self.labels():
            yield label, self._shapes[label]

    def is_recursive(self) -> bool:
        """True if any shape can reach itself through ``@label`` references."""
        return any(label in self._reachable(label) for label in self._shapes)

    def dependencies(self, label: ShapeLabel | str) -> FrozenSet[ShapeLabel]:
        """Return the labels directly referenced by ``label``'s expression."""
        expr = self.expression(label)
        return frozenset(
            ref if isinstance(ref, ShapeLabel) else ShapeLabel(str(ref))
            for ref in referenced_labels(expr)
        )

    def _reachable(self, label: ShapeLabel) -> FrozenSet[ShapeLabel]:
        seen: Set[ShapeLabel] = set()
        frontier = list(self.dependencies(label))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.dependencies(current))
        return frozenset(seen)

    def __repr__(self) -> str:
        labels = ", ".join(str(label) for label in self.labels())
        return f"Schema([{labels}], start={self._start})"

    # -- construction helpers ---------------------------------------------------
    @classmethod
    def single(cls, label: ShapeLabel | str, expr: ShapeExpr) -> "Schema":
        """A schema with exactly one shape, also used as the start shape."""
        return cls({label: expr}, start=label)

    @classmethod
    def from_shexc(cls, text: str) -> "Schema":
        """Parse a schema written in the ShEx compact syntax."""
        from .shexc import parse_shexc

        return parse_shexc(text)

    def to_shexc(self) -> str:
        """Serialise the schema back to ShEx compact syntax."""
        from .shexc import serialize_shexc

        return serialize_shexc(self)


class ValidationContext:
    """The typing context ``Γ`` threaded through a validation run.

    The context records the *hypotheses*: the ``(node, label)`` pairs whose
    validation is currently in progress.  When an arc references a label and
    the object node is already hypothesised for that label, the reference is
    assumed to hold, which is exactly the coinductive reading of the
    ``MatchShape`` rule and guarantees termination on cyclic data
    (``:alice foaf:knows :bob . :bob foaf:knows :alice .``).

    The actual neighbourhood matching is delegated to the ``matcher``
    callable so the derivative and backtracking engines can share this class.
    """

    def __init__(self, graph: Graph, schema: Optional[Schema],
                 matcher: NeighbourhoodMatcher,
                 max_recursion_depth: int = 500):
        self.graph = graph
        self.schema = schema
        self._matcher = matcher
        self._hypotheses: Set[Tuple[ObjectTerm, ShapeLabel]] = set()
        self._confirmed = ShapeTyping.empty()
        self._failed: Set[Tuple[ObjectTerm, ShapeLabel]] = set()
        self.stats = MatchStats()
        self.max_recursion_depth = max_recursion_depth
        self._depth = 0

    # -- typing bookkeeping -----------------------------------------------------
    @property
    def typing(self) -> ShapeTyping:
        """The typing confirmed so far (``Γ.typing`` in the paper)."""
        return self._confirmed

    def assume(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Add the hypothesis ``node → label`` (the ``Γ{n → l}`` operation)."""
        self._hypotheses.add((node, label))

    def retract(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Drop a hypothesis after its validation finished."""
        self._hypotheses.discard((node, label))

    def is_assumed(self, node: ObjectTerm, label: ShapeLabel) -> bool:
        """True if ``node → label`` is currently hypothesised."""
        return (node, label) in self._hypotheses

    def confirm(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Record ``node → label`` as definitely established."""
        self._confirmed = self._confirmed.add(node, label)

    def record_failure(self, node: ObjectTerm, label: ShapeLabel) -> None:
        """Record that ``node`` definitely does not have shape ``label``."""
        self._failed.add((node, label))

    def is_confirmed(self, node: ObjectTerm, label: ShapeLabel) -> bool:
        """True if ``node → label`` has already been established."""
        return self._confirmed.has(node, label)

    def is_failed(self, node: ObjectTerm, label: ShapeLabel) -> bool:
        """True if ``node → label`` has already been refuted."""
        return (node, label) in self._failed

    # -- the MatchShape rule -----------------------------------------------------
    def check_reference(self, node: ObjectTerm, label: ShapeLabel | str) -> MatchResult:
        """Validate ``node`` against the shape named ``label``.

        Implements the ``MatchShape`` / ``Arcref`` rules: extend the context
        with the hypothesis, match ``δ(label)`` against the node's
        neighbourhood, and cache the verdict so shared sub-structures are
        validated once.
        """
        if self.schema is None:
            raise SchemaError("shape references need a schema-aware validation context")
        label = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
        self.stats.reference_checks += 1
        if self.is_confirmed(node, label):
            return MatchResult.success(ShapeTyping.single(node, label))
        if self.is_failed(node, label):
            return MatchResult.failure(f"{node.n3()} already failed shape {label}")
        if self.is_assumed(node, label):
            # coinductive hypothesis: assume the reference holds
            return MatchResult.success(ShapeTyping.single(node, label))
        if self._depth >= self.max_recursion_depth:
            return MatchResult.failure(
                f"recursion depth limit ({self.max_recursion_depth}) exceeded "
                f"while validating {node.n3()} against {label}"
            )
        expr = self.schema.expression(label)
        if isinstance(node, Literal):
            # literals have no outgoing arcs; they conform only to shapes
            # accepting the empty neighbourhood
            neighbourhood: FrozenSet[Triple] = frozenset()
        else:
            neighbourhood = self.graph.neighbourhood(node)
        self.assume(node, label)
        self._depth += 1
        try:
            result = self._matcher(expr, neighbourhood, self)
        finally:
            self._depth -= 1
            self.retract(node, label)
        if result.matched:
            self.confirm(node, label)
            typing = result.typing.add(node, label)
            return MatchResult(True, typing, result.stats)
        self.record_failure(node, label)
        return MatchResult.failure(
            f"{node.n3()} does not match shape {label}: {result.reason}",
            result.stats,
        )
