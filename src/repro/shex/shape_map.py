"""Shape maps: declaring which nodes should be validated against which shapes.

The paper validates "nodes against shapes"; in practice (and in the later
ShEx specifications) the association is written down as a *shape map*.  This
module implements the fixed and query-based shape maps users of a validator
need:

* **fixed** associations — ``<http://example.org/john>@<Person>``,
* **query** associations — ``{FOCUS rdf:type foaf:Person}@<Person>`` selects
  every node with a matching triple as the focus,
* programmatic construction from Python dictionaries.

A :class:`ShapeMap` resolves against a graph into concrete ``(node, label)``
pairs which are then fed to :meth:`repro.shex.validator.Validator.validate_map`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..rdf.errors import ParseError
from ..rdf.graph import Graph
from ..rdf.namespaces import NamespaceManager
from ..rdf.ntriples import unescape_string
from ..rdf.terms import IRI, Literal, ObjectTerm, SubjectTerm
from .typing import ShapeLabel

__all__ = [
    "ShapeMapEntry",
    "FixedEntry",
    "QueryEntry",
    "ShapeMap",
    "parse_shape_map",
]


class ShapeMapEntry:
    """Base class of shape map entries."""

    __slots__ = ()

    def resolve(self, graph: Graph) -> Iterator[Tuple[SubjectTerm, ShapeLabel]]:
        """Yield the concrete ``(node, label)`` pairs this entry selects."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedEntry(ShapeMapEntry):
    """A single node associated with a single shape label."""

    node: SubjectTerm
    label: ShapeLabel

    def resolve(self, graph: Graph) -> Iterator[Tuple[SubjectTerm, ShapeLabel]]:
        yield self.node, self.label

    def __str__(self) -> str:
        return f"{self.node.n3()}@<{self.label}>"


@dataclass(frozen=True)
class QueryEntry(ShapeMapEntry):
    """A triple-pattern selector: every matching focus node gets the shape.

    The pattern has exactly one ``FOCUS`` position (subject or object); the
    other positions are either concrete terms or the wildcard ``_``.
    """

    label: ShapeLabel
    focus_position: str                       # "subject" or "object"
    predicate: Optional[IRI] = None           # None = wildcard
    other: Optional[ObjectTerm] = None        # the non-focus position (None = wildcard)

    def __post_init__(self):
        if self.focus_position not in ("subject", "object"):
            raise ValueError("focus_position must be 'subject' or 'object'")

    def resolve(self, graph: Graph) -> Iterator[Tuple[SubjectTerm, ShapeLabel]]:
        seen = set()
        if self.focus_position == "subject":
            candidates = graph.triples(None, self.predicate, self.other)
            for triple in candidates:
                if triple.subject not in seen:
                    seen.add(triple.subject)
                    yield triple.subject, self.label
        else:
            subject = self.other if isinstance(self.other, (IRI,)) else None
            for triple in graph.triples(subject, self.predicate, None):
                node = triple.object
                if isinstance(node, Literal):
                    continue  # literals cannot be focus nodes of a shape
                if node not in seen:
                    seen.add(node)
                    yield node, self.label

    def __str__(self) -> str:
        def render(term, is_focus):
            if is_focus:
                return "FOCUS"
            if term is None:
                return "_"
            return term.n3()

        subject = render(self.other if self.focus_position == "object" else None,
                         self.focus_position == "subject")
        obj = render(self.other if self.focus_position == "subject" else None,
                     self.focus_position == "object")
        predicate = self.predicate.n3() if self.predicate is not None else "_"
        return f"{{{subject} {predicate} {obj}}}@<{self.label}>"


class ShapeMap:
    """An ordered collection of shape map entries."""

    def __init__(self, entries: Optional[Sequence[ShapeMapEntry]] = None):
        self._entries: List[ShapeMapEntry] = list(entries or [])

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_dict(cls, associations: Dict[SubjectTerm, Union[ShapeLabel, str]]) -> "ShapeMap":
        """Build a fixed shape map from ``{node: label}`` associations."""
        entries = [
            FixedEntry(node, label if isinstance(label, ShapeLabel) else ShapeLabel(label))
            for node, label in associations.items()
        ]
        return cls(entries)

    @classmethod
    def parse(cls, text: str,
              namespaces: Optional[NamespaceManager] = None) -> "ShapeMap":
        """Parse the textual shape map syntax (see :func:`parse_shape_map`)."""
        return parse_shape_map(text, namespaces)

    def add(self, entry: ShapeMapEntry) -> "ShapeMap":
        """Append an entry.  Returns ``self`` for chaining."""
        if not isinstance(entry, ShapeMapEntry):
            raise TypeError("expected a ShapeMapEntry")
        self._entries.append(entry)
        return self

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ShapeMapEntry]:
        return iter(self._entries)

    def __str__(self) -> str:
        return ",\n".join(str(entry) for entry in self._entries)

    # -- resolution --------------------------------------------------------------
    def resolve(self, graph: Graph) -> Dict[SubjectTerm, ShapeLabel]:
        """Resolve every entry against ``graph``.

        Later entries win when two entries select the same node (mirroring
        the "last association wins" convention of fixed maps); the result is
        directly usable by ``Validator.validate_map``.
        """
        associations: Dict[SubjectTerm, ShapeLabel] = {}
        for entry in self._entries:
            for node, label in entry.resolve(graph):
                associations[node] = label
        return associations


# ------------------------------------------------------------------------ text syntax
_ENTRY_RE = re.compile(r"\s*(?P<selector><[^>]*>|_:[A-Za-z0-9_.-]+|\{[^}]*\}|[A-Za-z][\w-]*:[\w.-]*)"
                       r"\s*@\s*(?P<label><[^>]*>|[A-Za-z][\w-]*:[\w.-]*|[A-Za-z][\w.-]*)\s*$")
_QUERY_RE = re.compile(r"^\{\s*(?P<subject>\S+)\s+(?P<predicate>\S+)\s+(?P<object>.+?)\s*\}$")


def _parse_term(token: str, namespaces: NamespaceManager):
    token = token.strip()
    if token == "_":
        return None
    if token == "FOCUS":
        return "FOCUS"
    if token.startswith("<") and token.endswith(">"):
        return IRI(unescape_string(token[1:-1]))
    if token.startswith("_:"):
        from ..rdf.terms import BNode

        return BNode(token[2:])
    if token.startswith('"'):
        match = re.match(r'^"((?:[^"\\]|\\.)*)"(?:@([A-Za-z-]+)|\^\^(\S+))?$', token)
        if not match:
            raise ParseError(f"cannot parse literal in shape map: {token!r}")
        lexical = unescape_string(match.group(1))
        if match.group(2):
            return Literal(lexical, lang=match.group(2))
        if match.group(3):
            return Literal(lexical, datatype=_parse_term(match.group(3), namespaces))
        return Literal(lexical)
    if ":" in token:
        return namespaces.expand(token)
    raise ParseError(f"cannot parse shape map term: {token!r}")


def _parse_label(token: str, namespaces: NamespaceManager) -> ShapeLabel:
    token = token.strip()
    if token.startswith("<") and token.endswith(">"):
        return ShapeLabel(token[1:-1])
    if ":" in token:
        return ShapeLabel(namespaces.expand(token).value)
    return ShapeLabel(token)


def parse_shape_map(text: str,
                    namespaces: Optional[NamespaceManager] = None) -> ShapeMap:
    """Parse the comma/newline separated shape map syntax.

    Supported entry forms::

        <http://example.org/john>@<Person>
        ex:john@ex:PersonShape
        _:b1@<Person>
        {FOCUS foaf:knows _}@<Person>
        {_ foaf:knows FOCUS}@<Person>

    ``namespaces`` supplies the prefix bindings used to expand prefixed names
    (defaults to the common vocabularies).
    """
    namespaces = namespaces or NamespaceManager(bind_defaults=True)
    shape_map = ShapeMap()
    # split on commas and newlines, but not inside { } or < >
    entries = _split_entries(text)
    for raw_entry in entries:
        if not raw_entry.strip():
            continue
        match = _ENTRY_RE.match(raw_entry)
        if not match:
            raise ParseError(f"cannot parse shape map entry: {raw_entry.strip()!r}")
        selector = match.group("selector").strip()
        label = _parse_label(match.group("label"), namespaces)
        if selector.startswith("{"):
            shape_map.add(_parse_query_selector(selector, label, namespaces))
        else:
            node = _parse_term(selector, namespaces)
            if node is None or node == "FOCUS":
                raise ParseError(f"invalid focus node in shape map: {selector!r}")
            shape_map.add(FixedEntry(node, label))
    return shape_map


def _split_entries(text: str) -> List[str]:
    entries: List[str] = []
    current: List[str] = []
    depth = 0
    for char in text:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
        if char in ",\n" and depth == 0:
            entries.append("".join(current))
            current = []
        else:
            current.append(char)
    entries.append("".join(current))
    return entries


def _parse_query_selector(selector: str, label: ShapeLabel,
                          namespaces: NamespaceManager) -> QueryEntry:
    match = _QUERY_RE.match(selector)
    if not match:
        raise ParseError(f"cannot parse query selector: {selector!r}")
    subject = _parse_term(match.group("subject"), namespaces)
    predicate = _parse_term(match.group("predicate"), namespaces)
    obj = _parse_term(match.group("object"), namespaces)
    if predicate == "FOCUS":
        raise ParseError("FOCUS cannot appear in the predicate position")
    if subject == "FOCUS" and obj == "FOCUS":
        raise ParseError("only one FOCUS position is allowed")
    if subject == "FOCUS":
        return QueryEntry(label=label, focus_position="subject",
                          predicate=predicate, other=obj)
    if obj == "FOCUS":
        return QueryEntry(label=label, focus_position="object",
                          predicate=predicate, other=subject)
    raise ParseError("a query selector needs a FOCUS position")
