"""ShEx compact syntax (ShExC) parser and serialiser.

The paper presents its schemas in the compact syntax (Examples 1, 6, 13, 14)::

    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>

    <Person> {
      foaf:age   xsd:integer ,
      foaf:name  xsd:string + ,
      foaf:knows @<Person> *
    }

This module translates that syntax into :class:`~repro.shex.schema.Schema`
objects built from the regular shape expression algebra, and back.  The
grammar supported covers the subset the paper needs plus the extensions used
by the workloads:

* ``PREFIX``/``BASE`` directives and ``start = @<Label>``,
* triple constraints ``predicate valueExpr cardinality`` with cardinalities
  ``*``, ``+``, ``?``, ``{m}``, ``{m,n}`` and ``{m,}``,
* groups ``( … )`` with their own cardinality,
* ``,`` and ``;`` as unordered-concatenation separators and ``|`` for
  alternatives,
* value expressions: ``.``, datatypes, ``@label`` references, node kinds
  (``IRI``, ``BNODE``, ``LITERAL``, ``NONLITERAL``), value sets ``[ … ]``
  with IRIs, literals and stems (``<http://ex.org/>~``), and numeric/string
  facets (``MININCLUSIVE``, ``MAXLENGTH``, ``PATTERN`` …).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..rdf.errors import ParseError
from ..rdf.namespaces import NamespaceManager, XSD
from ..rdf.ntriples import unescape_string
from ..rdf.terms import IRI, Literal
from .expressions import (
    EPSILON,
    And,
    Arc,
    EmptyTriples,
    Or,
    ShapeExpr,
    Star,
    interleave,
    optional,
    plus,
    repeat,
    star,
)
from .node_constraints import (
    AnyValue,
    DatatypeConstraint,
    Facets,
    IRIStem,
    LanguageTag,
    NodeConstraint,
    NodeKind,
    NodeKindConstraint,
    PredicateSet,
    ShapeRef,
    ValueSet,
)
from .schema import Schema
from .typing import ShapeLabel

__all__ = ["parse_shexc", "serialize_shexc", "ShExCParser", "ShExCSerializer"]


_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")

_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("PREFIX_KW", r"(?i:PREFIX)\b"),
    ("BASE_KW", r"(?i:BASE)\b"),
    ("START_KW", r"(?i:start)\b(?=\s*=)"),
    ("NODEKIND", r"(?:IRI|BNODE|LITERAL|NONLITERAL)\b"),
    ("FACET_KW", r"(?i:MININCLUSIVE|MAXINCLUSIVE|MINEXCLUSIVE|MAXEXCLUSIVE|"
                 r"MINLENGTH|MAXLENGTH|LENGTH|PATTERN)\b"),
    ("IRIREF", r"<[^\x00-\x20<>\"{}|^`\\]*>"),
    ("STRING", r'"(?:[^"\\\n\r]|\\.)*"' + r"|'(?:[^'\\\n\r]|\\.)*'"),
    ("LANGTAG", r"@[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*(?![\w:])"),
    ("AT", r"@"),
    ("DOUBLE_CARET", r"\^\^"),
    ("DOUBLE", r"[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+)"),
    ("DECIMAL", r"[+-]?\d*\.\d+"),
    ("REPEAT", r"\{\s*\d+\s*(?:,\s*(?:\d+|\*)?\s*)?\}"),
    ("INTEGER", r"[+-]?\d+"),
    ("PNAME", r"(?:[A-Za-z][\w.-]*)?:[\w.-]*(?<!\.)|(?:[A-Za-z][\w.-]*)?:"),
    ("KEYWORD_A", r"a(?=[ \t\r\n])"),
    ("BOOLEAN", r"\b(?:true|false)\b"),
    ("TILDE", r"~"),
    ("EQUALS", r"="),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("PIPE", r"\|"),
    ("STAR", r"\*"),
    ("PLUS", r"\+"),
    ("QUESTION", r"\?"),
    ("DOT", r"\."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise ParseError(f"unexpected character {text[pos]!r}",
                             line, pos - line_start + 1)
        kind = match.lastgroup
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, value, line, pos - line_start + 1))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()
    tokens.append(_Token("EOF", "", line, pos - line_start + 1))
    return tokens


class ShExCParser:
    """Recursive-descent parser for the ShEx compact syntax subset."""

    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._index = 0
        self._namespaces = NamespaceManager(bind_defaults=False)
        self._base = ""
        self._shapes: Dict[ShapeLabel, ShapeExpr] = {}
        self._start: Optional[ShapeLabel] = None

    # -- token helpers -----------------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.kind} ({token.value!r})",
                             token.line, token.column)
        return self._next()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"{message} (found {token.value!r})", token.line, token.column)

    # -- entry point --------------------------------------------------------------
    def parse(self) -> Schema:
        """Parse the document and return the schema."""
        while self._peek().kind != "EOF":
            token = self._peek()
            if token.kind == "PREFIX_KW":
                self._parse_prefix()
            elif token.kind == "BASE_KW":
                self._parse_base()
            elif token.kind == "START_KW":
                self._parse_start()
            else:
                self._parse_shape_definition()
        if not self._shapes:
            raise ParseError("the schema does not define any shape")
        start = self._start
        if start is None and len(self._shapes) == 1:
            start = next(iter(self._shapes))
        return Schema(self._shapes, start=start)

    # -- directives ---------------------------------------------------------------
    def _parse_prefix(self) -> None:
        self._next()
        pname = self._expect("PNAME")
        if not pname.value.endswith(":"):
            raise ParseError("prefix declarations must end with ':'",
                             pname.line, pname.column)
        iri = self._expect("IRIREF")
        self._namespaces.bind(pname.value[:-1], iri.value[1:-1])

    def _parse_base(self) -> None:
        self._next()
        iri = self._expect("IRIREF")
        self._base = iri.value[1:-1]

    def _parse_start(self) -> None:
        self._next()
        self._expect("EQUALS")
        self._expect("AT")
        self._start = self._parse_shape_label()

    # -- shapes ------------------------------------------------------------------
    def _parse_shape_label(self) -> ShapeLabel:
        token = self._peek()
        if token.kind == "IRIREF":
            self._next()
            return ShapeLabel(self._resolve_iri(token.value[1:-1]))
        if token.kind == "PNAME":
            self._next()
            return ShapeLabel(self._expand_pname(token).value)
        raise self._error("expected a shape label (IRI or prefixed name)")

    def _parse_shape_definition(self) -> None:
        label = self._parse_shape_label()
        self._expect("LBRACE")
        if self._peek().kind == "RBRACE":
            expr: ShapeExpr = EPSILON
        else:
            expr = self._parse_one_of()
        self._expect("RBRACE")
        if label in self._shapes:
            raise ParseError(f"shape {label} is defined twice")
        self._shapes[label] = expr

    # -- triple expressions ----------------------------------------------------------
    def _parse_one_of(self) -> ShapeExpr:
        """oneOf: eachOf ('|' eachOf)*"""
        expr = self._parse_each_of()
        while self._peek().kind == "PIPE":
            self._next()
            right = self._parse_each_of()
            expr = Or(expr, right)
        return expr

    def _parse_each_of(self) -> ShapeExpr:
        """eachOf: unary ((',' | ';') unary)*"""
        expr = self._parse_unary()
        while self._peek().kind in ("COMMA", "SEMICOLON"):
            self._next()
            if self._peek().kind in ("RBRACE", "RPAREN"):
                break  # trailing separator
            right = self._parse_unary()
            expr = interleave(expr, right)
        return expr

    def _parse_unary(self) -> ShapeExpr:
        token = self._peek()
        if token.kind == "LPAREN":
            self._next()
            inner = self._parse_one_of()
            self._expect("RPAREN")
            return self._apply_cardinality(inner)
        return self._parse_triple_constraint()

    def _parse_triple_constraint(self) -> ShapeExpr:
        predicate = self._parse_predicate()
        constraint = self._parse_value_expression()
        expr = Arc(PredicateSet.single(predicate), constraint)
        return self._apply_cardinality(expr)

    def _parse_predicate(self) -> IRI:
        token = self._peek()
        if token.kind == "KEYWORD_A":
            self._next()
            return _RDF_TYPE
        if token.kind == "IRIREF":
            self._next()
            return IRI(self._resolve_iri(token.value[1:-1]))
        if token.kind == "PNAME":
            self._next()
            return self._expand_pname(token)
        raise self._error("expected a predicate")

    def _apply_cardinality(self, expr: ShapeExpr) -> ShapeExpr:
        token = self._peek()
        if token.kind == "STAR":
            self._next()
            return star(expr)
        if token.kind == "PLUS":
            self._next()
            return plus(expr)
        if token.kind == "QUESTION":
            self._next()
            return optional(expr)
        if token.kind == "REPEAT":
            self._next()
            minimum, maximum = _parse_repeat_bounds(token.value)
            return repeat(expr, minimum, maximum)
        return expr

    # -- value expressions -------------------------------------------------------------
    def _parse_value_expression(self) -> NodeConstraint:
        token = self._peek()
        constraint: NodeConstraint
        if token.kind == "DOT":
            self._next()
            constraint = AnyValue()
        elif token.kind == "AT":
            self._next()
            label = self._parse_shape_label()
            return ShapeRef(label)
        elif token.kind == "NODEKIND":
            self._next()
            kind = {
                "IRI": NodeKind.IRI,
                "BNODE": NodeKind.BNODE,
                "LITERAL": NodeKind.LITERAL,
                "NONLITERAL": NodeKind.NONLITERAL,
            }[token.value]
            constraint = NodeKindConstraint(kind, self._parse_facets())
        elif token.kind == "LBRACKET":
            constraint = self._parse_value_set()
        elif token.kind in ("IRIREF", "PNAME"):
            datatype_iri = self._parse_predicate()
            constraint = DatatypeConstraint(datatype_iri, self._parse_facets())
        elif token.kind == "LANGTAG":
            self._next()
            constraint = LanguageTag(token.value[1:])
        else:
            raise self._error("expected a value expression")
        return constraint

    def _parse_facets(self) -> Facets:
        values: Dict[str, object] = {}
        mapping = {
            "MININCLUSIVE": "min_inclusive",
            "MAXINCLUSIVE": "max_inclusive",
            "MINEXCLUSIVE": "min_exclusive",
            "MAXEXCLUSIVE": "max_exclusive",
            "MINLENGTH": "min_length",
            "MAXLENGTH": "max_length",
            "LENGTH": "length",
            "PATTERN": "pattern",
        }
        while self._peek().kind == "FACET_KW":
            keyword = self._next().value.upper()
            field = mapping[keyword]
            token = self._next()
            if field == "pattern":
                if token.kind != "STRING":
                    raise ParseError("PATTERN expects a string argument",
                                     token.line, token.column)
                values[field] = unescape_string(token.value[1:-1])
            else:
                if token.kind not in ("INTEGER", "DECIMAL", "DOUBLE"):
                    raise ParseError(f"{keyword} expects a numeric argument",
                                     token.line, token.column)
                number = float(token.value)
                if field in ("min_length", "max_length", "length"):
                    values[field] = int(number)
                else:
                    values[field] = number
        return Facets(**values)

    def _parse_value_set(self) -> NodeConstraint:
        self._expect("LBRACKET")
        values = []
        stems: List[IRIStem] = []
        while self._peek().kind != "RBRACKET":
            token = self._peek()
            if token.kind == "IRIREF":
                self._next()
                iri_value = self._resolve_iri(token.value[1:-1])
                if self._peek().kind == "TILDE":
                    self._next()
                    stems.append(IRIStem(iri_value))
                else:
                    values.append(IRI(iri_value))
            elif token.kind == "PNAME":
                self._next()
                iri = self._expand_pname(token)
                if self._peek().kind == "TILDE":
                    self._next()
                    stems.append(IRIStem(iri.value))
                else:
                    values.append(iri)
            elif token.kind in ("INTEGER", "DECIMAL", "DOUBLE", "BOOLEAN", "STRING"):
                values.append(self._parse_literal())
            else:
                raise self._error("unexpected token in value set")
        self._expect("RBRACKET")
        members: List[NodeConstraint] = []
        if values:
            members.append(ValueSet(values))
        members.extend(stems)
        if not members:
            raise self._error("empty value set")
        if len(members) == 1:
            return members[0]
        from .node_constraints import ConstraintOr

        return ConstraintOr(members)

    def _parse_literal(self) -> Literal:
        token = self._next()
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=XSD.integer)
        if token.kind == "DECIMAL":
            return Literal(token.value, datatype=XSD.decimal)
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=XSD.double)
        if token.kind == "BOOLEAN":
            return Literal(token.value, datatype=XSD.boolean)
        lexical = unescape_string(token.value[1:-1])
        nxt = self._peek()
        if nxt.kind == "LANGTAG":
            self._next()
            return Literal(lexical, lang=nxt.value[1:])
        if nxt.kind == "DOUBLE_CARET":
            self._next()
            datatype_iri = self._parse_predicate()
            return Literal(lexical, datatype=datatype_iri)
        return Literal(lexical)

    # -- names -------------------------------------------------------------------
    def _expand_pname(self, token: _Token) -> IRI:
        prefix, _, local = token.value.partition(":")
        try:
            namespace = self._namespaces.namespace(prefix)
        except Exception:
            raise ParseError(f"unknown prefix {prefix!r}",
                             token.line, token.column) from None
        return IRI(namespace.base + local)

    def _resolve_iri(self, value: str) -> str:
        if not self._base or re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", value):
            return value
        return self._base + value


def _parse_repeat_bounds(text: str) -> Tuple[int, Optional[int]]:
    """Parse ``{m}``, ``{m,n}``, ``{m,}`` or ``{m,*}`` into ``(m, n-or-None)``."""
    inner = text.strip()[1:-1].replace(" ", "")
    if "," not in inner:
        count = int(inner)
        return count, count
    minimum_text, maximum_text = inner.split(",", 1)
    minimum = int(minimum_text)
    if maximum_text in ("", "*"):
        return minimum, None
    return minimum, int(maximum_text)


def parse_shexc(text: str) -> Schema:
    """Parse a ShExC document into a :class:`~repro.shex.schema.Schema`."""
    return ShExCParser(text).parse()


# -------------------------------------------------------------------------- serialiser
class ShExCSerializer:
    """Serialise a :class:`Schema` back to compact syntax.

    The regular shape expression algebra has already expanded the derived
    operators, so the serialiser re-detects the common patterns (``E+``,
    ``E?``) to keep the output readable.  Schemas that round-trip through
    :func:`parse_shexc` ∘ :func:`serialize_shexc` are semantically equivalent
    even when the concrete cardinality syntax differs.
    """

    def __init__(self, schema: Schema):
        self._schema = schema
        self._namespaces = NamespaceManager(bind_defaults=True)

    def serialize(self) -> str:
        lines: List[str] = []
        prefixes_used = set()
        body_blocks: List[str] = []
        if self._schema.start is not None:
            body_blocks.append(f"start = @<{self._schema.start}>")
        for label, expr in self._schema.items():
            rendered = self._render_expression(expr, prefixes_used)
            body_blocks.append(f"<{label}> {{\n  {rendered}\n}}")
        for prefix, base in sorted(self._namespaces.prefixes()):
            if prefix in prefixes_used:
                lines.append(f"PREFIX {prefix}: <{base}>")
        if lines:
            lines.append("")
        lines.extend(body_blocks)
        return "\n".join(lines) + "\n"

    # -- expressions -----------------------------------------------------------
    def _render_expression(self, expr: ShapeExpr, prefixes_used: set) -> str:
        if isinstance(expr, EmptyTriples):
            return ""
        return self._render(expr, prefixes_used)

    def _render(self, expr: ShapeExpr, prefixes_used: set) -> str:
        plus_body = _detect_plus(expr)
        if plus_body is not None:
            return self._render_with_cardinality(plus_body, "+", prefixes_used)
        optional_body = _detect_optional(expr)
        if optional_body is not None:
            return self._render_with_cardinality(optional_body, "?", prefixes_used)
        if isinstance(expr, Star):
            return self._render_with_cardinality(expr.expr, "*", prefixes_used)
        if isinstance(expr, And):
            return (f"{self._render(expr.left, prefixes_used)} ; "
                    f"{self._render(expr.right, prefixes_used)}")
        if isinstance(expr, Or):
            return (f"( {self._render(expr.left, prefixes_used)} | "
                    f"{self._render(expr.right, prefixes_used)} )")
        if isinstance(expr, Arc):
            return self._render_arc(expr, prefixes_used)
        if isinstance(expr, EmptyTriples):
            return "( )"
        raise TypeError(f"cannot serialise {expr!r} to ShExC")

    def _render_with_cardinality(self, body: ShapeExpr, cardinality: str,
                                 prefixes_used: set) -> str:
        if isinstance(body, Arc):
            return f"{self._render_arc(body, prefixes_used)} {cardinality}"
        return f"( {self._render(body, prefixes_used)} ) {cardinality}"

    def _render_arc(self, expr: Arc, prefixes_used: set) -> str:
        predicate = expr.predicate.sample()
        if predicate is None:
            raise TypeError("cannot serialise wildcard predicate sets to ShExC")
        predicate_text = self._compact(predicate, prefixes_used)
        constraint = expr.object
        if isinstance(constraint, ShapeRef):
            return f"{predicate_text} @<{constraint.label}>"
        if isinstance(constraint, AnyValue):
            return f"{predicate_text} ."
        if isinstance(constraint, DatatypeConstraint):
            text = f"{predicate_text} {self._compact(constraint.datatype, prefixes_used)}"
            return text + _render_facets(constraint.facets)
        if isinstance(constraint, NodeKindConstraint):
            return f"{predicate_text} {constraint.kind.upper()}" + _render_facets(constraint.facets)
        if isinstance(constraint, LanguageTag):
            return f"{predicate_text} @{constraint.tag}"
        if isinstance(constraint, ValueSet):
            values = " ".join(self._value_text(value, prefixes_used)
                              for value in constraint)
            return f"{predicate_text} [ {values} ]"
        if isinstance(constraint, IRIStem):
            return f"{predicate_text} [ <{constraint.stem}>~ ]"
        raise TypeError(f"cannot serialise constraint {constraint!r} to ShExC")

    def _value_text(self, value, prefixes_used: set) -> str:
        if isinstance(value, IRI):
            return self._compact(value, prefixes_used)
        if isinstance(value, Literal):
            if value.datatype == XSD.integer:
                return value.lexical
            if value.lang:
                return f'"{value.lexical}"@{value.lang}'
            if value.is_plain:
                return f'"{value.lexical}"'
            return f'"{value.lexical}"^^{self._compact(value.datatype, prefixes_used)}'
        return value.n3()

    def _compact(self, iri: IRI, prefixes_used: set) -> str:
        compact = self._namespaces.compact(iri)
        if compact:
            prefixes_used.add(compact.split(":", 1)[0])
            return compact
        return iri.n3()


def _render_facets(facets: Facets) -> str:
    if facets.is_trivial():
        return ""
    parts = []
    mapping = [
        ("min_inclusive", "MININCLUSIVE"), ("max_inclusive", "MAXINCLUSIVE"),
        ("min_exclusive", "MINEXCLUSIVE"), ("max_exclusive", "MAXEXCLUSIVE"),
        ("min_length", "MINLENGTH"), ("max_length", "MAXLENGTH"),
        ("length", "LENGTH"),
    ]
    for attribute, keyword in mapping:
        value = getattr(facets, attribute)
        if value is not None:
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            parts.append(f"{keyword} {value}")
    if facets.pattern is not None:
        escaped = facets.pattern.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'PATTERN "{escaped}"')
    return " " + " ".join(parts)


def _detect_plus(expr: ShapeExpr) -> Optional[ShapeExpr]:
    """Recognise ``E ‖ E*`` (the expansion of ``E+``)."""
    if isinstance(expr, And) and isinstance(expr.right, Star) and expr.right.expr == expr.left:
        return expr.left
    if isinstance(expr, And) and isinstance(expr.left, Star) and expr.left.expr == expr.right:
        return expr.right
    return None


def _detect_optional(expr: ShapeExpr) -> Optional[ShapeExpr]:
    """Recognise ``E | ε`` (the expansion of ``E?``)."""
    if isinstance(expr, Or) and isinstance(expr.right, EmptyTriples):
        return expr.left
    if isinstance(expr, Or) and isinstance(expr.left, EmptyTriples):
        return expr.right
    return None


def serialize_shexc(schema: Schema) -> str:
    """Serialise ``schema`` to ShEx compact syntax."""
    return ShExCSerializer(schema).serialize()
