"""JSON interchange format for schemas (a ShExJ-inspired representation).

Schemas can be exported to plain dictionaries (and therefore JSON) and
reconstructed from them.  The format follows the spirit of ShExJ: every
expression node is a dictionary with a ``type`` field.  It is used by the
examples to persist schemas and by tests as an additional round-trip check on
the expression algebra.
"""

from __future__ import annotations

from typing import Any, Dict

from ..rdf.terms import BNode, IRI, Literal
from .expressions import (
    EPSILON,
    And,
    Arc,
    Empty,
    EmptyTriples,
    Or,
    ShapeExpr,
    Star,
)
from .node_constraints import (
    AnyValue,
    ConstraintAnd,
    ConstraintNot,
    ConstraintOr,
    DatatypeConstraint,
    Facets,
    IRIStem,
    LanguageTag,
    NodeConstraint,
    NodeKindConstraint,
    PredicateSet,
    ShapeRef,
    ValueSet,
)
from .schema import Schema
from .typing import ShapeLabel

__all__ = ["schema_to_dict", "schema_from_dict", "expression_to_dict", "expression_from_dict"]


# ------------------------------------------------------------------------ terms
def _term_to_dict(term) -> Dict[str, Any]:
    if isinstance(term, IRI):
        return {"type": "iri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "id": term.id}
    if isinstance(term, Literal):
        out: Dict[str, Any] = {"type": "literal", "value": term.lexical}
        if term.lang:
            out["language"] = term.lang
        else:
            out["datatype"] = term.datatype.value
        return out
    raise TypeError(f"cannot serialise term {term!r}")


def _term_from_dict(data: Dict[str, Any]):
    kind = data["type"]
    if kind == "iri":
        return IRI(data["value"])
    if kind == "bnode":
        return BNode(data["id"])
    if kind == "literal":
        if "language" in data:
            return Literal(data["value"], lang=data["language"])
        return Literal(data["value"], datatype=IRI(data["datatype"]))
    raise ValueError(f"unknown term type: {kind!r}")


# ------------------------------------------------------------------- constraints
def _facets_to_dict(facets: Facets) -> Dict[str, Any]:
    out = {}
    for name in ("min_inclusive", "max_inclusive", "min_exclusive", "max_exclusive",
                 "min_length", "max_length", "length", "pattern"):
        value = getattr(facets, name)
        if value is not None:
            out[name] = value
    return out


def _constraint_to_dict(constraint: NodeConstraint) -> Dict[str, Any]:
    if isinstance(constraint, AnyValue):
        return {"type": "Wildcard"}
    if isinstance(constraint, ValueSet):
        return {"type": "ValueSet",
                "values": [_term_to_dict(value) for value in constraint]}
    if isinstance(constraint, DatatypeConstraint):
        out = {"type": "Datatype", "datatype": constraint.datatype.value}
        facets = _facets_to_dict(constraint.facets)
        if facets:
            out["facets"] = facets
        return out
    if isinstance(constraint, NodeKindConstraint):
        out = {"type": "NodeKind", "kind": constraint.kind}
        facets = _facets_to_dict(constraint.facets)
        if facets:
            out["facets"] = facets
        return out
    if isinstance(constraint, IRIStem):
        return {"type": "IriStem", "stem": constraint.stem}
    if isinstance(constraint, LanguageTag):
        return {"type": "Language", "tag": constraint.tag}
    if isinstance(constraint, ShapeRef):
        return {"type": "ShapeRef", "reference": str(constraint.label)}
    if isinstance(constraint, ConstraintAnd):
        return {"type": "ConstraintAnd",
                "operands": [_constraint_to_dict(op) for op in constraint.operands]}
    if isinstance(constraint, ConstraintOr):
        return {"type": "ConstraintOr",
                "operands": [_constraint_to_dict(op) for op in constraint.operands]}
    if isinstance(constraint, ConstraintNot):
        return {"type": "ConstraintNot", "operand": _constraint_to_dict(constraint.operand)}
    raise TypeError(f"cannot serialise constraint {constraint!r}")


def _constraint_from_dict(data: Dict[str, Any]) -> NodeConstraint:
    kind = data["type"]
    if kind == "Wildcard":
        return AnyValue()
    if kind == "ValueSet":
        return ValueSet([_term_from_dict(value) for value in data["values"]])
    if kind == "Datatype":
        return DatatypeConstraint(IRI(data["datatype"]),
                                  Facets(**data.get("facets", {})))
    if kind == "NodeKind":
        return NodeKindConstraint(data["kind"], Facets(**data.get("facets", {})))
    if kind == "IriStem":
        return IRIStem(data["stem"])
    if kind == "Language":
        return LanguageTag(data["tag"])
    if kind == "ShapeRef":
        return ShapeRef(ShapeLabel(data["reference"]))
    if kind == "ConstraintAnd":
        return ConstraintAnd([_constraint_from_dict(op) for op in data["operands"]])
    if kind == "ConstraintOr":
        return ConstraintOr([_constraint_from_dict(op) for op in data["operands"]])
    if kind == "ConstraintNot":
        return ConstraintNot(_constraint_from_dict(data["operand"]))
    raise ValueError(f"unknown constraint type: {kind!r}")


def _predicate_set_to_dict(predicates: PredicateSet) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    if predicates.any_predicate:
        out["any"] = True
    if predicates.predicates:
        out["predicates"] = sorted(p.value for p in predicates.predicates)
    if predicates.stem is not None:
        out["stem"] = predicates.stem
    return out


def _predicate_set_from_dict(data: Dict[str, Any]) -> PredicateSet:
    return PredicateSet(
        predicates=[IRI(value) for value in data.get("predicates", [])],
        stem=data.get("stem"),
        any_predicate=data.get("any", False),
    )


# ------------------------------------------------------------------ expressions
def expression_to_dict(expr: ShapeExpr) -> Dict[str, Any]:
    """Convert a shape expression to a JSON-friendly dictionary."""
    if isinstance(expr, Empty):
        return {"type": "Empty"}
    if isinstance(expr, EmptyTriples):
        return {"type": "Epsilon"}
    if isinstance(expr, Arc):
        return {
            "type": "Arc",
            "predicate": _predicate_set_to_dict(expr.predicate),
            "object": _constraint_to_dict(expr.object),
        }
    if isinstance(expr, Star):
        return {"type": "Star", "expression": expression_to_dict(expr.expr)}
    if isinstance(expr, And):
        return {"type": "And",
                "left": expression_to_dict(expr.left),
                "right": expression_to_dict(expr.right)}
    if isinstance(expr, Or):
        return {"type": "Or",
                "left": expression_to_dict(expr.left),
                "right": expression_to_dict(expr.right)}
    raise TypeError(f"cannot serialise expression {expr!r}")


def expression_from_dict(data: Dict[str, Any]) -> ShapeExpr:
    """Rebuild a shape expression from its dictionary form."""
    kind = data["type"]
    if kind == "Empty":
        from .expressions import EMPTY

        return EMPTY
    if kind == "Epsilon":
        return EPSILON
    if kind == "Arc":
        return Arc(_predicate_set_from_dict(data["predicate"]),
                   _constraint_from_dict(data["object"]))
    if kind == "Star":
        return Star(expression_from_dict(data["expression"]))
    if kind == "And":
        return And(expression_from_dict(data["left"]), expression_from_dict(data["right"]))
    if kind == "Or":
        return Or(expression_from_dict(data["left"]), expression_from_dict(data["right"]))
    raise ValueError(f"unknown expression type: {kind!r}")


# ----------------------------------------------------------------------- schemas
def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Convert a schema to a JSON-friendly dictionary."""
    return {
        "type": "Schema",
        "start": str(schema.start) if schema.start is not None else None,
        "shapes": {
            str(label): expression_to_dict(expr) for label, expr in schema.items()
        },
    }


def schema_from_dict(data: Dict[str, Any]) -> Schema:
    """Rebuild a schema from its dictionary form."""
    if data.get("type") != "Schema":
        raise ValueError("not a schema dictionary")
    shapes = {
        ShapeLabel(name): expression_from_dict(expr)
        for name, expr in data.get("shapes", {}).items()
    }
    return Schema(shapes, start=data.get("start"))
