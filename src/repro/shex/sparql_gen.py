"""Compiling shape expressions to SPARQL queries (Section 3 of the paper).

The paper's Example 4 shows the Person shape hand-compiled into a SPARQL ASK
query built from counting sub-SELECTs: for every declared predicate the query
checks that

* the number of arcs using that predicate is within the declared cardinality
  bounds, and
* every one of those arcs satisfies the declared value constraint (the two
  counts are equal).

This module automates that translation for the *flattenable* fragment of
regular shape expressions — interleaves of single-predicate arcs with
cardinalities, which covers every non-recursive shape in the paper.  It also
enforces the closed-world reading of shapes (the node must not carry arcs
with undeclared predicates), matching the semantics of ``Σgₙ ∈ Sₙ[[e]]``.

Recursive shapes (``@<Person>`` references back into the schema) cannot be
expressed in plain SPARQL, which is exactly the limitation Section 3 points
out; the compiler raises :class:`SparqlCompilationError` for them unless the
reference is approximated by a node-kind check (``approximate_references``).

The :class:`SparqlEngine` adapter evaluates the generated queries with
:mod:`repro.sparql`, so the benchmarks can compare SPARQL-based validation
against the derivative and backtracking engines on the same graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import XSD
from ..rdf.terms import BNode, IRI, Literal, SubjectTerm, Triple
from ..sparql import ask as sparql_ask
from ..sparql import select as sparql_select
from .expressions import And, Arc, Empty, EmptyTriples, Or, ShapeExpr, Star
from .node_constraints import (
    AnyValue,
    DatatypeConstraint,
    IRIStem,
    LanguageTag,
    NodeConstraint,
    NodeKind,
    NodeKindConstraint,
    ShapeRef,
    ValueSet,
)
from .results import MatchResult, MatchStats
from .schema import ValidationContext
from .typing import ShapeTyping

__all__ = [
    "SparqlCompilationError",
    "PredicateSpec",
    "flatten_expression",
    "shape_to_sparql_ask",
    "shape_to_sparql_select",
    "SparqlEngine",
]


class SparqlCompilationError(Exception):
    """Raised when an expression falls outside the SPARQL-compilable fragment."""


@dataclass
class PredicateSpec:
    """One flattened triple constraint: predicate, value constraint, cardinality."""

    predicate: IRI
    constraint: NodeConstraint
    min_count: int
    max_count: Optional[int]  # None = unbounded

    def merge_sequential(self, other: "PredicateSpec") -> "PredicateSpec":
        """Combine two specs for the same predicate used twice in an interleave."""
        if other.predicate != self.predicate or other.constraint != self.constraint:
            raise SparqlCompilationError(
                "cannot merge constraints with different value expressions for "
                f"predicate {self.predicate}"
            )
        maximum = None
        if self.max_count is not None and other.max_count is not None:
            maximum = self.max_count + other.max_count
        return PredicateSpec(self.predicate, self.constraint,
                             self.min_count + other.min_count, maximum)


# ------------------------------------------------------------------------ flattening
def flatten_expression(expr: ShapeExpr) -> List[PredicateSpec]:
    """Flatten an interleave-of-arcs expression into predicate specifications.

    Recognised building blocks:

    * ``Arc``                        → ``{1, 1}``
    * ``Arc*``                       → ``{0, ∞}``
    * ``Arc ‖ Arc*`` (i.e. ``Arc+``) → ``{1, ∞}``
    * ``Arc | ε``   (i.e. ``Arc?``)  → ``{0, 1}``
    * ``ε``                          → nothing
    * ``E ‖ F``                      → union of the flattenings (same-predicate
      entries are merged by adding their bounds, which is how ``E{m,n}``
      expansions come back together).

    Anything else (alternatives between different predicates, stars over
    groups, ``∅``) raises :class:`SparqlCompilationError`.
    """
    specs = _flatten(expr)
    merged: Dict[Tuple[IRI, NodeConstraint], PredicateSpec] = {}
    order: List[Tuple[IRI, NodeConstraint]] = []
    for spec in specs:
        key = (spec.predicate, spec.constraint)
        if key in merged:
            merged[key] = merged[key].merge_sequential(spec)
        else:
            merged[key] = spec
            order.append(key)
    result = [merged[key] for key in order]
    predicates_seen: Dict[IRI, int] = {}
    for spec in result:
        predicates_seen[spec.predicate] = predicates_seen.get(spec.predicate, 0) + 1
    duplicated = [predicate for predicate, count in predicates_seen.items() if count > 1]
    if duplicated:
        raise SparqlCompilationError(
            "the SPARQL compiler cannot express two different value constraints "
            f"for the same predicate: {', '.join(p.n3() for p in duplicated)}"
        )
    return result


def _flatten(expr: ShapeExpr) -> List[PredicateSpec]:
    if isinstance(expr, EmptyTriples):
        return []
    if isinstance(expr, Empty):
        raise SparqlCompilationError("∅ cannot be compiled to SPARQL")
    if isinstance(expr, Arc):
        return [_arc_spec(expr, 1, 1)]
    if isinstance(expr, Star):
        if isinstance(expr.expr, Arc):
            return [_arc_spec(expr.expr, 0, None)]
        raise SparqlCompilationError(
            "Kleene star over a composite expression cannot be compiled to SPARQL"
        )
    if isinstance(expr, And):
        plus_body = _plus_body(expr)
        if plus_body is not None:
            return [_arc_spec(plus_body, 1, None)]
        return _flatten(expr.left) + _flatten(expr.right)
    if isinstance(expr, Or):
        optional_body = _optional_body(expr)
        if optional_body is not None:
            if isinstance(optional_body, Arc):
                return [_arc_spec(optional_body, 0, 1)]
            inner = _flatten(optional_body)
            return [PredicateSpec(spec.predicate, spec.constraint, 0, spec.max_count)
                    for spec in inner]
        raise SparqlCompilationError(
            "alternatives between different triple constraints cannot be compiled"
        )
    raise SparqlCompilationError(f"cannot flatten expression {expr.to_str()}")


def _plus_body(expr: And) -> Optional[Arc]:
    if isinstance(expr.right, Star) and expr.right.expr == expr.left and isinstance(expr.left, Arc):
        return expr.left
    if isinstance(expr.left, Star) and expr.left.expr == expr.right and isinstance(expr.right, Arc):
        return expr.right
    return None


def _optional_body(expr: Or) -> Optional[ShapeExpr]:
    if isinstance(expr.right, EmptyTriples):
        return expr.left
    if isinstance(expr.left, EmptyTriples):
        return expr.right
    return None


def _arc_spec(expr: Arc, minimum: int, maximum: Optional[int]) -> PredicateSpec:
    predicate = expr.predicate.sample()
    if predicate is None or len(expr.predicate.predicates) != 1 \
            or expr.predicate.any_predicate or expr.predicate.stem is not None:
        raise SparqlCompilationError(
            "only single-predicate arcs can be compiled to SPARQL"
        )
    return PredicateSpec(predicate, expr.object, minimum, maximum)


# ------------------------------------------------------------------- query generation
def _constraint_filter(constraint: NodeConstraint, variable: str,
                       approximate_references: bool) -> Optional[str]:
    """Return a FILTER expression (as text) for ``constraint`` on ``?variable``.

    Returns ``None`` when the constraint accepts every term (no filter needed).
    """
    if isinstance(constraint, AnyValue):
        return None
    if isinstance(constraint, DatatypeConstraint):
        clauses = [f"isLiteral(?{variable})",
                   f"datatype(?{variable}) = <{constraint.datatype.value}>"]
        facets = constraint.facets
        if facets.min_inclusive is not None:
            clauses.append(f"?{variable} >= {_number(facets.min_inclusive)}")
        if facets.max_inclusive is not None:
            clauses.append(f"?{variable} <= {_number(facets.max_inclusive)}")
        if facets.min_exclusive is not None:
            clauses.append(f"?{variable} > {_number(facets.min_exclusive)}")
        if facets.max_exclusive is not None:
            clauses.append(f"?{variable} < {_number(facets.max_exclusive)}")
        if facets.min_length is not None:
            clauses.append(f"strlen(str(?{variable})) >= {facets.min_length}")
        if facets.max_length is not None:
            clauses.append(f"strlen(str(?{variable})) <= {facets.max_length}")
        if facets.length is not None:
            clauses.append(f"strlen(str(?{variable})) = {facets.length}")
        if facets.pattern is not None:
            clauses.append(f'regex(str(?{variable}), "{_escape(facets.pattern)}")')
        return " && ".join(clauses)
    if isinstance(constraint, NodeKindConstraint):
        if constraint.kind == NodeKind.IRI:
            return f"isIRI(?{variable})"
        if constraint.kind == NodeKind.BNODE:
            return f"isBlank(?{variable})"
        if constraint.kind == NodeKind.LITERAL:
            return f"isLiteral(?{variable})"
        return f"(isIRI(?{variable}) || isBlank(?{variable}))"
    if isinstance(constraint, ValueSet):
        alternatives = " || ".join(
            f"?{variable} = {_term_text(value)}" for value in constraint
        )
        return f"({alternatives})"
    if isinstance(constraint, IRIStem):
        return f'(isIRI(?{variable}) && strstarts(str(?{variable}), "{_escape(constraint.stem)}"))'
    if isinstance(constraint, LanguageTag):
        return f'langMatches(lang(?{variable}), "{constraint.tag}")'
    if isinstance(constraint, ShapeRef):
        if approximate_references:
            # a reference can only be satisfied by an IRI or a blank node;
            # the recursive part is checked by the shape engines, not SPARQL.
            return f"(isIRI(?{variable}) || isBlank(?{variable}))"
        raise SparqlCompilationError(
            "shape references cannot be expressed in SPARQL (Section 3 of the paper); "
            "pass approximate_references=True for the node-kind approximation"
        )
    raise SparqlCompilationError(f"cannot compile constraint {constraint.describe()}")


def _term_text(term) -> str:
    if isinstance(term, IRI):
        return term.n3()
    if isinstance(term, Literal):
        if term.datatype == XSD.integer:
            return term.lexical
        return term.n3()
    if isinstance(term, BNode):
        raise SparqlCompilationError("blank nodes cannot appear in SPARQL value sets")
    return str(term)


def _number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_text(node: SubjectTerm) -> str:
    if isinstance(node, IRI):
        return node.n3()
    raise SparqlCompilationError(
        "per-node ASK queries require an IRI focus node; "
        f"got {node!r} (use the SELECT form for blank nodes)"
    )


def shape_to_sparql_ask(expr: ShapeExpr, node: SubjectTerm, *,
                        closed: bool = True,
                        approximate_references: bool = False) -> str:
    """Compile ``expr`` into an ASK query checking one focus ``node``.

    The query mirrors the structure of Example 4: one counting sub-SELECT per
    declared predicate for the cardinality bound, one for the value
    constraint, plus (when ``closed``) a final check that the node carries no
    arc with an undeclared predicate.
    """
    specs = flatten_expression(expr)
    node_text = _node_text(node)
    blocks: List[str] = []
    for index, spec in enumerate(specs):
        blocks.extend(_spec_blocks(spec, index, node_text, approximate_references))
    if closed:
        blocks.append(_closed_block(specs, node_text))
    body = "\n".join(blocks)
    return f"ASK {{\n{body}\n}}"


def _spec_blocks(spec: PredicateSpec, index: int, node_text: str,
                 approximate_references: bool) -> List[str]:
    """Blocks checking one predicate specification against a fixed focus node.

    ``COUNT(*)`` over an empty match yields 0, so one pair of counting
    sub-SELECTs covers mandatory and optional predicates alike: the total
    count must lie inside the cardinality bounds and must equal the count of
    arcs whose value satisfies the constraint.
    """
    predicate = spec.predicate.n3()
    blocks: List[str] = []
    filter_text = _constraint_filter(spec.constraint, "o", approximate_references)
    count_all = f"?c{index}_all"
    count_ok = f"?c{index}_ok"
    blocks.append(_count_block(node_text, predicate, count_all, None))
    cardinality = []
    if spec.min_count > 0:
        cardinality.append(f"{count_all} >= {spec.min_count}")
    if spec.max_count is not None:
        cardinality.append(f"{count_all} <= {spec.max_count}")
    if cardinality:
        blocks.append(f"  FILTER ({' && '.join(cardinality)})")
    if filter_text is not None:
        blocks.append(_count_block(node_text, predicate, count_ok, filter_text))
        blocks.append(f"  FILTER ({count_all} = {count_ok})")
    return blocks


def _count_block(node_text: str, predicate: str, variable: str,
                 filter_text: Optional[str], indent: str = "  ") -> str:
    lines = [f"{indent}{{ SELECT (COUNT(*) AS {variable}) {{"]
    lines.append(f"{indent}    {node_text} {predicate} ?o .")
    if filter_text:
        lines.append(f"{indent}    FILTER ({filter_text})")
    lines.append(f"{indent}}} }}")
    return "\n".join(lines)


def _closed_block(specs: List[PredicateSpec], node_text: str) -> str:
    """Require that the node has no arc outside the declared predicates."""
    if not specs:
        return (
            "  { SELECT (1 AS ?closed) {\n"
            f"      OPTIONAL {{ {node_text} ?p ?o }}\n"
            "      FILTER (!bound(?p))\n"
            "  }}"
        )
    different = " && ".join(f"?p != {spec.predicate.n3()}" for spec in specs)
    return (
        "  { SELECT (1 AS ?closed) {\n"
        f"      OPTIONAL {{ {node_text} ?p ?o . FILTER ({different}) }}\n"
        "      FILTER (!bound(?p))\n"
        "  }}"
    )


def shape_to_sparql_select(expr: ShapeExpr, *, var: str = "node",
                           closed: bool = True,
                           approximate_references: bool = False) -> str:
    """Compile ``expr`` into a SELECT query returning the conforming nodes.

    The query binds ``?node`` (configurable) to every subject that satisfies
    every cardinality and value constraint.  Optional (min = 0) constraints
    and closedness are encoded with the same UNION/OPTIONAL tricks as the
    ASK form but over a variable focus node.
    """
    specs = flatten_expression(expr)
    if not specs:
        raise SparqlCompilationError("cannot build a SELECT query for the empty shape")
    blocks: List[str] = []
    for index, spec in enumerate(specs):
        predicate = spec.predicate.n3()
        filter_text = _constraint_filter(spec.constraint, "o", approximate_references)
        count_all = f"?c{index}_all"
        count_ok = f"?c{index}_ok"
        if spec.min_count == 0:
            present = (
                f"  {{\n"
                f"    {{ SELECT ?{var} (COUNT(*) AS {count_all}) {{\n"
                f"        ?{var} {predicate} ?o .\n"
                f"    }} GROUP BY ?{var} }}\n"
                f"    {{ SELECT ?{var} (COUNT(*) AS {count_ok}) {{\n"
                f"        ?{var} {predicate} ?o .\n"
                + (f"        FILTER ({filter_text})\n" if filter_text else "")
                + f"    }} GROUP BY ?{var}"
                + (f" HAVING (COUNT(*) <= {spec.max_count})" if spec.max_count is not None else "")
                + " }\n"
                f"    FILTER ({count_all} = {count_ok})\n"
                f"  }} UNION {{\n"
                f"    {{ SELECT ?{var} {{\n"
                f"        ?{var} ?anyp{index} ?anyo{index} .\n"
                f"        OPTIONAL {{ ?{var} {predicate} ?o }}\n"
                f"        FILTER (!bound(?o))\n"
                f"    }} }}\n"
                f"  }}"
            )
            blocks.append(present)
            continue
        having = []
        if spec.min_count > 0:
            having.append(f"COUNT(*) >= {spec.min_count}")
        if spec.max_count is not None:
            having.append(f"COUNT(*) <= {spec.max_count}")
        having_text = f" HAVING ({' && '.join(having)})" if having else ""
        blocks.append(
            f"  {{ SELECT ?{var} (COUNT(*) AS {count_all}) {{\n"
            f"      ?{var} {predicate} ?o .\n"
            f"  }} GROUP BY ?{var}{having_text} }}"
        )
        if filter_text is not None:
            blocks.append(
                f"  {{ SELECT ?{var} (COUNT(*) AS {count_ok}) {{\n"
                f"      ?{var} {predicate} ?o .\n"
                f"      FILTER ({filter_text})\n"
                f"  }} GROUP BY ?{var} }}"
            )
            blocks.append(f"  FILTER ({count_all} = {count_ok})")
    if closed:
        different = " && ".join(f"?p != {spec.predicate.n3()}" for spec in specs)
        blocks.append(
            f"  {{ SELECT ?{var} (1 AS ?closedflag) {{\n"
            f"      ?{var} ?anyp ?anyo .\n"
            f"      OPTIONAL {{ ?{var} ?p ?extra . FILTER ({different}) }}\n"
            f"      FILTER (!bound(?p))\n"
            f"  }} }}"
        )
    body = "\n".join(blocks)
    return f"SELECT DISTINCT ?{var} WHERE {{\n{body}\n}}"


# --------------------------------------------------------------------------- engine
class SparqlEngine:
    """Validation engine that matches neighbourhoods by compiling to SPARQL.

    The engine materialises the neighbourhood into a scratch graph and runs
    the generated ASK query against it.  It deliberately mirrors the
    restrictions of Section 3: recursive references are only approximated
    (node-kind check), so it should be used for the non-recursive shapes the
    benchmarks compare — which is also the fragment where SPARQL is a fair
    baseline.
    """

    name = "sparql"

    def __init__(self, closed: bool = True, approximate_references: bool = True):
        self.closed = closed
        self.approximate_references = approximate_references

    def match_neighbourhood(self, expr: ShapeExpr, triples: FrozenSet[Triple],
                            context: Optional[ValidationContext] = None) -> MatchResult:
        """Match ``triples`` (a node neighbourhood) against ``expr`` via SPARQL."""
        stats = MatchStats()
        triples = frozenset(triples)
        if not triples:
            # the ASK form needs a focus node; the empty neighbourhood matches
            # exactly the nullable expressions, so answer directly.
            from .derivatives import nullable

            matched = nullable(expr)
            return MatchResult(matched, ShapeTyping.empty(), stats,
                               "" if matched else "empty neighbourhood not accepted")
        focus = next(iter(triples)).subject
        scratch = Graph(triples)
        try:
            query = shape_to_sparql_ask(
                expr, focus, closed=self.closed,
                approximate_references=self.approximate_references,
            )
        except SparqlCompilationError as error:
            return MatchResult(False, ShapeTyping.empty(), stats,
                               f"not SPARQL-compilable: {error}")
        stats.arc_checks += len(triples)
        matched = sparql_ask(scratch, query)
        return MatchResult(matched, ShapeTyping.empty(), stats,
                           "" if matched else "SPARQL ASK returned false")

    __call__ = match_neighbourhood

    # -- graph-level helpers --------------------------------------------------------
    def conforming_nodes(self, graph: Graph, expr: ShapeExpr, *,
                         var: str = "node") -> List[SubjectTerm]:
        """Return the nodes of ``graph`` conforming to ``expr`` via one SELECT query."""
        query = shape_to_sparql_select(
            expr, var=var, closed=self.closed,
            approximate_references=self.approximate_references,
        )
        solutions = sparql_select(graph, query)
        nodes = []
        for solution in solutions:
            value = solution.get(var)
            if value is not None and value not in nodes:
                nodes.append(value)
        return sorted(nodes, key=lambda term: term.sort_key())
