"""Shape typings: the ``τ`` objects of Section 8.

A *shape typing* maps nodes of an RDF graph to the set of shape labels they
have been shown to satisfy.  The paper manipulates typings with three
operations, reproduced here:

* `` `` (the empty typing),
* ``n → s : τ`` (adding the association of shape ``s`` to node ``n``),
* ``τ1 ⊎ τ2`` (combining two typings).

Typings are immutable value objects; adding or combining returns a new
typing, which keeps backtracking branches independent of each other.  They
are backed by a persistent HAMT (:mod:`repro.shex.hamt`), so ``add`` is
O(log n) with full structural sharing — confirming the ``k`` members of one
recursive component is O(k log k) instead of the O(k²) a copied dict costs —
and ``combine`` skips subtries the two typings share.  ``hash`` is computed
once and cached (typings are hashed on hot paths), and equality, repr and
iteration order are value-based: independent of the order in which
associations were added.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from ..rdf.terms import ObjectTerm
from .hamt import HamtMap

__all__ = ["ShapeLabel", "ShapeTyping", "typing_of"]


class ShapeLabel:
    """A label ``λ ∈ Λ`` naming a shape in a schema.

    Labels compare by name, so ``ShapeLabel("Person")`` constructed in a test
    equals the label produced by the ShExC parser for ``<Person>``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError("a shape label needs a non-empty name")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("ShapeLabel is immutable")

    def __reduce__(self):
        # the immutability guard breaks slot-based pickling; rebuild through
        # the constructor (parallel validation ships labels across processes)
        return (ShapeLabel, (self.name,))

    def __eq__(self, other) -> bool:
        if isinstance(other, ShapeLabel):
            return other.name == self.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ShapeLabel", self.name))

    def __repr__(self) -> str:
        return f"ShapeLabel({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __lt__(self, other: "ShapeLabel") -> bool:
        if not isinstance(other, ShapeLabel):
            return NotImplemented
        return self.name < other.name


def _as_label(label: "ShapeLabel | str") -> ShapeLabel:
    return label if isinstance(label, ShapeLabel) else ShapeLabel(label)


def _union_labels(left: FrozenSet[ShapeLabel],
                  right: FrozenSet[ShapeLabel]) -> FrozenSet[ShapeLabel]:
    """The per-node value merge of ``⊎``; returns an *operand itself* (not a
    fresh equal set) whenever one side covers the other, so the HAMT merge
    can keep that side's nodes shared in either direction."""
    if left is right or right.issubset(left):
        return left
    if left.issubset(right):
        return right
    return left | right


def _rebuild_typing(items: tuple) -> "ShapeTyping":
    """Unpickling entry point (the HAMT regrows under the local hash seed)."""
    typing = _EMPTY_TYPING
    mapping = typing._map
    for node, labels in items:
        mapping = mapping.assoc(node, labels)
    return ShapeTyping._from_map(mapping)


class ShapeTyping:
    """An immutable mapping from graph nodes to sets of shape labels."""

    __slots__ = ("_map", "_hash")

    def __init__(self, assignments: Mapping[ObjectTerm, Iterable[ShapeLabel]] | None = None):
        mapping = HamtMap.empty()
        if assignments:
            for node, labels in assignments.items():
                label_set = frozenset(_as_label(label) for label in labels)
                if label_set:
                    mapping = mapping.assoc(node, label_set)
        object.__setattr__(self, "_map", mapping)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("ShapeTyping is immutable")

    # -- constructors -----------------------------------------------------
    @classmethod
    def _from_map(cls, mapping: HamtMap) -> "ShapeTyping":
        """Wrap an already-built HAMT (internal fast path)."""
        if not mapping:
            return _EMPTY_TYPING
        typing = object.__new__(cls)
        object.__setattr__(typing, "_map", mapping)
        object.__setattr__(typing, "_hash", None)
        return typing

    @classmethod
    def empty(cls) -> "ShapeTyping":
        """The empty typing `` ``."""
        return _EMPTY_TYPING

    @classmethod
    def single(cls, node: ObjectTerm, label: "ShapeLabel | str") -> "ShapeTyping":
        """The typing containing exactly ``node → label``."""
        return cls._from_map(
            HamtMap.empty().assoc(node, frozenset((_as_label(label),)))
        )

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[ObjectTerm, "ShapeLabel | str"]]
                   ) -> "ShapeTyping":
        """Build a typing from ``(node, label)`` pairs in one accretion pass."""
        typing = _EMPTY_TYPING
        for node, label in pairs:
            typing = typing.add(node, label)
        return typing

    # -- paper operations ---------------------------------------------------
    def add(self, node: ObjectTerm, label: "ShapeLabel | str") -> "ShapeTyping":
        """``n → s : τ`` — return a typing extended with one association.

        O(log n): only the nodes on ``node``'s hash path are rebuilt; the
        rest of the trie is shared with this typing.  Adding an association
        already present returns ``self``.
        """
        label = _as_label(label)
        mapping = self._map.upsert(node, frozenset((label,)), _union_labels)
        if mapping is self._map:
            return self
        return ShapeTyping._from_map(mapping)

    def combine(self, other: "ShapeTyping") -> "ShapeTyping":
        """``τ1 ⊎ τ2`` — the union of two typings.

        Subtries the two typings share (typical when one was derived from
        the other by ``add``) are skipped, not re-merged.
        """
        if other is self or not other._map:
            return self
        if not self._map:
            return other
        merged = self._map.merge(other._map, _union_labels)
        if merged is self._map:
            return self
        if merged is other._map:
            return other
        return ShapeTyping._from_map(merged)

    def __or__(self, other: "ShapeTyping") -> "ShapeTyping":
        return self.combine(other)

    def without_nodes(self, nodes: Iterable[ObjectTerm]) -> "ShapeTyping":
        """Return a typing with every association of ``nodes`` removed.

        The retraction half of incremental revalidation: dropping a node
        costs one O(log n) persistent ``dissoc`` (everything off the hash
        path stays shared), and removing a node that has no associations is
        a no-op, so retracting an affected closure is linear in its size —
        never in the size of the typing.  Returns ``self`` when nothing
        changes.
        """
        mapping = self._map
        for node in nodes:
            mapping = mapping.dissoc(node)
        if mapping is self._map:
            return self
        return ShapeTyping._from_map(mapping)

    # -- queries ---------------------------------------------------------------
    def labels_for(self, node: ObjectTerm) -> FrozenSet[ShapeLabel]:
        """Return the labels assigned to ``node`` (empty set if none)."""
        labels = self._map.get(node)
        return labels if labels is not None else frozenset()

    def has(self, node: ObjectTerm, label: "ShapeLabel | str") -> bool:
        """True if ``node → label`` is part of this typing."""
        labels = self._map.get(node)
        return labels is not None and _as_label(label) in labels

    def nodes(self) -> Iterator[ObjectTerm]:
        """Iterate over the nodes that have at least one label."""
        return iter(self._map)

    def items(self) -> Iterator[Tuple[ObjectTerm, FrozenSet[ShapeLabel]]]:
        """Iterate over ``(node, labels)`` pairs."""
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    def __contains__(self, node: object) -> bool:
        return node in self._map

    def __eq__(self, other) -> bool:
        if not isinstance(other, ShapeTyping):
            return NotImplemented
        return other._map == self._map

    def __hash__(self) -> int:
        # typings are hashed on hot paths; the underlying HAMT caches an
        # order-independent content hash per node, so this is O(n) once and
        # O(1) on every later call.
        cached = self._hash
        if cached is None:
            cached = hash(("ShapeTyping", self._map))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __reduce__(self):
        # the HAMT layout is keyed to this process's hash seed; ship the
        # items and regrow on the receiving side (see hamt.py)
        return (_rebuild_typing, (tuple(self._map.items()),))

    def __repr__(self) -> str:
        parts = []
        for node, labels in sorted(self._map.items(),
                                   key=lambda item: item[0].sort_key()):
            rendered = ", ".join(sorted(str(label) for label in labels))
            parts.append(f"{node.n3()} → {{{rendered}}}")
        return "ShapeTyping(" + "; ".join(parts) + ")"

    def to_dict(self) -> Dict[str, list]:
        """Return a JSON-friendly representation (node n3 → sorted label names).

        Nodes are emitted in ``sort_key`` order so the serialisation is
        deterministic across runs (HAMT iteration order depends on the
        per-process hash seed).
        """
        return {
            node.n3(): sorted(str(label) for label in labels)
            for node, labels in sorted(self._map.items(),
                                       key=lambda item: item[0].sort_key())
        }


def typing_of(context) -> ShapeTyping:
    """The confirmed typing of ``context``, or the empty typing without one.

    Shared by the matching engines, which accept ``context=None`` for bare
    expression-level matching.
    """
    return context.typing if context is not None else _EMPTY_TYPING


_EMPTY_TYPING = ShapeTyping()
