"""Shape typings: the ``τ`` objects of Section 8.

A *shape typing* maps nodes of an RDF graph to the set of shape labels they
have been shown to satisfy.  The paper manipulates typings with three
operations, reproduced here:

* `` `` (the empty typing),
* ``n → s : τ`` (adding the association of shape ``s`` to node ``n``),
* ``τ1 ⊎ τ2`` (combining two typings).

Typings are immutable value objects; adding or combining returns a new
typing, which keeps backtracking branches independent of each other.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from ..rdf.terms import ObjectTerm

__all__ = ["ShapeLabel", "ShapeTyping"]


class ShapeLabel:
    """A label ``λ ∈ Λ`` naming a shape in a schema.

    Labels compare by name, so ``ShapeLabel("Person")`` constructed in a test
    equals the label produced by the ShExC parser for ``<Person>``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError("a shape label needs a non-empty name")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("ShapeLabel is immutable")

    def __reduce__(self):
        # the immutability guard breaks slot-based pickling; rebuild through
        # the constructor (parallel validation ships labels across processes)
        return (ShapeLabel, (self.name,))

    def __eq__(self, other) -> bool:
        if isinstance(other, ShapeLabel):
            return other.name == self.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ShapeLabel", self.name))

    def __repr__(self) -> str:
        return f"ShapeLabel({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __lt__(self, other: "ShapeLabel") -> bool:
        if not isinstance(other, ShapeLabel):
            return NotImplemented
        return self.name < other.name


def _as_label(label: "ShapeLabel | str") -> ShapeLabel:
    return label if isinstance(label, ShapeLabel) else ShapeLabel(label)


class ShapeTyping:
    """An immutable mapping from graph nodes to sets of shape labels."""

    __slots__ = ("_assignments",)

    def __init__(self, assignments: Mapping[ObjectTerm, Iterable[ShapeLabel]] | None = None):
        frozen: Dict[ObjectTerm, FrozenSet[ShapeLabel]] = {}
        if assignments:
            for node, labels in assignments.items():
                label_set = frozenset(_as_label(label) for label in labels)
                if label_set:
                    frozen[node] = label_set
        object.__setattr__(self, "_assignments", frozen)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("ShapeTyping is immutable")

    # -- constructors -----------------------------------------------------
    @classmethod
    def empty(cls) -> "ShapeTyping":
        """The empty typing `` ``."""
        return _EMPTY_TYPING

    @classmethod
    def single(cls, node: ObjectTerm, label: "ShapeLabel | str") -> "ShapeTyping":
        """The typing containing exactly ``node → label``."""
        return cls({node: [_as_label(label)]})

    # -- paper operations ---------------------------------------------------
    def add(self, node: ObjectTerm, label: "ShapeLabel | str") -> "ShapeTyping":
        """``n → s : τ`` — return a typing extended with one association."""
        label = _as_label(label)
        updated = dict(self._assignments)
        updated[node] = updated.get(node, frozenset()) | {label}
        return ShapeTyping(updated)

    def combine(self, other: "ShapeTyping") -> "ShapeTyping":
        """``τ1 ⊎ τ2`` — the union of two typings."""
        if not other._assignments:
            return self
        if not self._assignments:
            return other
        merged = dict(self._assignments)
        for node, labels in other._assignments.items():
            merged[node] = merged.get(node, frozenset()) | labels
        return ShapeTyping(merged)

    def __or__(self, other: "ShapeTyping") -> "ShapeTyping":
        return self.combine(other)

    # -- queries ---------------------------------------------------------------
    def labels_for(self, node: ObjectTerm) -> FrozenSet[ShapeLabel]:
        """Return the labels assigned to ``node`` (empty set if none)."""
        return self._assignments.get(node, frozenset())

    def has(self, node: ObjectTerm, label: "ShapeLabel | str") -> bool:
        """True if ``node → label`` is part of this typing."""
        return _as_label(label) in self._assignments.get(node, frozenset())

    def nodes(self) -> Iterator[ObjectTerm]:
        """Iterate over the nodes that have at least one label."""
        return iter(self._assignments.keys())

    def items(self) -> Iterator[Tuple[ObjectTerm, FrozenSet[ShapeLabel]]]:
        """Iterate over ``(node, labels)`` pairs."""
        return iter(self._assignments.items())

    def __len__(self) -> int:
        return len(self._assignments)

    def __bool__(self) -> bool:
        return bool(self._assignments)

    def __contains__(self, node: object) -> bool:
        return node in self._assignments

    def __eq__(self, other) -> bool:
        if not isinstance(other, ShapeTyping):
            return NotImplemented
        return other._assignments == self._assignments

    def __hash__(self) -> int:
        return hash(frozenset((node, labels) for node, labels in self._assignments.items()))

    def __repr__(self) -> str:
        parts = []
        for node, labels in sorted(self._assignments.items(),
                                   key=lambda item: item[0].sort_key()):
            rendered = ", ".join(sorted(str(label) for label in labels))
            parts.append(f"{node.n3()} → {{{rendered}}}")
        return "ShapeTyping(" + "; ".join(parts) + ")"

    def to_dict(self) -> Dict[str, list]:
        """Return a JSON-friendly representation (node n3 → sorted label names)."""
        return {
            node.n3(): sorted(str(label) for label in labels)
            for node, labels in self._assignments.items()
        }


_EMPTY_TYPING = ShapeTyping()
