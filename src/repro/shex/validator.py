"""Validator façade: the public entry point for RDF validation.

The :class:`Validator` ties together a graph, a schema and one of the
matching engines (derivatives, backtracking or the SPARQL compiler) and
exposes the operations users of the paper's system need:

* ``validate_node(node, label)`` — does one node have one shape?
* ``validate_map({node: label, …})`` — validate a shape map,
* ``infer_typing()`` — the type-inference algorithm of Section 8: compute a
  shape typing assigning to every node the labels it satisfies,
* ``conforming_nodes(label)`` — which nodes have a given shape (Example 2).

Engines are pluggable so the benchmarks can swap implementations while the
surrounding code stays identical.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..rdf.errors import StaleSnapshotError
from ..rdf.graph import Graph, NeighbourhoodSnapshot
from ..rdf.terms import Literal, ObjectTerm, SubjectTerm
from .backtracking import BacktrackingEngine
from .cache import DerivativeCache, SignatureCache
from .compiled import CompiledSchema
from .derivatives import DerivativeEngine
from .expressions import ShapeExpr
from .results import MatchResult, MatchStats, ValidationReportEntry
from .schema import Schema, SchemaError, ValidationContext
from .typing import ShapeLabel, ShapeTyping

__all__ = ["Validator", "ValidationReport", "RevalidationResult",
           "IncrementalFallback", "get_engine", "ENGINES"]


class IncrementalFallback(Exception):
    """Raised by ``revalidate(allow_full_rebuild=False)`` instead of rebuilding.

    ``reason`` is a stable machine-readable code: ``"journal-overflow"`` (the
    graph's change journal overflowed, so the change set is unknowable) or
    ``"no-baseline"`` (no usable incremental baseline: first run, label-set
    change, ``shared_context`` off, or the shared context was invalidated
    behind the baseline's back).  Long-lived services set
    ``allow_full_rebuild=False`` so an unbounded full re-run never hides
    inside what looks like a cheap delta; they map this exception to a typed
    service error (:class:`repro.service.api.ServiceError`).
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


#: registry of engine factories keyed by their public names.
ENGINES = {
    "derivatives": DerivativeEngine,
    "backtracking": BacktrackingEngine,
}


def get_engine(engine: Union[str, object, None] = None, **options):
    """Resolve an engine argument into an engine instance.

    ``engine`` may be ``None`` (default: derivatives), the name of a
    registered engine, or an already-built engine object exposing
    ``match_neighbourhood``.
    """
    if engine is None:
        return DerivativeEngine(**options)
    if isinstance(engine, str):
        try:
            factory = ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; available: {sorted(ENGINES)}"
            ) from None
        return factory(**options)
    if hasattr(engine, "match_neighbourhood"):
        return engine
    raise TypeError(f"not a matching engine: {engine!r}")


@dataclass
class ValidationReport:
    """The outcome of validating a shape map or a whole graph."""

    entries: List[ValidationReportEntry] = field(default_factory=list)
    typing: ShapeTyping = field(default_factory=ShapeTyping.empty)

    @property
    def conforms(self) -> bool:
        """True when every requested (node, shape) pair conforms."""
        return all(entry.conforms for entry in self.entries)

    def failures(self) -> List[ValidationReportEntry]:
        """Return the entries that did not conform."""
        return [entry for entry in self.entries if not entry.conforms]

    def entry_for(self, node: ObjectTerm,
                  label: Union[ShapeLabel, str, None] = None) -> Optional[ValidationReportEntry]:
        """Return the report entry for ``node`` (and ``label`` if given)."""
        wanted = None
        if label is not None:
            wanted = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
        for entry in self.entries:
            if entry.node == node and (wanted is None or entry.label == wanted):
                return entry
        return None

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self.entries)

    def total_stats(self) -> MatchStats:
        """Aggregate the per-entry statistics into one record."""
        total = MatchStats()
        for entry in self.entries:
            total.merge(entry.stats)
        return total


@dataclass
class RevalidationResult:
    """The outcome of one :meth:`Validator.revalidate` round.

    ``report`` is the full, delta-updated report (entry objects for
    unaffected pairs are reused from the previous round); ``delta`` holds
    exactly the recomputed entries.  ``dirty`` is the journal's per-subject
    change set, ``affected`` its reverse-reachability closure along the
    reference graph, ``retracted`` the number of settled verdicts dropped
    before re-running.  ``full_rebuild`` is True when incremental reuse was
    impossible (first run, journal overflow, label-set change, or state
    invalidated behind the validator's back) and everything was recomputed.
    """

    report: ValidationReport
    delta: ValidationReport
    dirty: FrozenSet[SubjectTerm]
    affected: FrozenSet[ObjectTerm]
    full_rebuild: bool
    retracted: int = 0

    @property
    def conforms(self) -> bool:
        """True when every pair of the full updated report conforms."""
        return self.report.conforms

    def stats(self) -> Dict[str, int]:
        """Summary counters (journal/closure sizes) for traces and the CLI."""
        return {
            "dirty_subjects": len(self.dirty),
            "affected_nodes": len(self.affected),
            "revalidated_pairs": len(self.delta),
            "reused_pairs": len(self.report) - len(self.delta),
            "retracted_verdicts": self.retracted,
            "full_rebuild": int(self.full_rebuild),
        }


class Validator:
    """Validate RDF graphs against Shape Expression schemas.

    Parameters
    ----------
    graph:
        the data graph to validate.
    schema:
        the Shape Expression schema ``(Λ, δ)``; optional when only
        expression-level matching is needed.
    engine:
        ``"derivatives"`` (default), ``"backtracking"`` or an engine object.
    shared_context:
        when True (default) the bulk operations — ``validate_map``,
        ``validate_graph``, ``infer_typing``, ``conforming_nodes`` — thread
        **one** :class:`ValidationContext` through the whole run (and keep it
        across runs), so confirmed/failed ``(node, label)`` verdicts
        propagate instead of being recomputed per node.  Set to False for the
        paper-faithful fresh-context-per-node behaviour.  Graph mutations
        are detected automatically: the shared context is rebuilt on the
        next call when the graph has changed.
    max_recursion_depth:
        recursion budget handed to every context this validator creates.
    jobs:
        default worker-process count for ``validate_graph``.  With
        ``jobs > 1`` the graph is partitioned by strongly-connected component
        of its node reference graph (:mod:`repro.shex.partition`) and
        independent components are validated concurrently; ``1`` (the
        default) keeps the serial bulk path.
    precompile:
        build a :class:`~repro.shex.compiled.CompiledSchema` for the schema
        (default True) and thread it through every context this validator
        creates: statically decidable ``(node, label)`` pairs are settled by
        the prefilter without touching an engine, and the derivative engine
        dispatches arc atoms through the predicate-indexed atom tables.
        Verdicts are identical either way; set False (CLI
        ``--no-precompile``) to measure or to rule the fast paths out.
    compiled:
        a ready :class:`~repro.shex.compiled.CompiledSchema` to adopt instead
        of compiling one (must belong to ``schema``); implies ``precompile``.
    signature_cache:
        the neighbourhood-signature verdict memo
        (:class:`~repro.shex.cache.SignatureCache`) consulted by the bulk
        paths before any engine runs: a subject whose canonical one-hop
        signature was already settled against a label is answered without
        constructing a matching frame.  ``None`` (default) enables a
        validator-owned cache automatically whenever both ``shared_context``
        and ``precompile`` are on (signatures need the compiled atom tables);
        ``True`` forces one (still requires ``precompile``); ``False``
        disables signature dedupe (CLI ``--no-signature-cache``); a ready
        :class:`SignatureCache` instance is adopted as-is — the caller then
        owns its lifecycle and must clear it on schema change.  The
        validator-owned cache is dropped when ``schema`` is reassigned;
        graph mutations need no invalidation because signatures embed the
        neighbourhood structure they describe.
    engine_options:
        keyword options forwarded to the engine factory (e.g.
        ``simplify=False``, ``budget=10_000`` or ``cache=True`` to give the
        derivative engine a global cross-node derivative cache).

    .. deprecated:: PR 7
        Constructing a ``Validator`` directly for *service-shaped* use —
        load once, keep warm, apply deltas, answer point queries — is
        superseded by :class:`repro.service.ValidationSession`, the facade
        the CLI, the HTTP server and the python client all share (one
        request/response contract, typed errors, unified stats).  Every
        ``Validator(...)`` kwarg keeps working; only the ad-hoc wiring each
        caller used to repeat around it is deprecated.
    """

    def __init__(self, graph: Graph, schema: Optional[Schema] = None,
                 engine: Union[str, object, None] = None,
                 shared_context: bool = True,
                 max_recursion_depth: int = 500,
                 jobs: int = 1,
                 precompile: bool = True,
                 compiled: Optional[CompiledSchema] = None,
                 subject_filter: Optional[Callable[[SubjectTerm], bool]] = None,
                 signature_cache: Union[None, bool, SignatureCache] = None,
                 **engine_options):
        self.graph = graph
        self.schema = schema
        self.engine = get_engine(engine, **engine_options)
        self.shared_context = shared_context
        self.max_recursion_depth = max_recursion_depth
        self.jobs = jobs
        #: restricts which subjects appear in bulk reports and the maintained
        #: baseline.  A resident shard worker validates (and maintains) only
        #: the subjects it owns; reference targets outside the filter are
        #: still derived on demand from the full local graph — the filter
        #: governs report coverage, not reachability.
        self.subject_filter = subject_filter
        self.precompile = precompile or compiled is not None
        self._compiled = compiled
        self._atoms_adopted = False
        #: neighbourhood-signature verdict dedupe: the caller's option plus
        #: the resolved validator-owned cache (invalidated on schema change).
        self._signature_cache_opt = signature_cache
        self._signature_cache: Optional[SignatureCache] = (
            signature_cache if isinstance(signature_cache, SignatureCache)
            else None)
        self._signature_cache_schema: Optional[Schema] = schema
        self._worker_engine_spec = _make_engine_spec(engine, engine_options)
        self._context: Optional[ValidationContext] = None
        self._context_key: Optional[tuple] = None
        #: incremental-revalidation baseline: the labels, per-pair entries and
        #: graph generation of the last full ``validate_graph`` run (shared
        #: context only).  ``revalidate`` consumes the graph's change journal
        #: against this generation.
        self._incremental_labels: Optional[Tuple[ShapeLabel, ...]] = None
        self._incremental_entries: Optional[
            Dict[Tuple[ObjectTerm, ShapeLabel], ValidationReportEntry]] = None
        self._incremental_typing: Optional[ShapeTyping] = None
        self._incremental_generation: Optional[int] = None
        #: schema-level reference analysis, cached per schema object so the
        #: watch-style revalidate loop never re-walks the shape expressions.
        self._reference_index: Optional[object] = None
        self._reference_index_schema: Optional[Schema] = None

    # -- schema compilation -------------------------------------------------------
    @property
    def compiled(self) -> Optional[CompiledSchema]:
        """The compiled tables for the current schema (None when disabled).

        Compiled lazily, once per schema object: reassigning ``schema``
        triggers a recompile on the next use.  The engine's global derivative
        cache (when present) adopts the compiled atom tables so the per-label
        atom walk is never repeated.
        """
        if not self.precompile or self.schema is None:
            return None
        if self._compiled is None or self._compiled.schema is not self.schema:
            self._compiled = CompiledSchema(self.schema)
            self._atoms_adopted = False
        if not self._atoms_adopted:
            # seed the engine's derivative cache whether the compiled schema
            # was built here or handed in ready-made
            cache = getattr(self.engine, "cache", None)
            if cache is not None:
                cache.adopt_atoms(self._compiled.atom_tables())
            self._atoms_adopted = True
        return self._compiled

    @property
    def signature_cache(self) -> Optional[SignatureCache]:
        """The resolved signature cache (None when dedupe is disabled).

        Resolution follows the constructor's ``signature_cache`` option: an
        adopted instance is returned as-is; ``True`` and the auto default
        build one validator-owned cache per schema object, so reassigning
        ``schema`` starts from an empty table (signatures are keyed by the
        compiled schema's atom order and must not cross schemas).
        """
        opt = self._signature_cache_opt
        if opt is False or self.schema is None or not self.precompile:
            return None
        if isinstance(opt, SignatureCache):
            return opt
        if opt is None and not self.shared_context:
            return None
        if self._signature_cache is None \
                or self._signature_cache_schema is not self.schema:
            self._signature_cache = SignatureCache()
            self._signature_cache_schema = self.schema
        return self._signature_cache

    def store_stats(self) -> Dict[str, object]:
        """Storage-layer counters of the validated graph.

        A passthrough to :meth:`TripleStore.store_stats`, so callers holding
        only the validator (services, the CLI) can report backend counters —
        dictionary size, segment counts, index bytes, ids decoded at report
        time — without reaching into the graph.
        """
        return self.graph.store_stats()

    # -- contexts ---------------------------------------------------------------
    def _new_context(self) -> ValidationContext:
        index = self._schema_reference_index() if self.schema is not None else None
        context = ValidationContext(self.graph, self.schema,
                                    self.engine.match_neighbourhood,
                                    max_recursion_depth=self.max_recursion_depth,
                                    compiled=self.compiled,
                                    reference_index=index)
        context.signature_cache = self.signature_cache
        return context

    def _bulk_context(self) -> Optional[ValidationContext]:
        """The persistent shared context (None when ``shared_context`` is off).

        The context is rebuilt automatically when anything it was derived
        from changed: graph mutations (tracked through
        :attr:`Graph.generation`) or reassignment of ``graph``, ``schema``,
        ``engine`` or ``max_recursion_depth``.
        """
        if not self.shared_context:
            return None
        # objects are compared by identity (and kept referenced so their ids
        # cannot be recycled); the generation captures in-place graph edits.
        sources = (self.graph, self.schema, self.engine, self.compiled,
                   self.max_recursion_depth,
                   getattr(self.graph, "generation", None))
        stale = (self._context is None or self._context_key is None
                 or any(new is not old
                        for new, old in zip(sources[:4], self._context_key[:4]))
                 or sources[4:] != self._context_key[4:])
        if stale:
            self._context = self._new_context()
            self._context_key = sources
        return self._context

    def reset_context(self) -> None:
        """Drop the persistent shared context explicitly.

        Graph mutations and graph/schema/engine reassignment are detected
        automatically; this is only needed when state the matcher consults
        changed *behind* one of those objects (e.g. an engine option was
        flipped in place).
        """
        self._context = None
        self._context_key = None
        self._incremental_labels = None
        self._incremental_entries = None
        self._incremental_typing = None
        self._incremental_generation = None

    # -- expression-level API -----------------------------------------------------
    def node_matches_expression(self, node: SubjectTerm, expr: ShapeExpr) -> MatchResult:
        """Match the neighbourhood of ``node`` against a bare expression."""
        context = self._new_context() if self.schema is not None else None
        neighbourhood = self.graph.neighbourhood(node)
        return self.engine.match_neighbourhood(expr, neighbourhood, context)

    # -- schema-level API ----------------------------------------------------------
    def validate_node(self, node: SubjectTerm,
                      label: Union[ShapeLabel, str, None] = None,
                      context: Optional[ValidationContext] = None
                      ) -> ValidationReportEntry:
        """Validate one node against one shape label (default: the start shape).

        A fresh context is used unless ``context`` is given (the bulk
        operations pass their shared context here).  The entry's stats are an
        independent snapshot of the work done *for this entry* — never an
        alias of the (possibly shared) context record.
        """
        label = self._resolve_label(label)
        if context is None:
            context = self._new_context()
        before = context.stats.copy()
        result = context.check_reference(node, label)
        entry_stats = context.stats.delta_since(before).merge(result.stats)
        return ValidationReportEntry(
            node=node, label=label, conforms=result.matched,
            reason=result.reason, stats=entry_stats,
            limit_exceeded=result.limit_exceeded,
        )

    def validate_map(self, shape_map: Mapping[SubjectTerm, Union[ShapeLabel, str]]
                     ) -> ValidationReport:
        """Validate every ``node → label`` association of a shape map."""
        context = self._bulk_context()
        report = ValidationReport()
        conforming: List[Tuple[ObjectTerm, ShapeLabel]] = []
        for node, label in shape_map.items():
            entry = self.validate_node(node, label, context=context)
            report.entries.append(entry)
            if entry.conforms:
                conforming.append((node, self._resolve_label(label)))
        report.typing = ShapeTyping.from_pairs(conforming)
        return report

    def infer_typing(self, nodes: Optional[Iterable[SubjectTerm]] = None,
                     labels: Optional[Iterable[Union[ShapeLabel, str]]] = None
                     ) -> ShapeTyping:
        """Compute a shape typing for the graph (Section 8).

        Tries every combination of the given nodes (default: every subject
        node of the graph) and labels (default: every label of the schema)
        and returns the typing containing the associations that validate.
        With ``shared_context`` enabled, verdicts established while checking
        one combination are reused by every later one.
        """
        if self.schema is None:
            raise SchemaError("infer_typing requires a schema")
        node_list = list(nodes) if nodes is not None else sorted(
            self.graph.nodes(), key=lambda term: term.sort_key()
        )
        label_list = [self._resolve_label(label) for label in labels] if labels \
            else list(self.schema.labels())
        context = self._bulk_context()
        return ShapeTyping.from_pairs(
            (node, label)
            for node in node_list
            for label in label_list
            if self.validate_node(node, label, context=context).conforms
        )

    def conforming_nodes(self, label: Union[ShapeLabel, str, None] = None
                         ) -> List[SubjectTerm]:
        """Return the subject nodes that conform to ``label`` (Example 2)."""
        label = self._resolve_label(label)
        context = self._bulk_context()
        nodes = sorted(self.graph.nodes(), key=lambda term: term.sort_key())
        return [node for node in nodes
                if self.validate_node(node, label, context=context).conforms]

    def validate_graph(self, labels: Optional[Sequence[Union[ShapeLabel, str]]] = None,
                       jobs: Optional[int] = None) -> ValidationReport:
        """Validate every subject node against every (or the given) labels.

        ``jobs`` overrides the validator's default worker count for this
        call.  With more than one job the reference graph is partitioned by
        strongly-connected component and independent components are validated
        across worker processes; verdicts are identical to the serial bulk
        path (up to failure-message wording and recursion-budget edge cases —
        see ``docs/architecture.md``).
        """
        if self.schema is None:
            raise SchemaError("validate_graph requires a schema")
        label_list = [self._resolve_label(label) for label in labels] if labels \
            else list(self.schema.labels())
        n_jobs = self.jobs if jobs is None else jobs
        if n_jobs is not None and n_jobs > 1:
            report = self._validate_graph_parallel(label_list, n_jobs)
        else:
            report = self._validate_graph_serial(label_list)
        self._record_incremental_baseline(label_list, report)
        return report

    def _record_incremental_baseline(self, label_list: Sequence[ShapeLabel],
                                     report: ValidationReport) -> None:
        """Remember a full run so ``revalidate`` can delta-update it."""
        if not self.shared_context:
            return
        self._incremental_labels = tuple(label_list)
        self._incremental_entries = {
            (entry.node, entry.label): entry for entry in report.entries
        }
        self._incremental_typing = report.typing
        self._incremental_generation = getattr(self.graph, "generation", None)

    def _validate_pairs_serial(self, context: Optional[ValidationContext],
                               label_list: Sequence[ShapeLabel],
                               subjects: Sequence[SubjectTerm],
                               ) -> List[ValidationReportEntry]:
        """Validate ``subjects × label_list`` in order, signature first.

        Each ``(node, label)`` pair is probed against the signature cache
        first — the cached verdict is a pure function of the canonical
        neighbourhood signature for *any* label, so a repeated structure is
        answered in one dictionary hit before any prefilter scan or matching
        frame is constructed.  The labels the cache cannot answer go to the
        compiled-schema prefilter, whose decisions are themselves recorded
        under the signature (they are signature-pure too); only the
        remainder goes through :meth:`validate_node` and the engine — whose
        settled verdict is stored back for every later lookalike subject.
        """
        use_prefilter = context is not None and context.compiled is not None
        cache = context.signature_cache if context is not None else None
        entries: List[ValidationReportEntry] = []
        for node in subjects:
            answered: Dict[ShapeLabel, ValidationReportEntry] = {}
            if cache is not None:
                for label in label_list:
                    hit = _signature_probe(context, cache, node, label)
                    if hit is not None:
                        answered[label] = hit
            pending = [label for label in label_list
                       if label not in answered] if answered else label_list
            decisions = (context.prefilter_node(node, pending)
                         if pending and use_prefilter else None)
            for label in label_list:
                entry = answered.get(label)
                if entry is None:
                    decision = decisions.get(label) if decisions else None
                    if decision is not None:
                        entry = _decided_entry(node, label, decision)
                        if cache is not None:
                            _prefilter_signature_store(context, cache, node,
                                                       label, decision)
                    else:
                        entry = self.validate_node(node, label, context=context)
                        if cache is not None:
                            _signature_store(context, cache, node, label, entry)
                entries.append(entry)
        return entries

    def _owns(self, node: SubjectTerm) -> bool:
        """Whether bulk reports cover ``node`` (True without a filter)."""
        return self.subject_filter is None or self.subject_filter(node)

    def _validate_graph_serial(self, label_list: Sequence[ShapeLabel]) -> ValidationReport:
        """The single-process bulk path: one shared context, sorted node order."""
        context = self._bulk_context()
        subjects = sorted((node for node in self.graph.nodes()
                           if self._owns(node)),
                          key=lambda term: term.sort_key())
        report = ValidationReport(
            entries=self._validate_pairs_serial(context, label_list, subjects))
        report.typing = ShapeTyping.from_pairs(
            (entry.node, entry.label) for entry in report.entries if entry.conforms
        )
        return report

    def _validate_graph_parallel(self, label_list: Sequence[ShapeLabel],
                                 jobs: int) -> ValidationReport:
        """Validate reference-graph components concurrently across processes.

        The scheduler walks the condensation of the node reference graph
        level by level (each level is an antichain of mutually-independent
        components), validates whole components as units in worker processes,
        and lets only **settled** verdicts cross process boundaries: each
        task is seeded with the settled verdicts of the components it
        references, and each worker reports back the verdicts its context
        settled.  Provisional (hypothesis-dependent) state and derivative
        caches stay worker-local.
        """
        entries = self._run_parallel(label_list, jobs)
        if entries is None:
            # zero or one strongly-connected component: there is no
            # independent work to spread, so degenerate gracefully to the
            # serial bulk path instead of paying for an idle process pool.
            return self._validate_graph_serial(label_list)
        subjects = sorted(self.graph.nodes(), key=lambda term: term.sort_key())
        report = ValidationReport()
        conforming: List[Tuple[ObjectTerm, ShapeLabel]] = []
        for node in subjects:
            for label in label_list:
                entry = entries[(node, label)]
                report.entries.append(entry)
                if entry.conforms:
                    conforming.append((node, label))
        report.typing = ShapeTyping.from_pairs(conforming)
        return report

    def _run_parallel(self, label_list: Sequence[ShapeLabel], jobs: int,
                      restrict: Optional[FrozenSet[ObjectTerm]] = None,
                      ) -> Optional[Dict[Tuple[ObjectTerm, ShapeLabel],
                                         ValidationReportEntry]]:
        """Run the parallel scheduler; return the per-pair entries.

        With ``restrict`` (incremental revalidation's affected closure) the
        partition covers only the affected subgraph — its vertices, edges
        and worker snapshot are proportional to the closure, never to the
        graph — and only restricted nodes get work pairs; the settled
        verdicts of everything a restricted component depends on (external
        targets, unrestricted members) are *seeded* into its batches exactly
        like upstream components in a full run — the merge protocol does not
        care whether a settled fact comes from another component or from a
        previous run.  Returns ``None`` when the partition degenerates
        (≤ 1 component) and the caller should use the serial path.
        """
        from concurrent.futures import ProcessPoolExecutor

        from .partition import partition_reference_graph

        if not self.shared_context:
            raise ValueError(
                "parallel bulk validation shares settled verdicts across "
                "components and is incompatible with shared_context=False "
                "(the per-node baseline); use jobs=1 instead"
            )
        if self.subject_filter is not None:
            raise ValueError(
                "parallel bulk validation is incompatible with a "
                "subject_filter (shard workers validate their owned subset "
                "serially); use jobs=1 instead"
            )
        spec = self._worker_engine_spec
        if spec is None:
            raise ValueError(
                "parallel bulk validation needs an engine constructible by "
                "name ('derivatives' or 'backtracking') so worker processes "
                "can rebuild it; engine objects cannot be shipped"
            )

        # the compiled schema tightens the partition (references whose target
        # the prefilter settles locally need no scheduling edge) and ships to
        # every worker so nothing is recompiled per process.
        compiled = self.compiled
        # verdicts settled by earlier runs carry over, exactly as in the
        # serial shared-context path; new ones are merged back afterwards.
        context = self._bulk_context()
        generation = getattr(self.graph, "generation", None)
        scan: Optional[Set[ObjectTerm]] = None
        if restrict is not None:
            index = self._schema_reference_index()
            scan = self._restrict_scan_set(restrict, context, index)
            partition = partition_reference_graph(
                self.graph, self.schema, compiled=compiled,
                restrict_to=scan, index=index)
        else:
            partition = partition_reference_graph(
                self.graph, self.schema, compiled=compiled,
                index=self._schema_reference_index())
        if len(partition.components) <= 1:
            return None
        subject_set = set(self.graph.nodes())

        # per-component work lists: report pairs for subjects, plus the
        # labels incoming references may demand of any node.
        component_pairs: List[List[Tuple[ObjectTerm, ShapeLabel]]] = []
        for component in partition.components:
            pairs: List[Tuple[ObjectTerm, ShapeLabel]] = []
            for node in sorted(component, key=lambda term: term.sort_key()):
                if restrict is not None and node not in restrict:
                    # scan-expansion (or demanded) node: work pairs only for
                    # the demanded labels the context has not settled —
                    # settled ones are seeded below instead.
                    wanted = [
                        label
                        for label in sorted(partition.demanded.get(node, ()))
                        if not context.is_confirmed(node, label)
                        and not context.is_failed(node, label)
                    ]
                else:
                    wanted = list(label_list) if node in subject_set else []
                    for label in sorted(partition.demanded.get(node, ())):
                        if label not in wanted:
                            wanted.append(label)
                pairs.extend((node, label) for label in wanted)
            component_pairs.append(pairs)

        settled: Dict[ObjectTerm, List[Tuple[ShapeLabel, bool]]] = {}
        seed_confirmed, seed_failed = context.settled_verdicts()
        for node, label in seed_confirmed:
            settled.setdefault(node, []).append((label, True))
        for node, label in seed_failed:
            settled.setdefault(node, []).append((label, False))

        # the snapshot must describe the same graph the partition was derived
        # from: if anything mutated the graph between partitioning and
        # capture, the stamped generation moves past the one recorded above.
        snapshot = self.graph.snapshot(partition.nodes)
        if snapshot.generation != generation:
            raise StaleSnapshotError(
                f"graph mutated during parallel scheduling (generation "
                f"{generation} -> {snapshot.generation}); re-run validation"
            )
        # the signature cache itself stays parent-local (verdict tables must
        # not cross process boundaries); workers rebuild a private one from
        # this recipe, exactly like the derivative cache.
        signature_cache = self.signature_cache
        signature_spec = ((True, signature_cache.max_entries)
                          if signature_cache is not None else None)
        init_args = (self.schema, spec, snapshot, self.max_recursion_depth,
                     sys.getrecursionlimit(), compiled, signature_spec)
        entries: Dict[Tuple[ObjectTerm, ShapeLabel], ValidationReportEntry] = {}
        new_confirmed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        new_failed: List[Tuple[ObjectTerm, ShapeLabel]] = []
        workers = min(jobs, len(partition.components))
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_parallel_worker_init,
                                 initargs=init_args) as pool:
            for level in partition.levels:
                futures = []
                for batch in _balance_batches(level, component_pairs, jobs):
                    pairs = [pair for comp_index in batch
                             for pair in component_pairs[comp_index]]
                    if not pairs:
                        continue
                    # seed the task with every settled verdict about the
                    # nodes this batch references outside itself — plus, on
                    # restricted runs, the still-valid verdicts of batch
                    # members that need no re-run.
                    targets: set = set()
                    for comp_index in batch:
                        targets.update(partition.external_targets[comp_index])
                        if restrict is not None:
                            targets.update(
                                node for node in partition.components[comp_index]
                                if node not in restrict
                            )
                    batch_confirmed: List[Tuple[ObjectTerm, ShapeLabel]] = []
                    batch_failed: List[Tuple[ObjectTerm, ShapeLabel]] = []
                    for node in targets:
                        for label, verdict in settled.get(node, ()):
                            bucket = batch_confirmed if verdict else batch_failed
                            bucket.append((node, label))
                    futures.append(pool.submit(
                        _parallel_worker_run, pairs, batch_confirmed, batch_failed))
                for future in futures:
                    (worker_entries, confirmed, failed,
                     worker_stats) = future.result()
                    context.stats = context.stats.merge(worker_stats)
                    for entry in worker_entries:
                        entries[(entry.node, entry.label)] = entry
                    for pair in confirmed:
                        settled.setdefault(pair[0], []).append((pair[1], True))
                        new_confirmed.append(pair)
                    for pair in failed:
                        settled.setdefault(pair[0], []).append((pair[1], False))
                        new_failed.append(pair)
        # the merge protocol: only settled verdicts enter the shared context.
        context.seed_settled(new_confirmed, new_failed)
        return entries

    # -- session hooks --------------------------------------------------------------
    @property
    def maintained_generation(self) -> Optional[int]:
        """Graph generation of the maintained baseline (None before a run).

        The service layer stamps this into every response so clients can
        invalidate their local verdict caches when the graph moves.
        """
        return self._incremental_generation

    def maintained_entry(self, node: ObjectTerm,
                         label: Union[ShapeLabel, str, None] = None
                         ) -> Optional[ValidationReportEntry]:
        """Serve a ``(node, label)`` verdict from the maintained baseline.

        This is the warm read path of validation-as-a-service: the entry
        comes straight from the delta-updated table the last
        ``validate_graph`` / ``revalidate`` round left behind — no engine, no
        context, no fresh run.  Returns ``None`` when no baseline exists or
        the pair is not part of it (unknown subject, label outside the
        baseline's label set).  Callers are responsible for checking
        :attr:`maintained_generation` against the graph's generation; the
        entry describes the graph *as of the baseline*.
        """
        if self._incremental_entries is None:
            return None
        return self._incremental_entries.get((node, self._resolve_label(label)))

    # -- incremental revalidation --------------------------------------------------
    def revalidate(self, labels: Optional[Sequence[Union[ShapeLabel, str]]] = None,
                   jobs: Optional[int] = None,
                   allow_full_rebuild: bool = True) -> RevalidationResult:
        """Revalidate only what the graph's mutations can have changed.

        Consumes the graph's change journal against the last full
        ``validate_graph`` baseline: the dirty subjects are closed under
        reverse reference-reachability (:func:`repro.shex.partition.affected_nodes`),
        the shared context drops exactly those nodes' settled verdicts
        (:meth:`ValidationContext.retract_nodes`), and only the affected
        subjects are re-run — through the serial bulk loop or, with
        ``jobs > 1``, through the parallel scheduler restricted to the
        affected components.  Everything else (verdicts, HAMT typing entries,
        report entries) is reused as-is.

        Falls back to a full ``validate_graph`` — flagged via
        ``full_rebuild`` — when no baseline exists, the label set changed,
        the journal overflowed, ``shared_context`` is off, or the shared
        context was rebuilt behind the baseline's back.  Verdicts are
        identical to a fresh full run either way.  With
        ``allow_full_rebuild=False`` the fallback raises
        :class:`IncrementalFallback` instead, so services can refuse (or
        surface) the unbounded re-run.
        """
        if self.schema is None:
            raise SchemaError("revalidate requires a schema")
        label_list = tuple(
            self._resolve_label(label) for label in labels
        ) if labels else tuple(self.schema.labels())
        n_jobs = self.jobs if jobs is None else jobs

        def full_rebuild(reason: str, message: str) -> RevalidationResult:
            if not allow_full_rebuild:
                raise IncrementalFallback(reason, message)
            report = self.validate_graph(labels=label_list, jobs=n_jobs)
            return RevalidationResult(
                report=report, delta=report, dirty=frozenset(),
                affected=frozenset(entry.node for entry in report.entries),
                full_rebuild=True,
            )

        if not self._incremental_baseline_valid(label_list):
            return full_rebuild(
                "no-baseline",
                "no usable incremental baseline (first run, label-set change "
                "or invalidated shared context); a full run is required")
        dirty = self.graph.changes_since(self._incremental_generation)
        if dirty is None:
            # journal overflow (or truncation): the change set is unknowable.
            return full_rebuild(
                "journal-overflow",
                "the graph's change journal overflowed since the baseline; "
                "the change set is unknowable and a full run is required")
        table = self._incremental_entries
        if not dirty:
            report = self._assemble_incremental_report(
                label_list, table, self._incremental_typing)
            return RevalidationResult(
                report=report, delta=ValidationReport(), dirty=dirty,
                affected=frozenset(), full_rebuild=False,
            )

        from .partition import affected_nodes

        affected = affected_nodes(self.graph, self.schema, dirty,
                                  index=self._schema_reference_index(),
                                  compiled=self.compiled)
        context = self._context
        retracted = context.retract_nodes(affected)
        # the retained context is now consistent with the mutated graph:
        # re-key it so the bulk machinery below (and later calls) reuse it
        # instead of rebuilding from scratch.
        self._context_key = (self.graph, self.schema, self.engine,
                             self.compiled, self.max_recursion_depth,
                             self.graph.generation)

        subject_set = set(self.graph.nodes())
        affected_subjects = sorted(
            (node for node in affected
             if node in subject_set and self._owns(node)),
            key=lambda term: term.sort_key(),
        )
        new_entries: Dict[Tuple[ObjectTerm, ShapeLabel], ValidationReportEntry] = {}
        if n_jobs is not None and n_jobs > 1 and affected_subjects:
            try:
                parallel_entries = self._run_parallel(label_list, n_jobs,
                                                      restrict=affected)
            except IncrementalFallback as error:
                # a scheduler (e.g. the resident shard fleet) declared the
                # restricted run unanswerable; honour the caller's rebuild
                # policy exactly like a coordinator-detected fallback.
                return full_rebuild(error.reason, str(error))
            except Exception:
                # the scheduler died mid-round (a fleet worker crash, say):
                # no baseline state has moved yet, but the context key was
                # already advanced to the mutated generation.  Restore it to
                # the baseline generation so the retained baseline stays
                # usable and a retried round can still answer incrementally
                # (the retraction above is idempotent — the retry recomputes
                # the same affected set and retracts the same nodes).
                self._context_key = (self.graph, self.schema, self.engine,
                                     self.compiled,
                                     self.max_recursion_depth,
                                     self._incremental_generation)
                raise
        else:
            parallel_entries = None
        if parallel_entries is not None:
            new_entries = parallel_entries
        elif affected_subjects:
            entries_list = self._validate_pairs_serial(context, label_list,
                                                       affected_subjects)
            new_entries = {(entry.node, entry.label): entry
                           for entry in entries_list}

        # delta-update the baseline table: drop every affected pair (this
        # covers subjects that no longer exist), then insert the re-runs.
        for node in affected:
            for label in label_list:
                table.pop((node, label), None)
        delta_entries: List[ValidationReportEntry] = []
        for node in affected_subjects:
            for label in label_list:
                entry = new_entries[(node, label)]
                table[(node, label)] = entry
                delta_entries.append(entry)
        self._incremental_generation = self.graph.generation

        delta = ValidationReport(entries=delta_entries)
        delta.typing = ShapeTyping.from_pairs(
            (entry.node, entry.label) for entry in delta_entries if entry.conforms
        )
        # the full report's typing is maintained incrementally too: drop the
        # affected nodes' associations (persistent dissoc), fold the delta's
        # back in — O(affected log n), never O(report).
        typing = self._incremental_typing.without_nodes(affected)
        typing = typing.combine(delta.typing)
        self._incremental_typing = typing
        report = self._assemble_incremental_report(label_list, table, typing)
        return RevalidationResult(
            report=report, delta=delta, dirty=dirty,
            affected=affected, full_rebuild=False, retracted=retracted,
        )

    def _restrict_scan_set(self, restrict: FrozenSet[ObjectTerm],
                           context: ValidationContext,
                           index) -> Set[ObjectTerm]:
        """Expand a restricted closure over demanded-but-unsettled targets.

        Workers re-running only ``restrict`` must be able to derive every
        reference target whose demanded verdicts the context has NOT settled,
        transitively: a seed cannot cover those, so they need work pairs,
        scheduling edges and snapshot coverage like any closure member.
        Typically the expansion is empty — a full baseline settles everything
        it demands — but a label-subset baseline can leave demanded chains
        unsettled.  Shared by the SCC scheduler and the hash-sharded service
        scheduler (:class:`repro.service.sharding.ShardedValidator`).
        """
        scan = set(restrict)
        frontier: List[ObjectTerm] = list(scan)
        while frontier:
            source = frontier.pop()
            if isinstance(source, Literal):
                continue
            for triple in self.graph.triples(subject=source):
                target = triple.object
                if isinstance(target, Literal) or target in scan:
                    continue
                if any(not context.is_confirmed(target, label)
                       and not context.is_failed(target, label)
                       for label in index.labels_for(triple.predicate)):
                    scan.add(target)
                    frontier.append(target)
        return scan

    def _schema_reference_index(self):
        """The schema's :class:`~repro.shex.partition.ReferenceIndex`, cached
        per schema object so repeated revalidation rounds (and the parallel
        scheduler) never re-walk the shape expressions."""
        from .partition import ReferenceIndex

        if self._reference_index is None \
                or self._reference_index_schema is not self.schema:
            self._reference_index = ReferenceIndex(self.schema)
            self._reference_index_schema = self.schema
        return self._reference_index

    def _incremental_baseline_valid(self, label_list: Tuple[ShapeLabel, ...]) -> bool:
        """True when the last full run's state is still incrementally usable.

        Beyond a baseline existing for the same label set, the retained
        shared context must still be the one that produced it: the identity
        components of the context key must match the validator's current
        sources, and the key's generation must equal the baseline generation
        (if anything rebuilt or mutated the context since — a ``validate_node``
        after an unseen mutation, say — its verdicts no longer pair with the
        baseline's entries).
        """
        if not self.shared_context or self._incremental_entries is None \
                or self._incremental_labels != label_list \
                or self._context is None:
            return False
        key = self._context_key
        return (key is not None
                and key[0] is self.graph
                and key[1] is self.schema
                and key[2] is self.engine
                and key[3] is self.compiled
                and key[4] == self.max_recursion_depth
                and key[5] == self._incremental_generation)

    def _assemble_incremental_report(
        self, label_list: Sequence[ShapeLabel],
        table: Dict[Tuple[ObjectTerm, ShapeLabel], ValidationReportEntry],
        typing: ShapeTyping,
    ) -> ValidationReport:
        """Build the full report from the baseline table, canonical order."""
        report = ValidationReport(typing=typing)
        entries = report.entries
        for node in sorted(self.graph.nodes(), key=lambda term: term.sort_key()):
            if not self._owns(node):
                continue
            for label in label_list:
                entries.append(table[(node, label)])
        return report

    # -- helpers -----------------------------------------------------------------
    def _resolve_label(self, label: Union[ShapeLabel, str, None]) -> ShapeLabel:
        if label is None:
            if self.schema is None or self.schema.start is None:
                raise SchemaError("no shape label given and the schema has no start shape")
            return self.schema.start
        if isinstance(label, ShapeLabel):
            return label
        return ShapeLabel(label)


# -- the bulk prefilter fast lane ---------------------------------------------------
def _decided_entry(node: ObjectTerm, label: ShapeLabel,
                   decision) -> ValidationReportEntry:
    """Build a report entry for a prefilter-decided ``(node, label)`` pair.

    The fast lane of the bulk paths: when the compiled-schema prefilter
    settles a pair, it never reaches
    :meth:`ValidationContext.check_reference` — no matching frame, no
    hypothesis bookkeeping, no per-entry statistics snapshotting.  The
    verdict itself was already recorded in the context by
    ``prefilter_node`` / ``prefilter_check``.
    """
    if decision.matched:
        return ValidationReportEntry(
            node=node, label=label, conforms=True,
            stats=MatchStats(prefilter_accepts=1),
        )
    # the entry carries the node and label already; reusing the memoised
    # reason string verbatim keeps the reject lane allocation-light
    return ValidationReportEntry(
        node=node, label=label, conforms=False,
        reason=decision.reason,
        stats=MatchStats(prefilter_rejects=1),
    )


# -- the signature dedupe lane ------------------------------------------------------
def _signature_probe(context: ValidationContext, cache: SignatureCache,
                     node: ObjectTerm, label: ShapeLabel
                     ) -> Optional[ValidationReportEntry]:
    """Answer ``(node, label)`` from the signature cache, if possible.

    Returns ``None`` when the pair is already settled in the context (the
    settled lane of ``check_reference`` is cheaper and keeps its own reason
    strings), the subject is signature-open (``node_signature`` returned
    ``None``), or the signature has no cached verdict yet.  On a hit the
    verdict is recorded in the context — exactly what a full engine run
    would have settled — so later references to ``node`` reuse it.
    """
    if context.is_confirmed(node, label) or context.is_failed(node, label):
        return None
    stats = context.stats
    start = perf_counter()
    signature = context.node_signature(node)
    cached = cache.lookup(signature, label) if signature is not None else None
    stats.signature_time += perf_counter() - start
    if signature is None:
        return None
    if cached is None:
        stats.signature_misses += 1
        return None
    conforms, reason = cached
    stats.signature_hits += 1
    if conforms:
        context.confirm(node, label)
    else:
        context.record_failure(node, label)
    return ValidationReportEntry(node=node, label=label, conforms=conforms,
                                 reason=reason,
                                 stats=MatchStats(signature_hits=1))


def _signature_store(context: ValidationContext, cache: SignatureCache,
                     node: ObjectTerm, label: ShapeLabel,
                     entry: ValidationReportEntry) -> None:
    """Record an engine-settled verdict under the subject's signature.

    Only *settled* outcomes are stored: budget-limited entries and verdicts
    the context did not settle (still provisional behind a hypothesis) never
    enter the cache — the two soundness gates of :class:`SignatureCache`.
    """
    if entry.limit_exceeded:
        return
    if entry.conforms:
        if not context.is_confirmed(node, label):
            return
    elif not context.is_failed(node, label):
        return
    stats = context.stats
    start = perf_counter()
    signature = context.node_signature(node)
    stats.signature_time += perf_counter() - start
    if signature is None:
        return
    reason = "" if entry.conforms else (
        "neighbourhood signature matches a structure that does not "
        f"satisfy {label}")
    cache.store(signature, label, entry.conforms, reason)
    stats.signature_dedupes += 1


def _prefilter_signature_store(context: ValidationContext, cache: SignatureCache,
                               node: ObjectTerm, label: ShapeLabel,
                               decision) -> None:
    """Record a prefilter-decided verdict under the subject's signature.

    Sound for the same reason the engine-path store is: everything the
    prefilter consults — the predicate multiset and the screenable
    constraint verdicts of each object — is a pure function of the
    canonical neighbourhood signature, so equal signatures always replay
    the same decision.  Storing it lets later lookalike subjects skip the
    prefilter scan too, not just the engine run.  The prefilter's reason
    strings name predicates, never the node, so serving them verbatim to a
    lookalike stays accurate.
    """
    stats = context.stats
    start = perf_counter()
    signature = context.node_signature(node)
    stats.signature_time += perf_counter() - start
    if signature is None:
        return
    cache.store(signature, label, decision.matched, decision.reason)
    stats.signature_dedupes += 1


# -- parallel scheduling helpers ---------------------------------------------------
def _make_engine_spec(engine: Union[str, object, None],
                      engine_options: Mapping[str, object]) -> Optional[tuple]:
    """Build the picklable ``(name, options, cache_bound)`` worker recipe.

    Worker processes rebuild their engine from this spec instead of receiving
    the parent's engine object: a shared :class:`DerivativeCache` instance
    must not cross process boundaries (each worker keeps a private one), so a
    cache instance is replaced by ``True`` plus its ``max_entries`` bound.
    Engine *objects* passed to the validator cannot be shipped; the spec is
    ``None`` then and parallel validation refuses to run.
    """
    if engine is not None and not isinstance(engine, str):
        return None
    name = engine if isinstance(engine, str) else "derivatives"
    options = dict(engine_options)
    cache_option = options.get("cache")
    cache_bound = None
    if isinstance(cache_option, DerivativeCache):
        options["cache"] = True
        cache_bound = cache_option.max_entries
    return (name, options, cache_bound)


def _balance_batches(level: Sequence[int],
                     component_pairs: Sequence[Sequence[tuple]],
                     jobs: int) -> List[List[int]]:
    """Split one condensation level into at most ``jobs`` balanced batches.

    Components in a level are mutually independent, so any grouping is
    correct; longest-processing-time-first keeps the batches' work (number
    of ``(node, label)`` pairs) even without creating one task per tiny
    component.  Deterministic: ties break on component index.
    """
    count = min(max(jobs, 1), len(level))
    if count == 0:
        return []
    ordered = sorted(level, key=lambda index: (-len(component_pairs[index]), index))
    buckets: List[List[int]] = [[] for _ in range(count)]
    loads = [0] * count
    for comp_index in ordered:
        target = min(range(count), key=lambda bucket: (loads[bucket], bucket))
        buckets[target].append(comp_index)
        loads[target] += len(component_pairs[comp_index])
    return [bucket for bucket in buckets if bucket]


#: per-process worker state: ``(schema, engine, snapshot,
#: max_recursion_depth, compiled, signature_cache, reference_index)``.
_WORKER_STATE: Optional[tuple] = None


def _parallel_worker_init(schema: Schema, engine_spec: tuple,
                          snapshot: NeighbourhoodSnapshot,
                          max_recursion_depth: int,
                          recursion_limit: int,
                          compiled: Optional[CompiledSchema] = None,
                          signature_spec: Optional[tuple] = None) -> None:
    """Initialise one worker process for parallel bulk validation.

    Runs once per worker: rebuilds the engine from its spec (so derivative
    caches are worker-local but persist across that worker's tasks), adopts
    the parent's recursion limit (deep reference chains recurse one Python
    frame per hop), keeps the neighbourhood snapshot for every task, and
    receives the parent's **compiled schema** — unpickled once, never
    recompiled — so worker-side prefilter decisions match the scheduler's.
    With ``signature_spec`` the worker also keeps a private
    :class:`SignatureCache` across its tasks: signatures are pure functions
    of the (snapshot, compiled schema) pair, so cross-task reuse inside one
    worker is sound even though each task builds a fresh context.
    """
    global _WORKER_STATE
    if recursion_limit > sys.getrecursionlimit():
        sys.setrecursionlimit(recursion_limit)
    name, options, cache_bound = engine_spec
    options = dict(options)
    if options.get("cache") is True and cache_bound is not None:
        options["cache"] = DerivativeCache(max_entries=cache_bound)
    engine = get_engine(name, **options)
    if compiled is not None:
        cache = getattr(engine, "cache", None)
        if cache is not None:
            cache.adopt_atoms(compiled.atom_tables())
    signature_cache = None
    if signature_spec is not None:
        signature_cache = SignatureCache(max_entries=signature_spec[1])
    from .partition import ReferenceIndex

    reference_index = ReferenceIndex(schema) if schema is not None else None
    _WORKER_STATE = (schema, engine, snapshot, max_recursion_depth, compiled,
                     signature_cache, reference_index)


def _parallel_worker_run(
    pairs: Sequence[Tuple[ObjectTerm, ShapeLabel]],
    seed_confirmed: Sequence[Tuple[ObjectTerm, ShapeLabel]],
    seed_failed: Sequence[Tuple[ObjectTerm, ShapeLabel]],
) -> tuple:
    """Validate one batch of components inside a worker process.

    A fresh :class:`ValidationContext` is built per task and seeded with the
    settled verdicts of the components this batch references; after the
    batch, only the verdicts the context *settled* are reported back (minus
    the seeds).  Provisional entries — still conditional on an in-progress
    hypothesis — and budget-poisoned outcomes never leave the worker, which
    is what keeps the merge sound under recursion.
    """
    (schema, engine, snapshot, max_recursion_depth, compiled,
     signature_cache, reference_index) = _WORKER_STATE
    context = ValidationContext(snapshot, schema, engine.match_neighbourhood,
                                max_recursion_depth=max_recursion_depth,
                                compiled=compiled,
                                reference_index=reference_index)
    context.signature_cache = signature_cache
    context.seed_settled(seed_confirmed, seed_failed)
    entries: List[ValidationReportEntry] = []
    for node, label in pairs:
        # signature first, prefilter second — the same lane order as the
        # serial bulk path, so reasons and per-entry stats line up across
        # ``--jobs`` settings
        entry = (_signature_probe(context, signature_cache, node, label)
                 if signature_cache is not None else None)
        if entry is None:
            decision = context.prefilter_check(node, label)
            if decision is not None:
                entry = _decided_entry(node, label, decision)
                if signature_cache is not None:
                    _prefilter_signature_store(context, signature_cache, node,
                                               label, decision)
            else:
                before = context.stats.copy()
                result = context.check_reference(node, label)
                entry_stats = context.stats.delta_since(before).merge(result.stats)
                entry = ValidationReportEntry(
                    node=node, label=label, conforms=result.matched,
                    reason=result.reason, stats=entry_stats,
                    limit_exceeded=result.limit_exceeded,
                )
                if signature_cache is not None:
                    _signature_store(context, signature_cache, node, label, entry)
        entries.append(entry)
    confirmed, failed = context.settled_verdicts()
    seeded = set(seed_confirmed)
    seeded.update(seed_failed)
    new_confirmed = [pair for pair in confirmed if pair not in seeded]
    new_failed = [pair for pair in failed if pair not in seeded]
    # the task context is fresh, so its stats are this task's profile delta;
    # the coordinator merges them so per-phase counters survive --jobs runs.
    return entries, new_confirmed, new_failed, context.stats
