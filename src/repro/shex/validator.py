"""Validator façade: the public entry point for RDF validation.

The :class:`Validator` ties together a graph, a schema and one of the
matching engines (derivatives, backtracking or the SPARQL compiler) and
exposes the operations users of the paper's system need:

* ``validate_node(node, label)`` — does one node have one shape?
* ``validate_map({node: label, …})`` — validate a shape map,
* ``infer_typing()`` — the type-inference algorithm of Section 8: compute a
  shape typing assigning to every node the labels it satisfies,
* ``conforming_nodes(label)`` — which nodes have a given shape (Example 2).

Engines are pluggable so the benchmarks can swap implementations while the
surrounding code stays identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..rdf.graph import Graph
from ..rdf.terms import IRI, ObjectTerm, SubjectTerm
from .backtracking import BacktrackingEngine
from .derivatives import DerivativeEngine
from .expressions import ShapeExpr
from .results import MatchResult, MatchStats, ValidationReportEntry
from .schema import Schema, SchemaError, ValidationContext
from .typing import ShapeLabel, ShapeTyping

__all__ = ["Validator", "ValidationReport", "get_engine", "ENGINES"]


#: registry of engine factories keyed by their public names.
ENGINES = {
    "derivatives": DerivativeEngine,
    "backtracking": BacktrackingEngine,
}


def get_engine(engine: Union[str, object, None] = None, **options):
    """Resolve an engine argument into an engine instance.

    ``engine`` may be ``None`` (default: derivatives), the name of a
    registered engine, or an already-built engine object exposing
    ``match_neighbourhood``.
    """
    if engine is None:
        return DerivativeEngine(**options)
    if isinstance(engine, str):
        try:
            factory = ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; available: {sorted(ENGINES)}"
            ) from None
        return factory(**options)
    if hasattr(engine, "match_neighbourhood"):
        return engine
    raise TypeError(f"not a matching engine: {engine!r}")


@dataclass
class ValidationReport:
    """The outcome of validating a shape map or a whole graph."""

    entries: List[ValidationReportEntry] = field(default_factory=list)
    typing: ShapeTyping = field(default_factory=ShapeTyping.empty)

    @property
    def conforms(self) -> bool:
        """True when every requested (node, shape) pair conforms."""
        return all(entry.conforms for entry in self.entries)

    def failures(self) -> List[ValidationReportEntry]:
        """Return the entries that did not conform."""
        return [entry for entry in self.entries if not entry.conforms]

    def entry_for(self, node: ObjectTerm,
                  label: Union[ShapeLabel, str, None] = None) -> Optional[ValidationReportEntry]:
        """Return the report entry for ``node`` (and ``label`` if given)."""
        wanted = None
        if label is not None:
            wanted = label if isinstance(label, ShapeLabel) else ShapeLabel(label)
        for entry in self.entries:
            if entry.node == node and (wanted is None or entry.label == wanted):
                return entry
        return None

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self.entries)

    def total_stats(self) -> MatchStats:
        """Aggregate the per-entry statistics into one record."""
        total = MatchStats()
        for entry in self.entries:
            total.merge(entry.stats)
        return total


class Validator:
    """Validate RDF graphs against Shape Expression schemas.

    Parameters
    ----------
    graph:
        the data graph to validate.
    schema:
        the Shape Expression schema ``(Λ, δ)``; optional when only
        expression-level matching is needed.
    engine:
        ``"derivatives"`` (default), ``"backtracking"`` or an engine object.
    shared_context:
        when True (default) the bulk operations — ``validate_map``,
        ``validate_graph``, ``infer_typing``, ``conforming_nodes`` — thread
        **one** :class:`ValidationContext` through the whole run (and keep it
        across runs), so confirmed/failed ``(node, label)`` verdicts
        propagate instead of being recomputed per node.  Set to False for the
        paper-faithful fresh-context-per-node behaviour.  Graph mutations
        are detected automatically: the shared context is rebuilt on the
        next call when the graph has changed.
    max_recursion_depth:
        recursion budget handed to every context this validator creates.
    engine_options:
        keyword options forwarded to the engine factory (e.g.
        ``simplify=False``, ``budget=10_000`` or ``cache=True`` to give the
        derivative engine a global cross-node derivative cache).
    """

    def __init__(self, graph: Graph, schema: Optional[Schema] = None,
                 engine: Union[str, object, None] = None,
                 shared_context: bool = True,
                 max_recursion_depth: int = 500,
                 **engine_options):
        self.graph = graph
        self.schema = schema
        self.engine = get_engine(engine, **engine_options)
        self.shared_context = shared_context
        self.max_recursion_depth = max_recursion_depth
        self._context: Optional[ValidationContext] = None
        self._context_key: Optional[tuple] = None

    # -- contexts ---------------------------------------------------------------
    def _new_context(self) -> ValidationContext:
        return ValidationContext(self.graph, self.schema,
                                 self.engine.match_neighbourhood,
                                 max_recursion_depth=self.max_recursion_depth)

    def _bulk_context(self) -> Optional[ValidationContext]:
        """The persistent shared context (None when ``shared_context`` is off).

        The context is rebuilt automatically when anything it was derived
        from changed: graph mutations (tracked through
        :attr:`Graph.generation`) or reassignment of ``graph``, ``schema``,
        ``engine`` or ``max_recursion_depth``.
        """
        if not self.shared_context:
            return None
        # objects are compared by identity (and kept referenced so their ids
        # cannot be recycled); the generation captures in-place graph edits.
        sources = (self.graph, self.schema, self.engine,
                   self.max_recursion_depth,
                   getattr(self.graph, "generation", None))
        stale = (self._context is None or self._context_key is None
                 or any(new is not old
                        for new, old in zip(sources[:3], self._context_key[:3]))
                 or sources[3:] != self._context_key[3:])
        if stale:
            self._context = self._new_context()
            self._context_key = sources
        return self._context

    def reset_context(self) -> None:
        """Drop the persistent shared context explicitly.

        Graph mutations and graph/schema/engine reassignment are detected
        automatically; this is only needed when state the matcher consults
        changed *behind* one of those objects (e.g. an engine option was
        flipped in place).
        """
        self._context = None
        self._context_key = None

    # -- expression-level API -----------------------------------------------------
    def node_matches_expression(self, node: SubjectTerm, expr: ShapeExpr) -> MatchResult:
        """Match the neighbourhood of ``node`` against a bare expression."""
        context = self._new_context() if self.schema is not None else None
        neighbourhood = self.graph.neighbourhood(node)
        return self.engine.match_neighbourhood(expr, neighbourhood, context)

    # -- schema-level API ----------------------------------------------------------
    def validate_node(self, node: SubjectTerm,
                      label: Union[ShapeLabel, str, None] = None,
                      context: Optional[ValidationContext] = None
                      ) -> ValidationReportEntry:
        """Validate one node against one shape label (default: the start shape).

        A fresh context is used unless ``context`` is given (the bulk
        operations pass their shared context here).  The entry's stats are an
        independent snapshot of the work done *for this entry* — never an
        alias of the (possibly shared) context record.
        """
        label = self._resolve_label(label)
        if context is None:
            context = self._new_context()
        before = context.stats.copy()
        result = context.check_reference(node, label)
        entry_stats = context.stats.delta_since(before).merge(result.stats)
        return ValidationReportEntry(
            node=node, label=label, conforms=result.matched,
            reason=result.reason, stats=entry_stats,
            limit_exceeded=result.limit_exceeded,
        )

    def validate_map(self, shape_map: Mapping[SubjectTerm, Union[ShapeLabel, str]]
                     ) -> ValidationReport:
        """Validate every ``node → label`` association of a shape map."""
        context = self._bulk_context()
        report = ValidationReport()
        typing = ShapeTyping.empty()
        for node, label in shape_map.items():
            entry = self.validate_node(node, label, context=context)
            report.entries.append(entry)
            if entry.conforms:
                typing = typing.add(node, self._resolve_label(label))
        report.typing = typing
        return report

    def infer_typing(self, nodes: Optional[Iterable[SubjectTerm]] = None,
                     labels: Optional[Iterable[Union[ShapeLabel, str]]] = None
                     ) -> ShapeTyping:
        """Compute a shape typing for the graph (Section 8).

        Tries every combination of the given nodes (default: every subject
        node of the graph) and labels (default: every label of the schema)
        and returns the typing containing the associations that validate.
        With ``shared_context`` enabled, verdicts established while checking
        one combination are reused by every later one.
        """
        if self.schema is None:
            raise SchemaError("infer_typing requires a schema")
        node_list = list(nodes) if nodes is not None else sorted(
            self.graph.nodes(), key=lambda term: term.sort_key()
        )
        label_list = [self._resolve_label(label) for label in labels] if labels \
            else list(self.schema.labels())
        context = self._bulk_context()
        typing = ShapeTyping.empty()
        for node in node_list:
            for label in label_list:
                entry = self.validate_node(node, label, context=context)
                if entry.conforms:
                    typing = typing.add(node, label)
        return typing

    def conforming_nodes(self, label: Union[ShapeLabel, str, None] = None
                         ) -> List[SubjectTerm]:
        """Return the subject nodes that conform to ``label`` (Example 2)."""
        label = self._resolve_label(label)
        context = self._bulk_context()
        nodes = sorted(self.graph.nodes(), key=lambda term: term.sort_key())
        return [node for node in nodes
                if self.validate_node(node, label, context=context).conforms]

    def validate_graph(self, labels: Optional[Sequence[Union[ShapeLabel, str]]] = None
                       ) -> ValidationReport:
        """Validate every subject node against every (or the given) labels."""
        if self.schema is None:
            raise SchemaError("validate_graph requires a schema")
        label_list = [self._resolve_label(label) for label in labels] if labels \
            else list(self.schema.labels())
        context = self._bulk_context()
        report = ValidationReport()
        typing = ShapeTyping.empty()
        for node in sorted(self.graph.nodes(), key=lambda term: term.sort_key()):
            for label in label_list:
                entry = self.validate_node(node, label, context=context)
                report.entries.append(entry)
                if entry.conforms:
                    typing = typing.add(node, label)
        report.typing = typing
        return report

    # -- helpers -----------------------------------------------------------------
    def _resolve_label(self, label: Union[ShapeLabel, str, None]) -> ShapeLabel:
        if label is None:
            if self.schema is None or self.schema.start is None:
                raise SchemaError("no shape label given and the schema has no start shape")
            return self.schema.start
        if isinstance(label, ShapeLabel):
            return label
        return ShapeLabel(label)
