"""SPARQL subset engine: the baseline substrate of Section 3 of the paper.

The paper argues that RDF validation *can* be expressed with SPARQL queries
(Example 4 shows the Person shape compiled by hand) but that the result is
unwieldy and cannot express recursion.  To reproduce that comparison without
an external triple store, this package implements a query engine for the
SPARQL 1.1 fragment those validation queries need:

* ``SELECT`` / ``ASK`` query forms,
* basic graph patterns, ``FILTER``, ``OPTIONAL``, ``UNION``, sub-``SELECT``,
* ``GROUP BY`` / ``HAVING`` with ``COUNT`` (plus ``SUM``/``MIN``/``MAX``/``AVG``),
* the expression built-ins used for validation (``isLiteral``, ``isIRI``,
  ``isBlank``, ``bound``, ``datatype``, ``str``, ``lang``, ``regex`` …).

Usage::

    from repro.rdf import Graph
    from repro.sparql import ask, select

    graph = Graph.parse(turtle_text)
    ok = ask(graph, "ASK { ?s <http://xmlns.com/foaf/0.1/name> ?name }")
"""

from .ast_nodes import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryOp,
    Expression,
    FilterPattern,
    FunctionCall,
    GroupPattern,
    OptionalPattern,
    Projection,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePattern,
    UnaryOp,
    UnionPattern,
    Variable,
    VariableExpr,
)
from .errors import SparqlError, SparqlEvaluationError, SparqlParseError
from .evaluator import QueryResult, Solution, ask, evaluate_query, execute, select
from .parser import parse_query

__all__ = [
    "parse_query", "evaluate_query", "execute", "ask", "select",
    "QueryResult", "Solution",
    "Variable", "TriplePattern",
    "Expression", "VariableExpr", "TermExpr", "FunctionCall", "UnaryOp", "BinaryOp",
    "Aggregate",
    "BGP", "GroupPattern", "OptionalPattern", "UnionPattern", "FilterPattern",
    "SubSelectPattern",
    "Projection", "SelectQuery", "AskQuery", "Query",
    "SparqlError", "SparqlParseError", "SparqlEvaluationError",
]
