"""Abstract syntax tree for the SPARQL subset.

The engine supports the fragment of SPARQL 1.1 that RDF validation queries
need (the paper's Example 4 exercises essentially all of it): ``SELECT`` and
``ASK`` forms, basic graph patterns, ``FILTER``, ``OPTIONAL``, ``UNION``,
nested sub-``SELECT``, ``GROUP BY`` / ``HAVING`` with ``COUNT`` aggregates,
``DISTINCT``, ``LIMIT`` / ``OFFSET`` and the usual expression language.

The AST nodes are plain frozen dataclasses; evaluation lives in
:mod:`repro.sparql.evaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..rdf.terms import IRI, Literal, ObjectTerm

__all__ = [
    "Variable",
    "TriplePattern",
    "Expression", "VariableExpr", "TermExpr", "FunctionCall", "UnaryOp", "BinaryOp",
    "Aggregate",
    "Pattern", "BGP", "GroupPattern", "OptionalPattern", "UnionPattern",
    "FilterPattern", "SubSelectPattern",
    "Projection", "SelectQuery", "AskQuery", "Query",
]


class Variable:
    """A SPARQL variable (``?name`` or ``$name``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must not be empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Variable is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"


#: a position in a triple pattern: either a concrete term or a variable.
PatternTerm = Union[Variable, IRI, Literal, ObjectTerm]


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern with variables allowed in any position."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> Tuple[Variable, ...]:
        """Return the variables mentioned by this pattern."""
        return tuple(term for term in (self.subject, self.predicate, self.object)
                     if isinstance(term, Variable))


# ----------------------------------------------------------------------- expressions
class Expression:
    """Base class for filter/projection expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class VariableExpr(Expression):
    """A variable used inside an expression."""

    variable: Variable


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant RDF term used inside an expression."""

    term: ObjectTerm


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A built-in function call: ``isLiteral(?o)``, ``datatype(?o)``, ``regex`` …"""

    name: str
    arguments: Tuple[Expression, ...]


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operator: ``!``, ``-`` or ``+``."""

    operator: str
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator: ``&&``, ``||``, comparisons and arithmetic."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregate expression (only ``COUNT`` is needed by the validator)."""

    name: str
    argument: Optional[Expression]  # None means COUNT(*)
    distinct: bool = False


# --------------------------------------------------------------------------- patterns
class Pattern:
    """Base class for graph patterns."""

    __slots__ = ()


@dataclass(frozen=True)
class BGP(Pattern):
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: Tuple[TriplePattern, ...]


@dataclass(frozen=True)
class GroupPattern(Pattern):
    """A group ``{ … }``: elements joined in order, filters applied at the end."""

    elements: Tuple[Pattern, ...]
    filters: Tuple[Expression, ...] = ()


@dataclass(frozen=True)
class OptionalPattern(Pattern):
    """``OPTIONAL { … }`` (left join with the surrounding group)."""

    pattern: GroupPattern


@dataclass(frozen=True)
class UnionPattern(Pattern):
    """``{ … } UNION { … }`` (may chain more than two branches)."""

    branches: Tuple[GroupPattern, ...]


@dataclass(frozen=True)
class FilterPattern(Pattern):
    """A ``FILTER`` constraint kept in document order inside a group."""

    expression: Expression


@dataclass(frozen=True)
class SubSelectPattern(Pattern):
    """A nested ``SELECT`` used as a graph pattern."""

    query: "SelectQuery"


# ----------------------------------------------------------------------------- queries
@dataclass(frozen=True)
class Projection:
    """One projected column: a plain variable or ``(expression AS ?alias)``."""

    variable: Variable
    expression: Optional[Expression] = None  # None projects the variable itself


@dataclass(frozen=True)
class SelectQuery:
    """A ``SELECT`` query (possibly nested as a sub-select)."""

    projections: Tuple[Projection, ...]          # empty tuple means SELECT *
    where: GroupPattern
    distinct: bool = False
    group_by: Tuple[Variable, ...] = ()
    having: Tuple[Expression, ...] = ()
    order_by: Tuple[Tuple[Expression, bool], ...] = ()   # (expression, ascending)
    limit: Optional[int] = None
    offset: Optional[int] = None

    @property
    def select_all(self) -> bool:
        """True for ``SELECT *``."""
        return not self.projections


@dataclass(frozen=True)
class AskQuery:
    """An ``ASK`` query."""

    where: GroupPattern


Query = Union[SelectQuery, AskQuery]
