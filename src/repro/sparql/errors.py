"""Exception hierarchy for the SPARQL subset engine."""

from __future__ import annotations

__all__ = ["SparqlError", "SparqlParseError", "SparqlEvaluationError"]


class SparqlError(Exception):
    """Base class of every error raised by :mod:`repro.sparql`."""


class SparqlParseError(SparqlError):
    """Raised when a query cannot be parsed.

    Carries the line/column of the offending token when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")


class SparqlEvaluationError(SparqlError):
    """Raised when a query cannot be evaluated (type errors, unknown functions…)."""
