"""Evaluator for the SPARQL subset over :class:`repro.rdf.Graph`.

The evaluator follows the standard SPARQL algebra on multisets of solution
mappings:

* basic graph patterns are evaluated by index-backed pattern matching and
  hash joins on shared variables,
* ``OPTIONAL`` is a left join, ``UNION`` a multiset union,
* ``FILTER`` expressions use the three-valued SPARQL logic (type errors make
  a filter condition fail rather than abort the query),
* ``GROUP BY`` / ``HAVING`` with ``COUNT``/``SUM``/``MIN``/``MAX``/``AVG``
  aggregates, sub-``SELECT``, ``DISTINCT``, ``ORDER BY``, ``LIMIT`` and
  ``OFFSET`` are supported because the validation queries of Section 3 of the
  paper rely on them.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Dict, List, Optional, Tuple, Union

from ..rdf.datatypes import to_python_value
from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, ObjectTerm
from .ast_nodes import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryOp,
    Expression,
    FilterPattern,
    FunctionCall,
    GroupPattern,
    OptionalPattern,
    Pattern,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePattern,
    UnaryOp,
    UnionPattern,
    Variable,
    VariableExpr,
)
from .errors import SparqlEvaluationError
from .parser import parse_query

__all__ = ["Solution", "QueryResult", "evaluate_query", "execute", "ask", "select"]

#: a solution mapping: variable name → bound RDF term.
Solution = Dict[str, ObjectTerm]


class _ExpressionError(Exception):
    """Internal: SPARQL expression type error (maps to an unbound value)."""


class QueryResult:
    """The result of executing a query.

    For ``SELECT`` queries, behaves like a sequence of solution mappings and
    also exposes ``variables``.  For ``ASK`` queries, ``boolean`` carries the
    verdict and the object is truthy/falsy accordingly.
    """

    def __init__(self, kind: str, solutions: Optional[List[Solution]] = None,
                 variables: Optional[List[str]] = None, boolean: Optional[bool] = None):
        self.kind = kind
        self.solutions = solutions if solutions is not None else []
        self.variables = variables if variables is not None else []
        self.boolean = boolean

    def __iter__(self):
        return iter(self.solutions)

    def __len__(self) -> int:
        return len(self.solutions)

    def __bool__(self) -> bool:
        if self.kind == "ask":
            return bool(self.boolean)
        return bool(self.solutions)

    def bindings_for(self, variable: str) -> List[ObjectTerm]:
        """Return every binding of ``variable`` across the solutions."""
        return [solution[variable] for solution in self.solutions if variable in solution]

    def __repr__(self) -> str:
        if self.kind == "ask":
            return f"QueryResult(ask={self.boolean})"
        return f"QueryResult(select, {len(self.solutions)} solutions)"


# ------------------------------------------------------------------------ evaluation
def evaluate_query(graph: Graph, query: Union[str, Query]) -> QueryResult:
    """Evaluate ``query`` (text or AST) against ``graph``."""
    if isinstance(query, str):
        query = parse_query(query)
    evaluator = _Evaluator(graph)
    if isinstance(query, AskQuery):
        solutions = evaluator.evaluate_group(query.where, [dict()])
        return QueryResult("ask", boolean=bool(solutions))
    if isinstance(query, SelectQuery):
        solutions, variables = evaluator.evaluate_select(query)
        return QueryResult("select", solutions=solutions, variables=variables)
    raise SparqlEvaluationError(f"unsupported query type: {type(query).__name__}")


def execute(graph: Graph, query: Union[str, Query]) -> QueryResult:
    """Alias of :func:`evaluate_query` (mirrors common RDF library naming)."""
    return evaluate_query(graph, query)


def ask(graph: Graph, query: Union[str, Query]) -> bool:
    """Evaluate an ASK query and return its boolean verdict."""
    result = evaluate_query(graph, query)
    if result.kind != "ask":
        raise SparqlEvaluationError("ask() requires an ASK query")
    return bool(result.boolean)


def select(graph: Graph, query: Union[str, Query]) -> List[Solution]:
    """Evaluate a SELECT query and return its solution mappings."""
    result = evaluate_query(graph, query)
    if result.kind != "select":
        raise SparqlEvaluationError("select() requires a SELECT query")
    return result.solutions


class _Evaluator:
    """Stateless helper evaluating patterns against one graph."""

    def __init__(self, graph: Graph):
        self.graph = graph

    # -- groups and patterns -----------------------------------------------------
    def evaluate_group(self, group: GroupPattern,
                       inputs: List[Solution]) -> List[Solution]:
        solutions = inputs
        for element in group.elements:
            solutions = self.evaluate_pattern(element, solutions)
        for constraint in group.filters:
            solutions = [s for s in solutions if self._effective_boolean(constraint, s)]
        return solutions

    def evaluate_pattern(self, pattern: Pattern,
                         inputs: List[Solution]) -> List[Solution]:
        if isinstance(pattern, BGP):
            return self._evaluate_bgp(pattern, inputs)
        if isinstance(pattern, GroupPattern):
            return self.evaluate_group(pattern, inputs)
        if isinstance(pattern, OptionalPattern):
            return self._evaluate_optional(pattern, inputs)
        if isinstance(pattern, UnionPattern):
            results: List[Solution] = []
            for branch in pattern.branches:
                results.extend(self.evaluate_group(branch, list(inputs)))
            return results
        if isinstance(pattern, FilterPattern):
            return [s for s in inputs if self._effective_boolean(pattern.expression, s)]
        if isinstance(pattern, SubSelectPattern):
            sub_solutions, _ = self.evaluate_select(pattern.query)
            return _join(inputs, sub_solutions)
        raise SparqlEvaluationError(f"unsupported pattern: {type(pattern).__name__}")

    def _evaluate_bgp(self, bgp: BGP, inputs: List[Solution]) -> List[Solution]:
        solutions = inputs
        for triple_pattern in bgp.patterns:
            solutions = self._match_pattern(triple_pattern, solutions)
            if not solutions:
                return []
        return solutions

    def _match_pattern(self, pattern: TriplePattern,
                       inputs: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in inputs:
            subject = _substitute(pattern.subject, solution)
            predicate = _substitute(pattern.predicate, solution)
            obj = _substitute(pattern.object, solution)
            lookup_subject = subject if not isinstance(subject, Variable) else None
            lookup_predicate = predicate if not isinstance(predicate, Variable) else None
            lookup_object = obj if not isinstance(obj, Variable) else None
            for triple in self.graph.triples(lookup_subject, lookup_predicate, lookup_object):
                extended = dict(solution)
                consistent = True
                for slot, value in ((subject, triple.subject),
                                    (predicate, triple.predicate),
                                    (obj, triple.object)):
                    if isinstance(slot, Variable):
                        bound = extended.get(slot.name)
                        if bound is None:
                            extended[slot.name] = value
                        elif bound != value:
                            consistent = False
                            break
                if consistent:
                    results.append(extended)
        return results

    def _evaluate_optional(self, pattern: OptionalPattern,
                           inputs: List[Solution]) -> List[Solution]:
        results: List[Solution] = []
        for solution in inputs:
            extended = self.evaluate_group(pattern.pattern, [dict(solution)])
            if extended:
                results.extend(extended)
            else:
                results.append(solution)
        return results

    # -- SELECT ----------------------------------------------------------------------
    def evaluate_select(self, query: SelectQuery) -> Tuple[List[Solution], List[str]]:
        solutions = self.evaluate_group(query.where, [dict()])
        has_aggregates = bool(query.group_by) or any(
            _contains_aggregate(projection.expression)
            for projection in query.projections if projection.expression is not None
        ) or bool(query.having)
        if has_aggregates:
            solutions = self._evaluate_aggregation(query, solutions)
            variables = [projection.variable.name for projection in query.projections]
            if query.group_by:
                variables = [variable.name for variable in query.group_by] + [
                    name for name in variables if name not in
                    {variable.name for variable in query.group_by}
                ]
        else:
            solutions, variables = self._evaluate_projection(query, solutions)
        if query.distinct:
            solutions = _distinct(solutions)
        if query.order_by:
            solutions = self._order(query.order_by, solutions)
        if query.offset:
            solutions = solutions[query.offset:]
        if query.limit is not None:
            solutions = solutions[:query.limit]
        return solutions, variables

    def _evaluate_projection(self, query: SelectQuery,
                             solutions: List[Solution]) -> Tuple[List[Solution], List[str]]:
        if query.select_all:
            variables = sorted({name for solution in solutions for name in solution})
            return solutions, variables
        projected: List[Solution] = []
        for solution in solutions:
            row: Solution = {}
            for projection in query.projections:
                if projection.expression is None:
                    if projection.variable.name in solution:
                        row[projection.variable.name] = solution[projection.variable.name]
                else:
                    try:
                        value = self._evaluate_expression(projection.expression, solution)
                        row[projection.variable.name] = _to_term(value)
                    except _ExpressionError:
                        pass
            projected.append(row)
        return projected, [projection.variable.name for projection in query.projections]

    def _evaluate_aggregation(self, query: SelectQuery,
                              solutions: List[Solution]) -> List[Solution]:
        groups: Dict[Tuple, List[Solution]] = {}
        if query.group_by:
            for solution in solutions:
                key = tuple(
                    _term_key(solution.get(variable.name)) for variable in query.group_by
                )
                groups.setdefault(key, []).append(solution)
        else:
            groups[()] = list(solutions)
            if not solutions:
                groups[()] = []
        results: List[Solution] = []
        for key, members in groups.items():
            if query.group_by and not members:
                continue
            row: Solution = {}
            if query.group_by:
                sample = members[0]
                for variable in query.group_by:
                    if variable.name in sample:
                        row[variable.name] = sample[variable.name]
            passes = True
            for constraint in query.having:
                if not self._effective_boolean_aggregate(constraint, row, members):
                    passes = False
                    break
            if not passes:
                continue
            for projection in query.projections:
                if projection.expression is None:
                    if projection.variable.name not in row and members:
                        sample_value = members[0].get(projection.variable.name)
                        if sample_value is not None:
                            row[projection.variable.name] = sample_value
                else:
                    try:
                        value = self._evaluate_expression(projection.expression, row, members)
                        row[projection.variable.name] = _to_term(value)
                    except _ExpressionError:
                        pass
            results.append(row)
        return results

    def _order(self, order_by, solutions: List[Solution]) -> List[Solution]:
        def sort_key(solution: Solution):
            keys = []
            for expression, ascending in order_by:
                try:
                    value = self._evaluate_expression(expression, solution)
                except _ExpressionError:
                    value = None
                keys.append(_orderable(value, ascending))
            return tuple(keys)

        return sorted(solutions, key=sort_key)

    # -- expressions --------------------------------------------------------------------
    def _effective_boolean(self, expression: Expression, solution: Solution) -> bool:
        try:
            return _ebv(self._evaluate_expression(expression, solution))
        except _ExpressionError:
            return False

    def _effective_boolean_aggregate(self, expression: Expression, row: Solution,
                                     members: List[Solution]) -> bool:
        try:
            return _ebv(self._evaluate_expression(expression, row, members))
        except _ExpressionError:
            return False

    def _evaluate_expression(self, expression: Expression, solution: Solution,
                             group: Optional[List[Solution]] = None):
        if isinstance(expression, VariableExpr):
            value = solution.get(expression.variable.name)
            if value is None:
                raise _ExpressionError(f"unbound variable ?{expression.variable.name}")
            return value
        if isinstance(expression, TermExpr):
            return expression.term
        if isinstance(expression, Aggregate):
            if group is None:
                raise _ExpressionError("aggregate used outside a grouping context")
            return self._evaluate_aggregate(expression, group)
        if isinstance(expression, UnaryOp):
            return self._evaluate_unary(expression, solution, group)
        if isinstance(expression, BinaryOp):
            return self._evaluate_binary(expression, solution, group)
        if isinstance(expression, FunctionCall):
            return self._evaluate_function(expression, solution, group)
        raise SparqlEvaluationError(f"unsupported expression: {type(expression).__name__}")

    def _evaluate_aggregate(self, aggregate: Aggregate, group: List[Solution]):
        name = aggregate.name.upper()
        if aggregate.argument is None:
            values = [dict(member) for member in group]
            if aggregate.distinct:
                values = _distinct(values)
            if name == "COUNT":
                return Literal(len(values))
            raise _ExpressionError(f"{name}(*) is not supported")
        evaluated = []
        for member in group:
            try:
                evaluated.append(self._evaluate_expression(aggregate.argument, member))
            except _ExpressionError:
                continue
        if aggregate.distinct:
            unique = []
            for value in evaluated:
                if value not in unique:
                    unique.append(value)
            evaluated = unique
        if name == "COUNT":
            return Literal(len(evaluated))
        numbers = [_numeric(value) for value in evaluated]
        if not numbers:
            raise _ExpressionError(f"{name} over an empty group")
        if name == "SUM":
            return _number_literal(sum(numbers))
        if name == "MIN":
            return _number_literal(min(numbers))
        if name == "MAX":
            return _number_literal(max(numbers))
        if name == "AVG":
            return _number_literal(sum(numbers) / len(numbers))
        raise _ExpressionError(f"unsupported aggregate {name}")

    def _evaluate_unary(self, expression: UnaryOp, solution: Solution,
                        group: Optional[List[Solution]]):
        if expression.operator == "!":
            operand = expression.operand
            # !bound(?x) must not raise when ?x is unbound
            if isinstance(operand, FunctionCall) and operand.name == "BOUND":
                return Literal(not _ebv(self._evaluate_function(operand, solution, group)))
            return Literal(not _ebv(self._evaluate_expression(operand, solution, group)))
        value = _numeric(self._evaluate_expression(expression.operand, solution, group))
        return _number_literal(-value if expression.operator == "-" else value)

    def _evaluate_binary(self, expression: BinaryOp, solution: Solution,
                         group: Optional[List[Solution]]):
        operator = expression.operator
        if operator == "&&":
            return Literal(
                self._boolean_of(expression.left, solution, group)
                and self._boolean_of(expression.right, solution, group)
            )
        if operator == "||":
            return Literal(
                self._boolean_of(expression.left, solution, group)
                or self._boolean_of(expression.right, solution, group)
            )
        left = self._evaluate_expression(expression.left, solution, group)
        right = self._evaluate_expression(expression.right, solution, group)
        if operator in ("=", "!="):
            equal = _terms_equal(left, right)
            return Literal(equal if operator == "=" else not equal)
        if operator in ("<", ">", "<=", ">="):
            return Literal(_compare(left, right, operator))
        left_number, right_number = _numeric(left), _numeric(right)
        if operator == "+":
            return _number_literal(left_number + right_number)
        if operator == "-":
            return _number_literal(left_number - right_number)
        if operator == "*":
            return _number_literal(left_number * right_number)
        if operator == "/":
            if right_number == 0:
                raise _ExpressionError("division by zero")
            return _number_literal(left_number / right_number)
        raise SparqlEvaluationError(f"unsupported operator {operator!r}")

    def _boolean_of(self, expression: Expression, solution: Solution,
                    group: Optional[List[Solution]]) -> bool:
        try:
            return _ebv(self._evaluate_expression(expression, solution, group))
        except _ExpressionError:
            return False

    def _evaluate_function(self, call: FunctionCall, solution: Solution,
                           group: Optional[List[Solution]]):
        name = call.name
        if name == "BOUND":
            argument = call.arguments[0]
            if not isinstance(argument, VariableExpr):
                raise _ExpressionError("BOUND expects a variable")
            return Literal(argument.variable.name in solution)
        if name == "COALESCE":
            for argument in call.arguments:
                try:
                    return self._evaluate_expression(argument, solution, group)
                except _ExpressionError:
                    continue
            raise _ExpressionError("COALESCE: no bound argument")
        if name == "IF":
            condition = self._boolean_of(call.arguments[0], solution, group)
            chosen = call.arguments[1] if condition else call.arguments[2]
            return self._evaluate_expression(chosen, solution, group)
        arguments = [self._evaluate_expression(argument, solution, group)
                     for argument in call.arguments]
        if name in ("ISIRI", "ISURI"):
            return Literal(isinstance(arguments[0], IRI))
        if name == "ISBLANK":
            return Literal(isinstance(arguments[0], BNode))
        if name == "ISLITERAL":
            return Literal(isinstance(arguments[0], Literal))
        if name == "ISNUMERIC":
            if not isinstance(arguments[0], Literal):
                return Literal(False)
            value = to_python_value(arguments[0])
            return Literal(isinstance(value, (int, float, Decimal))
                           and not isinstance(value, bool))
        if name == "DATATYPE":
            if not isinstance(arguments[0], Literal):
                raise _ExpressionError("DATATYPE expects a literal")
            return arguments[0].datatype
        if name == "STR":
            value = arguments[0]
            if isinstance(value, Literal):
                return Literal(value.lexical)
            if isinstance(value, IRI):
                return Literal(value.value)
            raise _ExpressionError("STR of a blank node")
        if name == "LANG":
            if not isinstance(arguments[0], Literal):
                raise _ExpressionError("LANG expects a literal")
            return Literal(arguments[0].lang or "")
        if name == "LANGMATCHES":
            tag = _string(arguments[0]).lower()
            pattern = _string(arguments[1]).lower()
            if pattern == "*":
                return Literal(bool(tag))
            return Literal(tag == pattern or tag.startswith(pattern + "-"))
        if name == "STRLEN":
            return Literal(len(_string(arguments[0])))
        if name == "REGEX":
            import re as _re

            flags = _string(arguments[2]) if len(arguments) > 2 else ""
            compiled = _re.compile(_string(arguments[1]),
                                   _re.IGNORECASE if "i" in flags else 0)
            return Literal(bool(compiled.search(_string(arguments[0]))))
        if name == "STRSTARTS":
            return Literal(_string(arguments[0]).startswith(_string(arguments[1])))
        if name == "STRENDS":
            return Literal(_string(arguments[0]).endswith(_string(arguments[1])))
        if name == "CONTAINS":
            return Literal(_string(arguments[1]) in _string(arguments[0]))
        if name == "ABS":
            return _number_literal(abs(_numeric(arguments[0])))
        if name == "SAMETERM":
            return Literal(arguments[0] == arguments[1])
        raise _ExpressionError(f"unsupported function {name}")


# ------------------------------------------------------------------------------ helpers
def _substitute(term, solution: Solution):
    if isinstance(term, Variable) and term.name in solution:
        return solution[term.name]
    return term


def _join(left: List[Solution], right: List[Solution]) -> List[Solution]:
    """Hash-free nested-loop join on compatible solution mappings."""
    results: List[Solution] = []
    for left_solution in left:
        for right_solution in right:
            merged = dict(left_solution)
            compatible = True
            for name, value in right_solution.items():
                if name in merged and merged[name] != value:
                    compatible = False
                    break
                merged[name] = value
            if compatible:
                results.append(merged)
    return results


def _distinct(solutions: List[Solution]) -> List[Solution]:
    seen = set()
    unique: List[Solution] = []
    for solution in solutions:
        key = tuple(sorted((name, _term_key(value)) for name, value in solution.items()))
        if key not in seen:
            seen.add(key)
            unique.append(solution)
    return unique


def _term_key(term: Optional[ObjectTerm]):
    if term is None:
        return ("unbound",)
    return term.sort_key()


def _orderable(value, ascending: bool):
    if value is None:
        key: Tuple = (0, "")
    elif isinstance(value, Literal):
        python = to_python_value(value)
        if isinstance(python, (int, float, Decimal)) and not isinstance(python, bool):
            key = (1, float(python))
        else:
            key = (2, value.lexical)
    else:
        key = (3, str(value))
    if not ascending:
        # invert numeric component where possible; fall back to lexicographic trick
        if isinstance(key[1], float):
            key = (key[0], -key[1])
        else:
            key = (key[0], "".join(chr(0x10FFFF - ord(ch)) for ch in str(key[1])))
    return key


def _ebv(value) -> bool:
    """SPARQL effective boolean value."""
    if isinstance(value, Literal):
        python = to_python_value(value)
        if isinstance(python, bool):
            return python
        if isinstance(python, (int, float, Decimal)):
            return python != 0
        return bool(value.lexical)
    if value is None:
        return False
    raise _ExpressionError(f"no effective boolean value for {value!r}")


def _numeric(value) -> float:
    if isinstance(value, Literal):
        python = to_python_value(value)
        if isinstance(python, bool):
            raise _ExpressionError("boolean used as a number")
        if isinstance(python, (int, float)):
            return python
        if isinstance(python, Decimal):
            return float(python)
    raise _ExpressionError(f"not a numeric value: {value!r}")


def _number_literal(value) -> Literal:
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, int):
        return Literal(value)
    return Literal(float(value))


def _string(value) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, IRI):
        return value.value
    raise _ExpressionError(f"not a string value: {value!r}")


def _terms_equal(left, right) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal):
        left_value = to_python_value(left)
        right_value = to_python_value(right)
        if isinstance(left_value, (int, float, Decimal)) and \
                isinstance(right_value, (int, float, Decimal)) and \
                not isinstance(left_value, bool) and not isinstance(right_value, bool):
            return float(left_value) == float(right_value)
        return left == right
    return left == right


def _compare(left, right, operator: str) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal):
        left_value = to_python_value(left)
        right_value = to_python_value(right)
        left_numeric = isinstance(left_value, (int, float, Decimal)) and \
            not isinstance(left_value, bool)
        right_numeric = isinstance(right_value, (int, float, Decimal)) and \
            not isinstance(right_value, bool)
        if left_numeric and right_numeric:
            left_value, right_value = float(left_value), float(right_value)
        elif isinstance(left_value, str) and isinstance(right_value, str):
            pass
        elif type(left_value) is type(right_value):
            # dates, times and other comparable values of the same type
            pass
        else:
            # incompatible operand types: a SPARQL type error
            raise _ExpressionError(
                f"cannot compare {left_value!r} with {right_value!r}"
            )
        if operator == "<":
            return left_value < right_value
        if operator == ">":
            return left_value > right_value
        if operator == "<=":
            return left_value <= right_value
        return left_value >= right_value
    raise _ExpressionError("comparison of non-literal terms")


def _to_term(value) -> ObjectTerm:
    if isinstance(value, (IRI, BNode, Literal)):
        return value
    if isinstance(value, bool):
        return Literal(value)
    if isinstance(value, (int, float)):
        return Literal(value)
    if isinstance(value, str):
        return Literal(value)
    raise SparqlEvaluationError(f"cannot convert {value!r} to an RDF term")


def _contains_aggregate(expression: Optional[Expression]) -> bool:
    if expression is None:
        return False
    if isinstance(expression, Aggregate):
        return True
    if isinstance(expression, UnaryOp):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, FunctionCall):
        return any(_contains_aggregate(argument) for argument in expression.arguments)
    return False
