"""Recursive-descent parser for the SPARQL subset.

Grammar (informal)::

    Query        := Prologue (SelectQuery | AskQuery)
    Prologue     := (PREFIX pname: <iri> | BASE <iri>)*
    SelectQuery  := SELECT DISTINCT? (Var | '(' Expr AS Var ')' | '*')+
                    WHERE? GroupGraphPattern Modifiers
    AskQuery     := ASK GroupGraphPattern
    Modifiers    := (GROUP BY Var+)? (HAVING Constraint+)?
                    (ORDER BY OrderCondition+)? (LIMIT n)? (OFFSET n)?
    GroupGraphPattern := '{' (SubSelect | TriplesBlock | Filter | Optional |
                              GroupOrUnion)* '}'

Expressions implement the usual SPARQL precedence:
``||`` < ``&&`` < comparisons < additive < multiplicative < unary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rdf.namespaces import RDF, XSD, NamespaceManager
from ..rdf.ntriples import unescape_string
from ..rdf.terms import BNode, IRI, Literal
from .ast_nodes import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryOp,
    Expression,
    FunctionCall,
    GroupPattern,
    OptionalPattern,
    Pattern,
    Projection,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePattern,
    UnaryOp,
    UnionPattern,
    Variable,
    VariableExpr,
)
from .errors import SparqlParseError
from .tokenizer import Token, tokenize

__all__ = ["parse_query", "SparqlParser"]

_BUILTIN_FUNCTIONS = {
    "BOUND", "ISLITERAL", "ISIRI", "ISURI", "ISBLANK", "ISNUMERIC",
    "DATATYPE", "STR", "LANG", "LANGMATCHES", "REGEX", "STRLEN",
    "STRSTARTS", "STRENDS", "CONTAINS", "ABS", "SAMETERM", "IF", "COALESCE",
}

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


class SparqlParser:
    """Parser producing :mod:`repro.sparql.ast_nodes` trees."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0
        self._namespaces = NamespaceManager(bind_defaults=False)
        self._base = ""

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value or kind
            raise SparqlParseError(
                f"expected {expected}, found {token.value!r}", token.line, token.column
            )
        return self._next()

    def _expect_keyword(self, keyword: str) -> Token:
        return self._expect("KEYWORD", keyword)

    def _at_keyword(self, keyword: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind == "KEYWORD" and token.value == keyword

    def _error(self, message: str) -> SparqlParseError:
        token = self._peek()
        return SparqlParseError(f"{message} (found {token.value!r})",
                                token.line, token.column)

    # -- entry point ----------------------------------------------------------
    def parse(self) -> Query:
        """Parse a complete query."""
        self._parse_prologue()
        if self._at_keyword("SELECT"):
            query = self._parse_select()
        elif self._at_keyword("ASK"):
            query = self._parse_ask()
        else:
            raise self._error("expected SELECT or ASK")
        self._expect("EOF")
        return query

    # -- prologue ----------------------------------------------------------------
    def _parse_prologue(self) -> None:
        while True:
            if self._at_keyword("PREFIX"):
                self._next()
                pname = self._expect("PNAME")
                iri = self._expect("IRIREF")
                self._namespaces.bind(pname.value[:-1], iri.value[1:-1])
            elif self._at_keyword("BASE"):
                self._next()
                iri = self._expect("IRIREF")
                self._base = iri.value[1:-1]
            else:
                return

    # -- query forms ------------------------------------------------------------
    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = False
        if self._at_keyword("DISTINCT"):
            self._next()
            distinct = True
        projections: List[Projection] = []
        select_all = False
        while True:
            token = self._peek()
            if token.kind == "STAR":
                self._next()
                select_all = True
            elif token.kind == "VAR":
                self._next()
                projections.append(Projection(Variable(token.value[1:])))
            elif token.kind == "LPAREN":
                self._next()
                expression = self._parse_expression()
                self._expect_keyword("AS")
                var_token = self._expect("VAR")
                self._expect("RPAREN")
                projections.append(Projection(Variable(var_token.value[1:]), expression))
            else:
                break
        if not projections and not select_all:
            raise self._error("SELECT needs at least one variable, expression or '*'")
        if self._at_keyword("WHERE"):
            self._next()
        where = self._parse_group_graph_pattern()
        group_by: Tuple[Variable, ...] = ()
        having: Tuple[Expression, ...] = ()
        order_by: Tuple[Tuple[Expression, bool], ...] = ()
        limit = offset = None
        if self._at_keyword("GROUP"):
            self._next()
            self._expect_keyword("BY")
            variables = []
            while self._peek().kind == "VAR":
                variables.append(Variable(self._next().value[1:]))
            if not variables:
                raise self._error("GROUP BY needs at least one variable")
            group_by = tuple(variables)
        if self._at_keyword("HAVING"):
            self._next()
            constraints = [self._parse_bracketted_expression()]
            while self._peek().kind == "LPAREN":
                constraints.append(self._parse_bracketted_expression())
            having = tuple(constraints)
        if self._at_keyword("ORDER"):
            self._next()
            self._expect_keyword("BY")
            conditions: List[Tuple[Expression, bool]] = []
            while True:
                token = self._peek()
                if self._at_keyword("ASC") or self._at_keyword("DESC"):
                    ascending = token.value == "ASC"
                    self._next()
                    conditions.append((self._parse_bracketted_expression(), ascending))
                elif token.kind == "VAR":
                    self._next()
                    conditions.append((VariableExpr(Variable(token.value[1:])), True))
                else:
                    break
            if not conditions:
                raise self._error("ORDER BY needs at least one condition")
            order_by = tuple(conditions)
        if self._at_keyword("LIMIT"):
            self._next()
            limit = int(self._expect("INTEGER").value)
        if self._at_keyword("OFFSET"):
            self._next()
            offset = int(self._expect("INTEGER").value)
        return SelectQuery(
            projections=tuple(projections), where=where, distinct=distinct,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit, offset=offset,
        )

    def _parse_ask(self) -> AskQuery:
        self._expect_keyword("ASK")
        if self._at_keyword("WHERE"):
            self._next()
        return AskQuery(self._parse_group_graph_pattern())

    # -- graph patterns ------------------------------------------------------------
    def _parse_group_graph_pattern(self) -> GroupPattern:
        self._expect("LBRACE")
        elements: List[Pattern] = []
        filters: List[Expression] = []
        triples: List[TriplePattern] = []

        def flush_triples() -> None:
            if triples:
                elements.append(BGP(tuple(triples)))
                triples.clear()

        while True:
            token = self._peek()
            if token.kind == "RBRACE":
                self._next()
                break
            if token.kind == "LBRACE":
                flush_triples()
                elements.append(self._parse_group_or_union())
                self._consume_optional_dot()
                continue
            if self._at_keyword("FILTER"):
                self._next()
                filters.append(self._parse_constraint())
                self._consume_optional_dot()
                continue
            if self._at_keyword("OPTIONAL"):
                flush_triples()
                self._next()
                elements.append(OptionalPattern(self._parse_group_graph_pattern()))
                self._consume_optional_dot()
                continue
            if self._at_keyword("SELECT"):
                flush_triples()
                elements.append(SubSelectPattern(self._parse_select()))
                self._consume_optional_dot()
                continue
            # otherwise: a triples block entry
            flush = self._parse_triples_same_subject(triples)
            if flush:
                flush_triples()
            if self._peek().kind == "DOT":
                self._next()
        flush_triples()
        return GroupPattern(tuple(elements), tuple(filters))

    def _parse_group_or_union(self) -> Pattern:
        first = self._parse_group_graph_pattern_or_subselect()
        branches = [first]
        while self._at_keyword("UNION"):
            self._next()
            branches.append(self._parse_group_graph_pattern_or_subselect())
        if len(branches) == 1:
            return branches[0]
        return UnionPattern(tuple(
            branch if isinstance(branch, GroupPattern) else GroupPattern((branch,), ())
            for branch in branches
        ))

    def _parse_group_graph_pattern_or_subselect(self) -> Pattern:
        # a '{' may open either a plain group or a sub-select
        if self._peek().kind == "LBRACE" and self._at_keyword("SELECT", offset=1):
            self._expect("LBRACE")
            query = self._parse_select()
            self._expect("RBRACE")
            return GroupPattern((SubSelectPattern(query),), ())
        return self._parse_group_graph_pattern()

    def _consume_optional_dot(self) -> None:
        if self._peek().kind == "DOT":
            self._next()

    def _parse_triples_same_subject(self, accumulator: List[TriplePattern]) -> bool:
        """Parse ``subject predicate object (';' predicate object)* (',' object)*``."""
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_term(position="predicate")
            while True:
                obj = self._parse_term(position="object")
                accumulator.append(TriplePattern(subject, predicate, obj))
                if self._peek().kind == "COMMA":
                    self._next()
                    continue
                break
            if self._peek().kind == "SEMICOLON":
                self._next()
                if self._peek().kind in ("DOT", "RBRACE"):
                    break
                continue
            break
        return False

    def _parse_term(self, position: str):
        token = self._peek()
        if token.kind == "VAR":
            self._next()
            return Variable(token.value[1:])
        if token.kind == "IRIREF":
            self._next()
            return IRI(self._resolve_iri(unescape_string(token.value[1:-1])))
        if token.kind == "PNAME":
            self._next()
            return self._expand_pname(token)
        if token.kind == "KEYWORD" and token.value == "A" and position == "predicate":
            self._next()
            return RDF.type
        if token.kind == "BNODE_LABEL":
            self._next()
            return BNode(token.value[2:])
        if position == "object":
            if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE") or \
                    (token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE")):
                return self._parse_literal()
        raise self._error(f"expected a {position}")

    def _parse_literal(self) -> Literal:
        token = self._next()
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=XSD.integer)
        if token.kind == "DECIMAL":
            return Literal(token.value, datatype=XSD.decimal)
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=XSD.double)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=XSD.boolean)
        lexical = unescape_string(token.value[1:-1])
        nxt = self._peek()
        if nxt.kind == "LANGTAG":
            self._next()
            return Literal(lexical, lang=nxt.value[1:])
        if nxt.kind == "DOUBLE_CARET":
            self._next()
            datatype_token = self._peek()
            if datatype_token.kind == "IRIREF":
                self._next()
                return Literal(lexical, datatype=IRI(
                    self._resolve_iri(unescape_string(datatype_token.value[1:-1]))
                ))
            if datatype_token.kind == "PNAME":
                self._next()
                return Literal(lexical, datatype=self._expand_pname(datatype_token))
            raise self._error("expected datatype IRI after '^^'")
        return Literal(lexical)

    # -- expressions -----------------------------------------------------------------
    def _parse_constraint(self) -> Expression:
        token = self._peek()
        if token.kind == "LPAREN":
            return self._parse_bracketted_expression()
        if token.kind in ("NAME",) or (token.kind == "KEYWORD" and token.value in _AGGREGATES):
            return self._parse_primary_expression()
        raise self._error("expected a FILTER constraint")

    def _parse_bracketted_expression(self) -> Expression:
        self._expect("LPAREN")
        expression = self._parse_expression()
        self._expect("RPAREN")
        return expression

    def _parse_expression(self) -> Expression:
        return self._parse_or_expression()

    def _parse_or_expression(self) -> Expression:
        left = self._parse_and_expression()
        while self._peek().kind == "OR":
            self._next()
            right = self._parse_and_expression()
            left = BinaryOp("||", left, right)
        return left

    def _parse_and_expression(self) -> Expression:
        left = self._parse_relational_expression()
        while self._peek().kind == "AND":
            self._next()
            right = self._parse_relational_expression()
            left = BinaryOp("&&", left, right)
        return left

    _COMPARISONS = {"EQ": "=", "NEQ": "!=", "LT": "<", "GT": ">", "LE": "<=", "GE": ">="}

    def _parse_relational_expression(self) -> Expression:
        left = self._parse_additive_expression()
        token = self._peek()
        if token.kind in self._COMPARISONS:
            self._next()
            right = self._parse_additive_expression()
            return BinaryOp(self._COMPARISONS[token.kind], left, right)
        return left

    def _parse_additive_expression(self) -> Expression:
        left = self._parse_multiplicative_expression()
        while self._peek().kind in ("PLUS", "MINUS"):
            operator = "+" if self._next().kind == "PLUS" else "-"
            right = self._parse_multiplicative_expression()
            left = BinaryOp(operator, left, right)
        return left

    def _parse_multiplicative_expression(self) -> Expression:
        left = self._parse_unary_expression()
        while self._peek().kind in ("STAR", "SLASH"):
            operator = "*" if self._next().kind == "STAR" else "/"
            right = self._parse_unary_expression()
            left = BinaryOp(operator, left, right)
        return left

    def _parse_unary_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "BANG":
            self._next()
            return UnaryOp("!", self._parse_unary_expression())
        if token.kind == "MINUS":
            self._next()
            return UnaryOp("-", self._parse_unary_expression())
        if token.kind == "PLUS":
            self._next()
            return UnaryOp("+", self._parse_unary_expression())
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "LPAREN":
            return self._parse_bracketted_expression()
        if token.kind == "VAR":
            self._next()
            return VariableExpr(Variable(token.value[1:]))
        if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE"):
            return TermExpr(self._parse_literal())
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return TermExpr(self._parse_literal())
        if token.kind == "KEYWORD" and token.value in _AGGREGATES:
            return self._parse_aggregate()
        if token.kind == "IRIREF":
            self._next()
            return TermExpr(IRI(self._resolve_iri(unescape_string(token.value[1:-1]))))
        if token.kind == "PNAME":
            # either a prefixed IRI constant or a prefixed function call
            iri = self._expand_pname(self._next())
            return TermExpr(iri)
        if token.kind == "NAME":
            return self._parse_function_call()
        raise self._error("expected an expression")

    def _parse_aggregate(self) -> Aggregate:
        name = self._next().value
        self._expect("LPAREN")
        distinct = False
        if self._at_keyword("DISTINCT"):
            self._next()
            distinct = True
        if self._peek().kind == "STAR":
            self._next()
            argument: Optional[Expression] = None
        else:
            argument = self._parse_expression()
        self._expect("RPAREN")
        return Aggregate(name, argument, distinct)

    def _parse_function_call(self) -> Expression:
        token = self._next()
        name = token.value.upper()
        if name not in _BUILTIN_FUNCTIONS:
            raise SparqlParseError(f"unknown function {token.value!r}",
                                   token.line, token.column)
        self._expect("LPAREN")
        arguments: List[Expression] = []
        if self._peek().kind != "RPAREN":
            arguments.append(self._parse_expression())
            while self._peek().kind == "COMMA":
                self._next()
                arguments.append(self._parse_expression())
        self._expect("RPAREN")
        return FunctionCall(name, tuple(arguments))

    # -- names ----------------------------------------------------------------------
    def _expand_pname(self, token: Token) -> IRI:
        prefix, _, local = token.value.partition(":")
        try:
            namespace = self._namespaces.namespace(prefix)
        except Exception:
            raise SparqlParseError(f"unknown prefix {prefix!r}",
                                   token.line, token.column) from None
        return IRI(namespace.base + local)

    def _resolve_iri(self, value: str) -> str:
        import re as _re

        if not self._base or _re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", value):
            return value
        return self._base + value


def parse_query(text: str) -> Query:
    """Parse a SPARQL query string into an AST."""
    return SparqlParser(text).parse()
